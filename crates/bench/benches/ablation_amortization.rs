//! Ablation: amortisation policies — the cost of the richer embodied
//! accounting schemes relative to the paper's linear rule.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_model::embodied::AmortizationPolicy;
use iriscast_units::{CarbonMass, SimDuration};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_amortization");

    let total = CarbonMass::from_kilograms(1_100.0);
    let life = SimDuration::from_years(5.0);
    let day = SimDuration::DAY;
    let age = SimDuration::from_years(2.3);

    for (name, policy) in [
        ("linear", AmortizationPolicy::Linear),
        (
            "usage_weighted",
            AmortizationPolicy::UsageWeighted {
                relative_usage: 1.2,
            },
        ),
        (
            "declining_balance",
            AmortizationPolicy::DecliningBalance { rate: 0.35 },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(policy.charge(total, life, age, day)))
        });
        // A whole-lifetime daily schedule (1,825 charges) per policy.
        g.bench_function(format!("{name}_full_life_daily"), |b| {
            b.iter(|| {
                let mut sum = CarbonMass::ZERO;
                for d in 0..(5 * 365) {
                    sum += policy.charge(total, life, day * d, day);
                }
                black_box(sum)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
