//! Ablation: numerical choices inside the telemetry pipeline — the
//! integration rule (left-Riemann vs trapezoid) and the gap-fill policy.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_telemetry::{GapPolicy, PowerSeries};
use iriscast_units::{SimDuration, Timestamp};
use std::hint::black_box;

fn series_with_gaps(n: usize, gap_every: usize) -> PowerSeries {
    let watts: Vec<f64> = (0..n)
        .map(|i| {
            if gap_every > 0 && i % gap_every == 0 {
                f64::NAN
            } else {
                400.0 + 150.0 * ((i as f64) / 50.0).sin()
            }
        })
        .collect();
    PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), watts)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_integration");

    // A day of 30-second samples (2,880 points), 5% missing.
    let s = series_with_gaps(2_880, 20);

    g.bench_function("left_riemann_holdlast", |b| {
        b.iter(|| black_box(s.integrate(GapPolicy::HoldLast)))
    });
    g.bench_function("trapezoid_holdlast", |b| {
        b.iter(|| black_box(s.integrate_trapezoid(GapPolicy::HoldLast)))
    });
    g.bench_function("left_riemann_interpolate", |b| {
        b.iter(|| black_box(s.integrate(GapPolicy::Interpolate)))
    });
    g.bench_function("left_riemann_zero_fill", |b| {
        b.iter(|| black_box(s.integrate(GapPolicy::Zero)))
    });

    g.bench_function("to_energy_series_halfhourly", |b| {
        b.iter(|| {
            black_box(s.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
