//! Ablation: collector parallelism. The collector guarantees identical
//! output for any worker count; this bench quantifies what the chunked
//! crossbeam fan-out buys over the serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iriscast_bench::synthetic_site;
use iriscast_telemetry::{SiteCollector, SyntheticUtilization};
use iriscast_units::Period;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel");
    g.sample_size(10);

    let collector = SiteCollector::new(synthetic_site(2_048, 7));
    let util = SyntheticUtilization::calibrated(0.6, 3);
    for workers in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("collect_2048_nodes", workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    black_box(
                        collector
                            .collect(Period::snapshot_24h(), &util, w)
                            .expect("bench site is valid"),
                    )
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
