//! Ablation: scheduling policies — throughput of the event-driven cluster
//! simulation under FCFS, EASY backfill and the carbon-aware wrapper.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_grid::scenario::uk_november_2022;
use iriscast_units::Period;
use iriscast_workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler, FcfsScheduler};
use iriscast_workload::{generate, ClusterSim, WorkloadConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduling");
    g.sample_size(10);

    let day = Period::snapshot_24h();
    let jobs = generate(&WorkloadConfig::batch_hpc(), day, 42);
    let sim = ClusterSim::new(128);
    let grid = uk_november_2022(1).simulate();
    let series = grid.intensity().slice(day).expect("month covers day");

    g.bench_function("fcfs", |b| {
        b.iter(|| black_box(sim.run(jobs.clone(), &mut FcfsScheduler, day)))
    });

    g.bench_function("easy_backfill", |b| {
        b.iter(|| black_box(sim.run(jobs.clone(), &mut EasyBackfillScheduler, day)))
    });

    g.bench_function("carbon_aware", |b| {
        b.iter(|| {
            let mut policy =
                CarbonAwareScheduler::new(EasyBackfillScheduler, series.percentile(0.5));
            black_box(sim.run_with_intensity(jobs.clone(), &mut policy, day, Some(&series)))
        })
    });

    g.bench_function("workload_generation", |b| {
        b.iter(|| black_box(generate(&WorkloadConfig::batch_hpc(), day, 7)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
