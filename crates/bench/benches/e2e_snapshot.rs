//! End-to-end bench: the full §6 pipeline — telemetry simulation, grid
//! month, assessment — the artefact behind the paper's summary numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_bench::bench_iris_scenario;
use iriscast_grid::scenario::uk_november_2022;
use iriscast_model::{AssessmentParams, SnapshotAssessment};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_snapshot");
    g.sample_size(10);

    g.bench_function("paper_exact_assessment", |b| {
        b.iter(|| black_box(SnapshotAssessment::paper_exact()))
    });

    g.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let telemetry = bench_iris_scenario(2022).simulate(8);
            let _grid = uk_november_2022(2022).simulate();
            let assessment = SnapshotAssessment::run(telemetry.total(), &AssessmentParams::paper());
            black_box(assessment)
        })
    });

    // Monte-Carlo uncertainty propagation (the extension analysis).
    let intensity = uk_november_2022(11).simulate().intensity().clone();
    let mc = iriscast_model::uncertainty::McConfig::paper(intensity);
    g.bench_function("monte_carlo_10k", |b| {
        b.iter(|| black_box(iriscast_model::uncertainty::run(&mc, 10_000, 3)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
