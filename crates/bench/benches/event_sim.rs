//! Discrete-event engine throughput: raw event dispatch on a
//! ~1,000-component graph, the carbon-aware deferral co-simulation end
//! to end, and the faulted day (multi-site curtailment with meter
//! outages in flight).

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_grid::scenario::uk_november_2022;
use iriscast_sim::{
    Component, ComponentId, Ctx, CurtailmentScenario, DeferralScenario, EngineBuilder, InPort,
    MeterOutage, OutPort, Payload, SiteSpec,
};
use iriscast_telemetry::{
    DropoutMode, MeterKind, NodeGroupTelemetry, NodePowerModel, SiteTelemetryConfig,
};
use iriscast_units::{Period, Power, SimDuration, Timestamp};
use iriscast_workload::{generate, WorkloadConfig};
use std::any::Any;
use std::hint::black_box;

/// One hop of a token-passing ring: receives the token, holds it for one
/// second of simulated time, forwards it. Every hop is one delivery plus
/// one wake — the engine's two hot paths.
struct Relay {
    armed: bool,
}

impl Relay {
    const IN: usize = 0;
    const OUT: usize = 0;
}

impl Component for Relay {
    fn name(&self) -> &str {
        "relay"
    }

    fn on_event(&mut self, _port: usize, _payload: &Payload, ctx: &mut Ctx<'_>) {
        self.armed = true;
        ctx.wake_after(SimDuration::from_secs(1));
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        if std::mem::take(&mut self.armed) {
            ctx.emit(Self::OUT, 1u64);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Kicks the ring off at the window open.
struct Starter;

impl Component for Starter {
    fn name(&self) -> &str {
        "starter"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.emit(0, 1u64);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A 1,000-relay ring plus the starter. The token takes 1 s per hop, so a
/// 4-hour window dispatches ~28.8k events (14.4k deliveries + 14.4k
/// wakes) through a 1,001-component graph per run.
fn run_relay_ring() -> u64 {
    let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(4.0));
    let mut b = EngineBuilder::new(window);
    let starter = b.add(Box::new(Starter));
    let relays: Vec<ComponentId> = (0..1_000)
        .map(|_| b.add(Box::new(Relay { armed: false })))
        .collect();
    b.connect(
        OutPort::<u64>::new(starter, 0),
        InPort::<u64>::new(relays[0], Relay::IN),
    );
    for pair in relays.windows(2) {
        b.connect(
            OutPort::<u64>::new(pair[0], Relay::OUT),
            InPort::<u64>::new(pair[1], Relay::IN),
        );
    }
    b.connect(
        OutPort::<u64>::new(relays[999], Relay::OUT),
        InPort::<u64>::new(relays[0], Relay::IN),
    );
    let mut engine = b.build();
    engine.run_to_horizon()
}

/// The full co-simulation day: generated workload on a 32-node cluster,
/// half-hourly grid signal, carbon-aware FCFS, live telemetry at
/// half-hourly sampling.
fn deferral_scenario() -> DeferralScenario {
    let day = Period::snapshot_24h();
    let grid = uk_november_2022(1).simulate();
    let series = grid.intensity().slice(day).expect("month covers day");
    let jobs = generate(
        &WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(480),
            ..WorkloadConfig::batch_hpc()
        },
        day,
        42,
    );
    let mut telemetry = SiteTelemetryConfig::new(
        "BENCH-32",
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: 32,
            power_model: NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0)),
        }],
        42,
    );
    telemetry.sample_step = SimDuration::SETTLEMENT_PERIOD;
    let threshold = series.percentile(0.5);
    DeferralScenario {
        window: day,
        nodes: 32,
        jobs,
        intensity: series,
        threshold,
        telemetry,
    }
}

/// The faulted day: a 4-site fleet (32 nodes each) under one
/// curtailment authority, generated workloads, live telemetry — and
/// meter outages dropping into half the sites' sweeps mid-run. This is
/// the scenario library's heaviest graph: grid fanout, per-site
/// clusters and collectors, plus fault injectors.
fn faulted_scenario() -> CurtailmentScenario {
    let day = Period::snapshot_24h();
    let grid = uk_november_2022(1).simulate();
    let series = grid.intensity().slice(day).expect("month covers day");
    let threshold = series.percentile(0.75);
    let sites = (0..4u64)
        .map(|i| {
            let jobs = generate(
                &WorkloadConfig {
                    mean_interarrival: SimDuration::from_secs(480),
                    ..WorkloadConfig::batch_hpc()
                },
                day,
                42 + i,
            );
            let mut telemetry = SiteTelemetryConfig::new(
                format!("BENCH-F{i}"),
                vec![NodeGroupTelemetry {
                    label: "compute".into(),
                    count: 32,
                    power_model: NodePowerModel::linear(
                        Power::from_watts(120.0),
                        Power::from_watts(550.0),
                    ),
                }],
                42 + i,
            );
            telemetry.sample_step = SimDuration::SETTLEMENT_PERIOD;
            let outages = if i % 2 == 0 {
                vec![
                    MeterOutage {
                        method: MeterKind::Pdu,
                        mode: DropoutMode::Gap,
                        window: Period::new(Timestamp::from_hours(6.0), Timestamp::from_hours(9.0)),
                    },
                    MeterOutage {
                        method: MeterKind::Ipmi,
                        mode: DropoutMode::HoldLast,
                        window: Period::new(
                            Timestamp::from_hours(14.0),
                            Timestamp::from_hours(18.0),
                        ),
                    },
                ]
            } else {
                Vec::new()
            };
            SiteSpec {
                nodes: 32,
                jobs,
                telemetry,
                outages,
            }
        })
        .collect();
    CurtailmentScenario {
        window: day,
        intensity: series,
        threshold,
        level: 0.25,
        sites,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_sim");
    g.sample_size(10);

    // Raw dispatch: ~28.8k events through a 1,001-component ring.
    g.bench_function("relay_ring_1k", |b| b.iter(|| black_box(run_relay_ring())));

    let scenario = deferral_scenario();
    // One simulated day of the carbon-aware feedback loop, including the
    // live telemetry sweep and energy-series extraction.
    g.bench_function("deferral_day", |b| {
        b.iter(|| black_box(scenario.run().expect("scenario runs")))
    });

    g.bench_function("deferral_day_baseline", |b| {
        b.iter(|| black_box(scenario.run_baseline().expect("baseline runs")))
    });

    // Four curtailed sites, two of them with meter outages in flight.
    let faulted = faulted_scenario();
    g.bench_function("faulted_day", |b| {
        b.iter(|| black_box(faulted.run().expect("faulted day runs")))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
