//! Figure 1 bench: simulating a month of GB grid dispatch and extracting
//! the daily-mean series and reference percentiles.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_grid::scenario::{uk_2035_decarbonised, uk_november_2022};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_grid");

    g.bench_function("simulate_november_2022", |b| {
        b.iter(|| black_box(uk_november_2022(7).simulate()))
    });

    let sim = uk_november_2022(7).simulate();
    g.bench_function("daily_means", |b| {
        b.iter(|| black_box(sim.intensity().daily_means()))
    });

    g.bench_function("reference_percentiles", |b| {
        b.iter(|| black_box(sim.intensity().reference_values()))
    });

    g.bench_function("simulate_2035_decarbonised", |b| {
        b.iter(|| black_box(uk_2035_decarbonised(7).simulate()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
