//! Fleet-federation bench: hierarchical telemetry roll-up at
//! 10,000-site scale.
//!
//! The headline target is the sharding inversion's payoff: a 10,000-site
//! hyperscale fleet (small PDU-metered rooms, hourly sampling) rolls up
//! in the same order of time as the 7-site IRIS snapshot
//! (`table2_telemetry/iris_snapshot_full`), because the per-site work is
//! microseconds and the pool keeps many sites in flight with one
//! recycled scratch arena per worker. The smaller sizes pin the scaling
//! curve so a super-linear regression shows up even if the big run's
//! noise hides it.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_bench::bench_iris_scenario;
use iriscast_model::FleetScenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_federation");
    g.sample_size(10);

    // 10,000 sites: 100 regions × 100 sites × 4 nodes, hourly PDU
    // sampling over the 24 h window — the "Chasing Carbon" shape.
    let fleet_10k = FleetScenario::synthetic(100, 100, 4, 2022);
    g.bench_function("fleet_10k_sites", |b| {
        b.iter(|| black_box(fleet_10k.try_simulate(8).unwrap()))
    });

    // One decade down, same shape: the scaling check.
    let fleet_1k = FleetScenario::synthetic(100, 10, 4, 2022);
    g.bench_function("fleet_1k_sites", |b| {
        b.iter(|| black_box(fleet_1k.try_simulate(8).unwrap()))
    });

    // The paper's federation through the fleet path: site-sharded
    // roll-up of the calibrated 7-site, 2,462-node scenario, directly
    // comparable to `iris_snapshot_full` (same sites, inverted
    // parallelism, no materialised power series).
    let iris = bench_iris_scenario(2022).federated();
    g.bench_function("iris_federated", |b| {
        b.iter(|| black_box(iris.try_simulate(8).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
