//! Scale-out bench: the PR 10 transport and federation hot paths.
//!
//! `socket_round_trip` is the wire tax — one warm percentile query
//! over a loopback TCP connection (serialize request, frame, fold
//! nothing, answer from the cached sort, frame the reply back): the
//! number to compare against the in-process `warm_quantile`
//! (`serve_ingest`), which it should exceed by socket overhead only.
//! `federated_fold` is the fleet tier — folding 1,000 exported sites
//! into a `FleetRollup` and taking a quantile, the per-sweep cost a
//! federator pays each time it refreshes the fleet view.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_model::federation::FleetRollup;
use iriscast_serve::federator::site_rollup;
use iriscast_serve::{AssessmentService, QueryRequest, SiteModel, SnapshotRecord, SocketClient};
use iriscast_units::Period;
use std::hint::black_box;

fn model() -> SiteModel {
    SiteModel {
        servers: 2_398,
        ci_grams_per_kwh: vec![34.0, 231.12, 280.0],
        pue_values: vec![1.1, 1.3, 1.58],
        embodied_kg: vec![399.0, 1_100.0, 1_300.0],
        lifespans_years: vec![3, 5, 7],
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_out");
    g.sample_size(10);

    // Wire round trip: a served site with 100 folded windows, cached
    // sort warm; each iteration is one percentile query frame out and
    // one reply frame back over loopback TCP.
    let service = AssessmentService::new();
    service.register_site("CAM", model()).unwrap();
    for seq in 0..100u64 {
        service
            .ingest(&SnapshotRecord {
                site: "CAM".into(),
                seq,
                window_start_s: seq as i64 * 21_600,
                window_end_s: (seq as i64 + 1) * 21_600,
                energy_kwh: 4_000.0 + (seq % 97) as f64 * 13.0,
            })
            .unwrap();
    }
    let _ = service.percentile("CAM", 0.5).unwrap(); // warm the sort
    let server = service.serve_tcp("127.0.0.1:0").unwrap();
    let mut client = SocketClient::connect_tcp(server.addr()).unwrap();
    let mut req = QueryRequest::bare("CAM", "percentile");
    req.q = Some(0.95);
    g.bench_function("socket_round_trip", |b| {
        b.iter(|| {
            let reply = client.query(black_box(&req)).unwrap();
            assert!(reply.ok);
            black_box(reply.value_kg)
        })
    });

    // Fleet fold: 1,000 site exports into a fresh rollup plus one
    // quantile — the cost of a full federation sweep, minus the wire.
    let exports: Vec<(u32, u32, f64)> = (0..1_000u32)
        .map(|i| (i % 8, 100 + i % 400, 5_000.0 + f64::from(i) * 11.5))
        .collect();
    let codes: Vec<String> = (0..8).map(|r| format!("R{r}")).collect();
    g.bench_function("federated_fold", |b| {
        b.iter(|| {
            let mut rollup = FleetRollup::new(codes.clone(), Period::snapshot_24h());
            for &(region, servers, kwh) in &exports {
                rollup.fold_site(site_rollup(region, servers, kwh));
            }
            black_box(rollup.percentile(0.5).unwrap())
        })
    });

    g.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
