//! Scenario-space engine bench: batch throughput at 1k / 10k / 100k
//! points, serial vs parallel.
//!
//! The spaces refine the paper's parameter ranges (CI 50–300 g/kWh,
//! PUE 1.1–1.6, embodied 400–1,100 kg, lifespan 3–7 y) to increasing
//! resolution, so every point is a physically meaningful scenario.
//!
//! Threshold note: `par_evaluate_space` falls back to serial below
//! `iriscast_model::engine::PAR_SERIAL_CUTOFF` (2^17 = 131,072 points).
//! The PR 2 trajectory measured 13.8 µs parallel vs 2.6 µs serial at 864
//! points with break-even just above 10^5 on the dev container; with the
//! fallback (checked *before* the `available_parallelism` syscall, which
//! alone costs ~10 µs) the sub-cutoff sizes here time identically to the
//! serial path, bit-identical by construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iriscast_model::{paper, Assessment};
use iriscast_units::{Bounds, Pue};
use std::hint::black_box;

/// A paper-shaped space with roughly `target` points: axis lengths are
/// the target's fourth root (CI gets the remainder).
fn space_of(target: usize) -> Assessment {
    let side = (target as f64).powf(0.25).round() as usize;
    let n_ci = target / (side * side * side);
    Assessment::builder()
        .energy(paper::effective_energy())
        .ci_axis(
            iriscast_model::ScenarioAxis::linspace(
                "ci",
                Bounds::new(
                    iriscast_units::CarbonIntensity::from_grams_per_kwh(50.0),
                    iriscast_units::CarbonIntensity::from_grams_per_kwh(300.0),
                ),
                n_ci,
            )
            .expect("non-zero axis"),
        )
        .pue_axis(
            iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.1).unwrap(), Pue::new(1.6).unwrap()),
                side,
            )
            .expect("non-zero axis"),
        )
        .embodied_linspace(paper::server_embodied_bounds(), side)
        .lifespan_linspace(3.0, 7.0, side)
        .servers(paper::AMORTISATION_FLEET_SERVERS)
        .build()
        .expect("valid space")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_space");
    g.sample_size(10);

    for &points in &[1_000usize, 10_000, 100_000] {
        let assessment = space_of(points);
        let n = assessment.space().len();
        g.bench_with_input(
            BenchmarkId::new("evaluate_space", n),
            &assessment,
            |b, a| b.iter(|| black_box(a.evaluate_space())),
        );
        g.bench_with_input(
            BenchmarkId::new("par_evaluate_space", n),
            &assessment,
            |b, a| b.iter(|| black_box(a.par_evaluate_space(0))),
        );
    }

    // Query costs on the largest batch.
    let assessment_100k = space_of(100_000);
    let results = assessment_100k.evaluate_space();
    g.bench_function("envelope_100k", |b| {
        b.iter(|| black_box(results.envelope()))
    });
    // Repeated-query path: the first call sorts once into the cached
    // view, every later call interpolates on it (PR 2 baseline re-sorted
    // per call: 3.2 ms at 100k points).
    g.bench_function("percentile_100k", |b| {
        b.iter(|| black_box(results.percentile(0.95).unwrap()))
    });
    // Batch path: a whole quantile grid over the shared sort.
    let grid = [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99];
    g.bench_function("percentiles_batch7_100k", |b| {
        b.iter(|| black_box(results.percentiles(&grid).unwrap()))
    });
    // One-shot path: `select_nth` without building (or having) a cache.
    let oneshot = assessment_100k.evaluate_space();
    g.bench_function("percentile_oneshot_100k", |b| {
        b.iter(|| black_box(oneshot.percentile_oneshot(0.95).unwrap()))
    });
    g.bench_function("summary_100k", |b| {
        b.iter(|| black_box(results.summary().unwrap()))
    });
    g.bench_function("marginals_100k", |b| {
        b.iter(|| black_box(results.marginals(iriscast_model::AxisId::Ci)))
    });

    // Warm sweep path: repeated evaluation into a reused buffer (the
    // day-sweep pattern) versus the cold `evaluate_space` above.
    let mut reused = assessment_100k.evaluate_space();
    g.bench_function("evaluate_space_into_100k", |b| {
        b.iter(|| {
            assessment_100k.evaluate_space_into(&mut reused);
            black_box(reused.totals().len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
