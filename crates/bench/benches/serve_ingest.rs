//! Serve-pipeline bench: snapshot fold throughput and warm query
//! latency.
//!
//! Two sides of the PR 9 contract. `ingest_10k_snapshots` is the fold
//! throughput sweep — 10,000 snapshot windows evaluated under the
//! paper-shaped 81-point template and folded through the reorder
//! buffer into one growing ensemble (810,000 scenario rows by the
//! end), i.e. the full ingest → fold path a day of 10k-site traffic
//! exercises. `warm_quantile` is the query side: with the ensemble
//! grown and the cached sort warm, a percentile must stay an O(1)
//! interpolation — the number to compare against the PR 4 cached-view
//! latency (`scenario_space/percentile_cached`), with a 2× budget.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_serve::{AssessmentService, SiteModel, SnapshotRecord};
use std::hint::black_box;

fn model() -> SiteModel {
    SiteModel {
        servers: 2_398,
        ci_grams_per_kwh: vec![34.0, 231.12, 280.0],
        pue_values: vec![1.1, 1.3, 1.58],
        embodied_kg: vec![399.0, 1_100.0, 1_300.0],
        lifespans_years: vec![3, 5, 7],
    }
}

fn records(n: u64) -> Vec<SnapshotRecord> {
    (0..n)
        .map(|seq| SnapshotRecord {
            site: "CAM".into(),
            seq,
            window_start_s: seq as i64 * 21_600,
            window_end_s: (seq as i64 + 1) * 21_600,
            energy_kwh: 4_000.0 + (seq % 97) as f64 * 13.0,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_ingest");
    g.sample_size(10);

    // Fold throughput: 10k snapshots through evaluate + reorder-buffer
    // fold, ending in one warm quantile so the sweep includes the sort
    // the queries will live on.
    let recs_10k = records(10_000);
    g.bench_function("ingest_10k_snapshots", |b| {
        b.iter(|| {
            let service = AssessmentService::new();
            service.register_site("CAM", model()).unwrap();
            service.ingest_batch(&recs_10k, 1).unwrap();
            black_box(service.percentile("CAM", 0.5).unwrap())
        })
    });

    // Warm query latency between folds: ensemble grown, cached sort
    // live — each percentile is an O(1) interpolation and must stay
    // within 2× of the PR 4 cached-view number.
    let service = AssessmentService::new();
    service.register_site("CAM", model()).unwrap();
    service.ingest_batch(&recs_10k, 1).unwrap();
    service.percentile("CAM", 0.5).unwrap();
    g.bench_function("warm_quantile", |b| {
        b.iter(|| black_box(service.percentile("CAM", 0.95).unwrap()))
    });

    // The wire path on top: answer one NDJSON percentile query from
    // the warm view, framing included.
    let query = "{\"site\":\"CAM\",\"ask\":\"percentile\",\"q\":0.95,\
                 \"axis\":null,\"tenant\":null}";
    let mut out = Vec::with_capacity(1024);
    g.bench_function("ndjson_query", |b| {
        b.iter(|| {
            out.clear();
            black_box(service.serve_ndjson(query, &mut out))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
