//! Table 1 bench: building and querying the IRIS inventory, and pricing
//! its embodied carbon with the component model.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_inventory::{iris, EmbodiedFactors, NodeRole};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_inventory");

    g.bench_function("build_iris_fleet", |b| {
        b.iter(|| black_box(iris::iris_fleet()))
    });

    let fleet = iris::iris_fleet();
    g.bench_function("summary_queries", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            acc += fleet.total_nodes();
            acc += fleet.monitored_nodes();
            acc += fleet.monitored_servers();
            for role in NodeRole::ALL {
                acc += fleet.nodes_with_role(role);
            }
            black_box(acc)
        })
    });

    let factors = EmbodiedFactors::typical();
    g.bench_function("fleet_embodied_component_model", |b| {
        b.iter(|| black_box(fleet.total_embodied(&factors)))
    });

    g.bench_function("json_round_trip", |b| {
        b.iter(|| {
            let json = fleet.to_json().expect("serialise");
            black_box(iriscast_inventory::Fleet::from_json(&json).expect("parse"))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
