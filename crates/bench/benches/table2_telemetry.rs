//! Table 2 bench: the telemetry collection pipeline that regenerates the
//! measured-energy table, at single-site and full-federation scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iriscast_bench::{bench_iris_scenario, synthetic_site};
use iriscast_telemetry::{SiteCollector, SyntheticUtilization};
use iriscast_units::Period;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_telemetry");
    g.sample_size(10);

    // Scaling in node count (24 h window; step widens past 500 nodes —
    // see `bench_sample_step`).
    for nodes in [32u32, 128, 512] {
        let cfg = synthetic_site(nodes, 42);
        let collector = SiteCollector::new(cfg);
        let util = SyntheticUtilization::calibrated(0.6, 7);
        g.bench_with_input(BenchmarkId::new("site_collect", nodes), &nodes, |b, _| {
            b.iter(|| black_box(collector.collect(Period::snapshot_24h(), &util, 8)))
        });
    }

    // The full calibrated IRIS federation (2,462 nodes, 6 sites).
    let scenario = bench_iris_scenario(2022);
    g.bench_function("iris_snapshot_full", |b| {
        b.iter(|| black_box(scenario.simulate(8)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
