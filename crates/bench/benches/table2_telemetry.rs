//! Table 2 bench: the telemetry collection pipeline that regenerates the
//! measured-energy table, at single-site and full-federation scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iriscast_bench::{bench_iris_scenario, synthetic_site};
use iriscast_telemetry::{CollectScratch, FillBackend, SiteCollector, SyntheticUtilization};
use iriscast_units::Period;
use rand::rngs::StdRng;
use rand::{BoxMullerNormal, Rng, SeedableRng, StandardNormal};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_telemetry");
    g.sample_size(10);

    // Scaling in node count (24 h window; step widens past 500 nodes —
    // see `bench_sample_step`). Cold path: fresh buffers every collect.
    for nodes in [32u32, 128, 512] {
        let cfg = synthetic_site(nodes, 42);
        let collector = SiteCollector::new(cfg);
        let util = SyntheticUtilization::calibrated(0.6, 7);
        g.bench_with_input(BenchmarkId::new("site_collect", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    collector
                        .collect(Period::snapshot_24h(), &util, 8)
                        .expect("bench site is valid"),
                )
            })
        });
        // Warm path: scratch-arena buffers recycled across collects —
        // the per-sample data path allocates nothing after warm-up.
        let warm_collector = SiteCollector::new(synthetic_site(nodes, 42));
        let mut scratch = CollectScratch::new();
        g.bench_with_input(
            BenchmarkId::new("site_collect_warm", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    let r = warm_collector
                        .collect_with(Period::snapshot_24h(), &util, 8, &mut scratch)
                        .expect("bench site is valid");
                    black_box(&r);
                    scratch.recycle(r);
                })
            },
        );
    }

    // Pool vs per-call thread spawn at the largest single site: the two
    // backends are bit-identical; the delta is pure dispatch overhead.
    {
        let cfg = synthetic_site(512, 42);
        let collector = SiteCollector::new(cfg);
        let util = SyntheticUtilization::calibrated(0.6, 7);
        let mut scratch = CollectScratch::new();
        g.bench_function("site_collect_spawn/512", |b| {
            b.iter(|| {
                let r = collector
                    .collect_with_backend(
                        Period::snapshot_24h(),
                        &util,
                        8,
                        &mut scratch,
                        FillBackend::Spawn,
                    )
                    .expect("bench site is valid");
                black_box(&r);
                scratch.recycle(r);
            })
        });
    }

    // The normal-variate samplers the meter error models draw from —
    // the per-sample kernel the collect numbers above are built on.
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("normal_ziggurat_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..1_000 {
                acc += rng.sample(StandardNormal);
            }
            black_box(acc)
        })
    });
    g.bench_function("normal_boxmuller_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..1_000 {
                acc += rng.sample(BoxMullerNormal);
            }
            black_box(acc)
        })
    });

    // The full calibrated IRIS federation (2,462 nodes, 6 sites).
    let scenario = bench_iris_scenario(2022);
    g.bench_function("iris_snapshot_full", |b| {
        b.iter(|| black_box(scenario.simulate(8)))
    });

    // Same federation on the warm path: one scratch serves all six
    // sites and the previous snapshot's buffers are recycled.
    let mut scratch = CollectScratch::new();
    g.bench_function("iris_snapshot_full_warm", |b| {
        b.iter(|| {
            let snapshot = scenario.simulate_with(8, &mut scratch);
            black_box(&snapshot.rows);
            for site in snapshot.site_results {
                scratch.recycle(site);
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
