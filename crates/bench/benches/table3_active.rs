//! Table 3 bench: the CI × PUE active-carbon sweep, scalar and
//! time-aligned variants.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_grid::scenario::uk_november_2022;
use iriscast_model::active::active_carbon_series;
use iriscast_model::{paper, ActiveCarbonGrid};
use iriscast_telemetry::EnergySeries;
use iriscast_units::{Energy, SimDuration, Timestamp};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_active");

    g.bench_function("ci_pue_grid", |b| {
        b.iter(|| {
            black_box(ActiveCarbonGrid::compute(
                paper::effective_energy(),
                paper::ci_references(),
                paper::pue_table3(),
            ))
        })
    });

    // Time-aligned active carbon over a month of half-hourly slots.
    let grid = uk_november_2022(5).simulate();
    let slots = grid.intensity().len();
    let energy = EnergySeries::new(
        Timestamp::EPOCH,
        SimDuration::SETTLEMENT_PERIOD,
        vec![Energy::from_kilowatt_hours(390.0); slots],
    );
    g.bench_function("time_aligned_month", |b| {
        b.iter(|| black_box(active_carbon_series(&energy, grid.intensity())))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
