//! Table 4 bench: embodied amortisation sweeps, flat and component-model
//! based.

use criterion::{criterion_group, criterion_main, Criterion};
use iriscast_inventory::{iris, EmbodiedFactors};
use iriscast_model::{paper, EmbodiedSweep};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_embodied");

    g.bench_function("lifespan_sweep", |b| {
        b.iter(|| {
            black_box(EmbodiedSweep::compute(
                paper::server_embodied_bounds(),
                &paper::LIFESPANS_YEARS,
                paper::AMORTISATION_FLEET_SERVERS,
            ))
        })
    });

    // The richer version the paper calls future work: per-node-model
    // embodied figures from the component model, across the whole fleet.
    let fleet = iris::iris_fleet();
    let low = EmbodiedFactors::low();
    let high = EmbodiedFactors::high();
    g.bench_function("component_model_fleet_bounds", |b| {
        b.iter(|| {
            let lo = fleet.total_embodied(&low);
            let hi = fleet.total_embodied(&high);
            black_box((lo, hi))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
