//! Time-resolved engine bench: half-hourly energy × intensity series
//! convolved over scenario spaces, materialised vs streamed vs parallel.
//!
//! Spaces mirror `scenario_space.rs` but the CI axis carries whole *days*
//! of half-hourly intensity data (48 slots each) instead of scalars, so
//! every point is a full Table 2 × Figure 1 convolution. The kernel
//! factors each (CI series, PUE) pair into one precomputed convolution,
//! so per-point cost must stay flat in series length — these benches pin
//! that down, along with the streaming paths' 10M-point throughput.
//!
//! Parallel note: `par_evaluate_space` falls back to serial below
//! `iriscast_model::engine::PAR_SERIAL_CUTOFF` (2^17 points) — the PR 2
//! trajectory measured 13.8 µs parallel vs 2.6 µs serial at 864 points,
//! with break-even just above 10^5 — so the sub-cutoff sizes here time
//! the fallback (identical to serial by construction) and the 200k/10M
//! sizes time genuine thread fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iriscast_grid::IntensitySeries;
use iriscast_model::paper;
use iriscast_model::time_resolved::{TimeResolvedAssessment, TimeResolvedBuilder};
use iriscast_telemetry::EnergySeries;
use iriscast_units::{CarbonIntensity, CarbonMass, Energy, SimDuration, Timestamp};
use std::hint::black_box;

const SLOTS: usize = 48; // one day of settlement periods

/// A measured-looking day of half-hourly energy: a diurnal hump around
/// the paper's 19,380 kWh/day estate draw.
fn energy_day() -> EnergySeries {
    EnergySeries::new(
        Timestamp::EPOCH,
        SimDuration::SETTLEMENT_PERIOD,
        (0..SLOTS)
            .map(|i| {
                let phase = i as f64 / SLOTS as f64 * std::f64::consts::TAU;
                Energy::from_kilowatt_hours(403.75 * (1.0 + 0.25 * phase.sin()))
            })
            .collect(),
    )
}

/// One synthetic day of intensity data with a diurnal shape; `k` varies
/// the level so every CI-axis sample is distinct.
fn intensity_day(k: usize) -> IntensitySeries {
    IntensitySeries::new(
        Timestamp::EPOCH,
        SimDuration::SETTLEMENT_PERIOD,
        (0..SLOTS)
            .map(|i| {
                let phase = i as f64 / SLOTS as f64 * std::f64::consts::TAU;
                let level = 60.0 + 5.0 * k as f64;
                CarbonIntensity::from_grams_per_kwh(level + 45.0 * (1.0 - phase.cos()))
            })
            .collect(),
    )
}

/// A paper-shaped builder: `n_ci` day-long series × `side` samples on
/// each scalar axis → `n_ci · side³` points.
fn builder_of(n_ci: usize, side: usize) -> TimeResolvedBuilder {
    let pue: Vec<f64> = (0..side)
        .map(|i| 1.1 + 0.5 * i as f64 / side as f64)
        .collect();
    TimeResolvedAssessment::builder()
        .energy_series(energy_day())
        .ci_series_all((0..n_ci).map(intensity_day))
        .pue_values(&pue)
        .embodied_linspace(paper::server_embodied_bounds(), side)
        .lifespan_linspace(3.0, 7.0, side)
        .servers(paper::AMORTISATION_FLEET_SERVERS)
}

fn assessment_of(n_ci: usize, side: usize) -> TimeResolvedAssessment {
    builder_of(n_ci, side).build().expect("valid axes")
}

/// Streaming fold used by the 10M-point benches: envelope + count, the
/// cheapest useful consumer (anything heavier would time the sink, not
/// the engine).
fn stream_fold(a: &TimeResolvedAssessment, par: bool) -> (usize, CarbonMass, CarbonMass) {
    let mut n = 0usize;
    let mut lo = CarbonMass::from_kilograms(f64::INFINITY);
    let mut hi = CarbonMass::ZERO;
    let sink = |p: iriscast_model::PointResult| {
        let t = p.outcome.total();
        lo = lo.min(t);
        hi = hi.max(t);
        n += 1;
    };
    if par {
        a.par_stream_space(0, sink);
    } else {
        a.stream_space(sink);
    }
    (n, lo, hi)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("time_resolved");
    g.sample_size(10);

    // Build cost: alignment of 48 day-series onto the energy grid plus
    // the weighted-mean CI axis and kernel validation.
    let builder = builder_of(48, 6);
    g.bench_function("build_48_series", |b| {
        b.iter(|| black_box(builder.clone().build().unwrap()))
    });

    // Materialised evaluation across the PAR_SERIAL_CUTOFF boundary:
    // 864 and 10k/93k fall back to serial, 209k fans out for real.
    for &(n_ci, side) in &[(4usize, 6usize), (10, 10), (16, 18), (51, 16)] {
        let assessment = assessment_of(n_ci, side);
        let n = assessment.space().len();
        g.bench_with_input(
            BenchmarkId::new("evaluate_space", n),
            &assessment,
            |b, a| b.iter(|| black_box(a.evaluate_space())),
        );
        g.bench_with_input(
            BenchmarkId::new("par_evaluate_space", n),
            &assessment,
            |b, a| b.iter(|| black_box(a.par_evaluate_space(0))),
        );
    }

    // Streaming a >10M-point day-sweep: 48 days × 60 × 59 × 60 =
    // 10,195,200 points, no columns materialised (memory stays O(axes)).
    let huge = builder_of(48, 60)
        .embodied_linspace(paper::server_embodied_bounds(), 59)
        .build()
        .expect("valid axes");
    let n = huge.space().len();
    assert!(n > 10_000_000, "space holds {n} points");
    g.bench_with_input(BenchmarkId::new("stream_space", n), &huge, |b, a| {
        b.iter(|| black_box(stream_fold(a, false)))
    });
    g.bench_with_input(BenchmarkId::new("par_stream_space", n), &huge, |b, a| {
        b.iter(|| black_box(stream_fold(a, true)))
    });
    g.bench_with_input(BenchmarkId::new("chunks_64k", n), &huge, |b, a| {
        b.iter(|| {
            let mut points = 0usize;
            for chunk in a.chunks(1 << 16) {
                points += chunk.len();
            }
            black_box(points)
        })
    });

    // Per-interval profile of one scenario (48-slot trajectory).
    let small = assessment_of(30, 3);
    g.bench_function("profile_48_slots", |b| {
        b.iter(|| black_box(small.profile(7).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
