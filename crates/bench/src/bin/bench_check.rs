//! The CI bench-regression gate.
//!
//! Diffs a freshly generated bench trajectory JSON against the committed
//! baseline and exits non-zero on regressions (fresh minimum more than
//! `tolerance ×` the baseline minimum) or on baseline entries missing
//! from the fresh run. See `iriscast_bench::regression` for semantics.
//!
//! ```text
//! bench_check [--baseline <path>] [--fresh <path>] [--tolerance <factor>]
//! ```
//!
//! Defaults: the baseline is whatever JSON the committed
//! `BENCH_BASELINE` pointer file at the workspace root names — the
//! single source of truth a baseline bump edits (CI deliberately
//! passes no `--baseline`); fresh comes from the same resolution
//! `cargo bench` writes to (`$BENCH_JSON`, else `BENCH.json` at the
//! workspace root); tolerance `3.0` — wide enough to absorb
//! runner-class noise between the machine that committed the baseline
//! and the CI host, tight enough to catch real rot.

use criterion::{bench_json_path, parse_bench_json, workspace_file, BenchRecord};
use iriscast_bench::regression::compare;
use std::path::PathBuf;
use std::process::ExitCode;

/// The workspace pointer file naming the committed baseline JSON.
/// Bumping the baseline means editing this one file; bench_check and
/// CI both resolve through it, so they can never disagree.
const BASELINE_POINTER: &str = "BENCH_BASELINE";

/// Resolves the committed pointer file to the baseline path.
fn pointed_baseline() -> Result<PathBuf, String> {
    let pointer = workspace_file(BASELINE_POINTER);
    let name = std::fs::read_to_string(&pointer).map_err(|e| {
        format!(
            "cannot read baseline pointer {}: {e} (commit a {BASELINE_POINTER} \
             file naming the baseline JSON, or pass --baseline)",
            pointer.display()
        )
    })?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!(
            "baseline pointer {} is empty — it must name a baseline JSON \
             like BENCH_PR10.json",
            pointer.display()
        ));
    }
    Ok(workspace_file(name))
}

struct Args {
    baseline: Option<PathBuf>,
    fresh: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        fresh: bench_json_path(),
        tolerance: 3.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} expects a value (see --help)"))
        };
        match flag.as_str() {
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--fresh" => args.fresh = PathBuf::from(value("--fresh")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t > 0.0)
                    .ok_or_else(|| format!("--tolerance must be a positive factor, got {raw}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "bench_check [--baseline <path>] [--fresh <path>] [--tolerance <factor>]\n\
                     Fails on fresh minima > tolerance x baseline and on baseline entries\n\
                     absent from the fresh run. Defaults: --baseline from the\n\
                     {BASELINE_POINTER} pointer file at the workspace root,\n\
                     --fresh $BENCH_JSON or BENCH.json, --tolerance 3.0."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    Ok(args)
}

fn load(path: &PathBuf, what: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {what} {}: {e}", path.display()))?;
    let records = parse_bench_json(&text);
    if records.is_empty() {
        return Err(format!(
            "{what} {} parsed to zero bench entries — wrong file?",
            path.display()
        ));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let run = || -> Result<bool, String> {
        let args = parse_args()?;
        let baseline_path = match args.baseline {
            Some(path) => path,
            None => pointed_baseline()?,
        };
        let baseline = load(&baseline_path, "baseline")?;
        let fresh = load(&args.fresh, "fresh trajectory")?;
        println!(
            "bench_check: {} (baseline, {} entries) vs {} (fresh, {} entries)",
            baseline_path.display(),
            baseline.len(),
            args.fresh.display(),
            fresh.len()
        );
        let report = compare(&baseline, &fresh, args.tolerance);
        print!("{report}");
        Ok(report.passed())
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
