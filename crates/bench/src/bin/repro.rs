//! `repro` — regenerate every table and figure of the IRISCAST paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p iriscast-bench --bin repro             # everything
//! cargo run --release -p iriscast-bench --bin repro -- table2   # one artefact
//! ```
//!
//! Artefacts: `table1`, `table2`, `fig1`, `table3`, `table4`, `summary`.
//! Every numeric artefact is printed next to the published value so the
//! reproduction quality is visible at a glance (EXPERIMENTS.md records a
//! captured run).

use iriscast_grid::scenario::uk_november_2022;
use iriscast_inventory::{iris as iris_inv, NodeRole};
use iriscast_model::iris::IrisScenario;
use iriscast_model::report::{ascii_bar, paper_num, TextTable};
use iriscast_model::{paper, AssessmentParams, SnapshotAssessment};
use iriscast_units::{Energy, SimDuration};

const SEED: u64 = 2022;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    let mut simulated_total: Option<Energy> = None;
    if want("table1") {
        table1();
    }
    if want("table2") || want("table3") || want("summary") {
        simulated_total = Some(table2(want("table2")));
    }
    if want("fig1") {
        fig1();
    }
    if want("table3") {
        table3(simulated_total.expect("table2 ran"));
    }
    if want("table4") {
        table4();
    }
    if want("summary") {
        summary(simulated_total.expect("table2 ran"));
    }
}

fn table1() {
    let fleet = iris_inv::iris_fleet();
    let mut t = TextTable::new(vec!["Site", "Hardware", "Paper"])
        .title("Table 1: IRIS hardware included in the project");
    let paper_col: [&str; 6] = [
        "118 CPU nodes",
        "60 CPU nodes",
        "808 CPU + 64 storage",
        "651 CPU + 105 storage",
        "699 CPU nodes",
        "241 CPU nodes",
    ];
    for (site, paper_desc) in fleet.sites().iter().zip(paper_col) {
        let compute: u32 = site
            .groups
            .iter()
            .filter(|g| g.listed_in_summary && g.spec.role() == NodeRole::Compute)
            .map(|g| g.count)
            .sum();
        let storage: u32 = site
            .groups
            .iter()
            .filter(|g| g.listed_in_summary && g.spec.role() == NodeRole::Storage)
            .map(|g| g.count)
            .sum();
        let desc = if storage > 0 {
            format!("{compute} CPU + {storage} storage")
        } else {
            format!("{compute} CPU nodes")
        };
        t = t.row(vec![site.code.clone(), desc, paper_desc.to_string()]);
    }
    println!("{}", t.render());
}

fn table2(print: bool) -> Energy {
    let scenario = IrisScenario::paper_snapshot(SEED).with_sample_step(SimDuration::from_secs(60));
    let result = scenario.simulate(8);
    if print {
        let mut t = TextTable::new(vec![
            "Site",
            "Facility",
            "PDU",
            "IPMI",
            "Turbostat",
            "Nodes",
        ])
        .title(
            "Table 2: active energy for the snapshot period (kWh) — simulated (paper in parens)",
        );
        let cell = |sim: Option<Energy>, pub_kwh: Option<f64>| match (sim, pub_kwh) {
            (Some(s), Some(p)) => format!("{} ({})", paper_num(s.kilowatt_hours()), paper_num(p)),
            (None, None) => "-".to_string(),
            (s, p) => format!("{:?}/{:?} MISMATCH", s.map(|e| e.kilowatt_hours()), p),
        };
        for (row, published) in result.rows.iter().zip(paper::TABLE2_ROWS.iter()) {
            t = t.row(vec![
                row.site.clone(),
                cell(row.energies.facility, published.facility_kwh),
                cell(row.energies.pdu, published.pdu_kwh),
                cell(row.energies.ipmi, published.ipmi_kwh),
                cell(row.energies.turbostat, published.turbostat_kwh),
                row.nodes.to_string(),
            ]);
        }
        t = t.row(vec![
            "Total".to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!(
                "{} ({})",
                paper_num(result.total().kilowatt_hours()),
                paper_num(paper::TABLE2_TOTAL_KWH)
            ),
            result.nodes().to_string(),
        ]);
        println!("{}", t.render());
    }
    result.total()
}

fn fig1() {
    let sim = uk_november_2022(SEED).simulate();
    let series = sim.intensity();
    println!("Figure 1: UK electricity generation carbon intensity, simulated November 2022");
    println!(
        "  half-hourly mean {:.0} g/kWh, min {:.0}, max {:.0}",
        series.mean().grams_per_kwh(),
        series.min().grams_per_kwh(),
        series.max().grams_per_kwh()
    );
    let refs = series.reference_values();
    println!("  reference reading (p5/median/p95): {refs}   — paper adopts 50 / 175 / 300\n");
    for (day, mean) in series.daily_means() {
        println!(
            "  Nov {:>2}  {:>3.0} g/kWh |{}|",
            day + 1,
            mean.grams_per_kwh(),
            ascii_bar(mean.grams_per_kwh(), 0.0, 350.0, 48)
        );
    }
    println!();
}

fn table3(simulated: Energy) {
    // Paper-exact, from the published effective energy…
    let exact = SnapshotAssessment::run(paper::effective_energy(), &AssessmentParams::paper());
    // …and from our simulated Table 2 total.
    let ours = SnapshotAssessment::run(simulated, &AssessmentParams::paper());

    let mut t = TextTable::new(vec!["Metric", "Low", "Medium", "High"])
        .title("Table 3: active carbon estimates (kgCO2) — paper-exact inputs");
    t = t.row(vec![
        "Active energy carbon".to_string(),
        paper_num(exact.active.base.low.kilograms()),
        paper_num(exact.active.base.mid.kilograms()),
        paper_num(exact.active.base.high.kilograms()),
    ]);
    for (i, label) in ["CI low (50)", "CI med (175)", "CI high (300)"]
        .iter()
        .enumerate()
    {
        t = t.row(vec![
            format!("{label} × PUE row"),
            paper_num(exact.active.cells[i][0].kilograms()),
            paper_num(exact.active.cells[i][1].kilograms()),
            paper_num(exact.active.cells[i][2].kilograms()),
        ]);
        t = t.row(vec![
            "   published".to_string(),
            paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][0]),
            paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][1]),
            paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][2]),
        ]);
    }
    println!("{}", t.render());
    println!(
        "From the simulated Table 2 energy ({} kWh) the central cell is {} kg vs paper 4,409 kg.\n",
        paper_num(simulated.kilowatt_hours()),
        paper_num(ours.active.central().kilograms()),
    );
}

fn table4() {
    let sweep = iriscast_model::EmbodiedSweep::compute(
        paper::server_embodied_bounds(),
        &paper::LIFESPANS_YEARS,
        paper::AMORTISATION_FLEET_SERVERS,
    );
    let mut t = TextTable::new(vec![
        "Lifespan (y)",
        "kg/day/server @400",
        "@1100",
        "Fleet snapshot @400",
        "@1100",
        "Published fleet",
    ])
    .title("Table 4: embodied carbon (kgCO2), 2,398 servers");
    for (row, (_, _, _, f400, f1100)) in sweep.rows.iter().zip(paper::TABLE4_ROWS) {
        t = t.row(vec![
            row.lifespan_years.to_string(),
            format!("{:.2}", row.per_server_daily.lo.kilograms()),
            format!("{:.2}", row.per_server_daily.hi.kilograms()),
            paper_num(row.fleet_snapshot.lo.kilograms()),
            paper_num(row.fleet_snapshot.hi.kilograms()),
            format!("{} / {}", paper_num(f400), paper_num(f1100)),
        ]);
    }
    println!("{}", t.render());
}

fn summary(simulated: Energy) {
    let exact = SnapshotAssessment::paper_exact();
    let ours = SnapshotAssessment::run(simulated, &AssessmentParams::paper());
    println!("Summary (§6)");
    println!("  paper-exact : {}", exact.assessment);
    println!("  simulated   : {}", ours.assessment);
    println!(
        "  flight equivalence: {:.1}–{:.1} continuous 24 h flights (paper: \"1 to 4\"; 2,208 kg each)",
        exact.equivalents.lo.flight_days, exact.equivalents.hi.flight_days
    );
    println!(
        "  embodied share: {:.0}%–{:.0}% of total (active dominates, as the paper concludes)",
        exact.assessment.embodied_share().lo * 100.0,
        exact.assessment.embodied_share().hi * 100.0
    );
}
