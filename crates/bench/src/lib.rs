//! Shared scenario builders for the benchmark harness.
//!
//! Each Criterion bench regenerates one table or figure of the paper; the
//! builders here keep the benches and the `repro` binary on identical
//! configurations so a bench measures exactly the code path that printed
//! the artefact.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod regression;

use iriscast_model::iris::IrisScenario;
use iriscast_telemetry::{NodeGroupTelemetry, NodePowerModel, SiteTelemetryConfig};
use iriscast_units::{Power, SimDuration};

/// The sampling step used by benches and the repro binary: the realistic
/// 30-second interval for small scales, coarsened for the full fleet so a
/// Criterion iteration stays in the tens of milliseconds.
pub fn bench_sample_step(nodes: u32) -> SimDuration {
    if nodes > 500 {
        SimDuration::from_secs(300)
    } else {
        SimDuration::from_secs(30)
    }
}

/// The calibrated paper scenario at a bench-friendly sampling step.
pub fn bench_iris_scenario(seed: u64) -> IrisScenario {
    IrisScenario::paper_snapshot(seed).with_sample_step(SimDuration::from_secs(300))
}

/// A synthetic single-site config of `nodes` homogeneous nodes, for
/// scaling sweeps.
pub fn synthetic_site(nodes: u32, seed: u64) -> SiteTelemetryConfig {
    let mut cfg = SiteTelemetryConfig::new(
        format!("SYN-{nodes}"),
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: nodes,
            power_model: NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0)),
        }],
        seed,
    );
    cfg.sample_step = bench_sample_step(nodes);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_configs() {
        let cfg = synthetic_site(100, 1);
        assert_eq!(cfg.total_nodes(), 100);
        assert_eq!(cfg.sample_step, SimDuration::from_secs(30));
        let big = synthetic_site(1_000, 1);
        assert_eq!(big.sample_step, SimDuration::from_secs(300));
        let scenario = bench_iris_scenario(3);
        assert_eq!(scenario.sites.len(), 6);
    }
}
