//! The bench-regression gate: diff a fresh trajectory file against a
//! committed baseline.
//!
//! `cargo bench` (shim criterion) writes every run into a machine-readable
//! trajectory JSON. CI regenerates that file and calls the `bench_check`
//! binary, which drives [`compare`]: baseline entries missing from the
//! fresh run fail (a silently dropped bench is how perf coverage rots),
//! matching entries fail when the fresh minimum exceeds the baseline
//! minimum by more than the tolerance factor (default 3×, generous enough
//! to absorb runner-class noise while still catching order-of-magnitude
//! rot), and entries that exist only in the fresh run are merely counted
//! — new benches become gated once they land in the committed baseline.
//! Ratios are computed on [`NOISE_FLOOR_NS`]-clamped minima so
//! nanosecond-scale entries cannot fail the gate over cross-host timer
//! jitter.

use criterion::BenchRecord;
use std::fmt;

/// Fresh-vs-baseline comparison of one benchmark id.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDelta {
    /// Benchmark id, `group/name[/param]`.
    pub id: String,
    /// Baseline minimum per-iteration time.
    pub baseline_min_ns: u128,
    /// Fresh minimum per-iteration time.
    pub fresh_min_ns: u128,
    /// `fresh / baseline` (> 1 is slower).
    pub ratio: f64,
}

/// Outcome of diffing a fresh trajectory against a baseline.
#[derive(Clone, Debug, Default)]
pub struct RegressionReport {
    /// Matching entries slower than `tolerance × baseline` — failures.
    pub regressions: Vec<BenchDelta>,
    /// Baseline ids absent from the fresh run — failures.
    pub missing: Vec<String>,
    /// Matching entries within tolerance (includes improvements).
    pub within: Vec<BenchDelta>,
    /// Fresh ids with no baseline entry (not gated yet).
    pub new_entries: usize,
    /// The tolerance factor the gate ran with.
    pub tolerance: f64,
}

impl RegressionReport {
    /// Whether the gate passes: no regressions and no missing entries.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

impl fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bench gate: {} compared, {} regressed, {} missing, {} new (tolerance {:.1}x)",
            self.within.len() + self.regressions.len(),
            self.regressions.len(),
            self.missing.len(),
            self.new_entries,
            self.tolerance,
        )?;
        for d in &self.regressions {
            writeln!(
                f,
                "  REGRESSED {:<55} {:>12} ns -> {:>12} ns ({:.2}x)",
                d.id, d.baseline_min_ns, d.fresh_min_ns, d.ratio
            )?;
        }
        for id in &self.missing {
            writeln!(f, "  MISSING   {id} (in baseline, absent from fresh run)")?;
        }
        // The biggest movers inside tolerance, as context for reviewers.
        let mut sorted: Vec<&BenchDelta> = self.within.iter().collect();
        sorted.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        for d in sorted.iter().take(5) {
            writeln!(
                f,
                "  ok        {:<55} {:>12} ns -> {:>12} ns ({:.2}x)",
                d.id, d.baseline_min_ns, d.fresh_min_ns, d.ratio
            )?;
        }
        Ok(())
    }
}

/// Timings below this are within timer/host jitter: both sides of a
/// ratio are clamped up to it, so single-digit-nanosecond entries (a
/// cached quantile read, an amortisation kernel) cannot fail the gate
/// over scheduler noise on a different host class, while genuine
/// blow-ups past the floor still register.
pub const NOISE_FLOOR_NS: u128 = 100;

/// Diffs `fresh` against `baseline` at `tolerance` (fresh minima may be
/// up to `tolerance ×` the baseline minima before failing; both sides
/// are clamped up to [`NOISE_FLOOR_NS`] first).
///
/// # Panics
/// If `tolerance` is not a finite positive number.
pub fn compare(
    baseline: &[BenchRecord],
    fresh: &[BenchRecord],
    tolerance: f64,
) -> RegressionReport {
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "tolerance must be a positive factor, got {tolerance}"
    );
    let mut report = RegressionReport {
        tolerance,
        ..RegressionReport::default()
    };
    for base in baseline {
        let Some(now) = fresh.iter().find(|r| r.id == base.id) else {
            report.missing.push(base.id.clone());
            continue;
        };
        // The ratio is taken on noise-floored values (which also kills
        // the zero-ns-baseline division); the raw minima are reported
        // untouched so the numbers stay honest.
        let delta = BenchDelta {
            id: base.id.clone(),
            baseline_min_ns: base.min_ns,
            fresh_min_ns: now.min_ns,
            ratio: now.min_ns.max(NOISE_FLOOR_NS) as f64 / base.min_ns.max(NOISE_FLOOR_NS) as f64,
        };
        if delta.ratio > tolerance {
            report.regressions.push(delta);
        } else {
            report.within.push(delta);
        }
    }
    report.new_entries = fresh
        .iter()
        .filter(|r| !baseline.iter().any(|b| b.id == r.id))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, min_ns: u128) -> BenchRecord {
        BenchRecord {
            id: id.into(),
            min_ns,
            mean_ns: min_ns + min_ns / 10,
            samples: 10,
        }
    }

    #[test]
    fn clean_run_passes() {
        let baseline = [rec("a/x", 1_000), rec("a/y", 2_000)];
        let fresh = [rec("a/x", 1_100), rec("a/y", 900), rec("a/z", 5)];
        let report = compare(&baseline, &fresh, 3.0);
        assert!(report.passed(), "{report}");
        assert_eq!(report.within.len(), 2);
        assert_eq!(report.new_entries, 1);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let baseline = [rec("a/x", 1_000)];
        let fresh = [rec("a/x", 3_001)];
        let report = compare(&baseline, &fresh, 3.0);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert!((report.regressions[0].ratio - 3.001).abs() < 1e-9);
        // Exactly at tolerance passes (the bound is "more than").
        let at = compare(&baseline, &[rec("a/x", 3_000)], 3.0);
        assert!(at.passed(), "{at}");
    }

    #[test]
    fn missing_baseline_entry_fails() {
        let baseline = [rec("a/x", 1_000), rec("a/y", 1_000)];
        let fresh = [rec("a/x", 1_000)];
        let report = compare(&baseline, &fresh, 3.0);
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["a/y".to_string()]);
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let report = compare(&[rec("a/x", 0)], &[rec("a/x", 2)], 3.0);
        assert!(report.passed());
        assert!((report.within[0].ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sub_floor_entries_absorb_cross_host_jitter() {
        // A 3 ns kernel reading 250 ns on a noisy runner is timer
        // jitter, not a regression — ratios are taken on noise-floored
        // values. Past the floor, real blow-ups still register.
        let jitter = compare(&[rec("a/tiny", 3)], &[rec("a/tiny", 250)], 3.0);
        assert!(jitter.passed(), "{jitter}");
        let blowup = compare(&[rec("a/tiny", 3)], &[rec("a/tiny", 500)], 3.0);
        assert!(!blowup.passed(), "{blowup}");
        // Raw minima are reported unclamped.
        assert_eq!(blowup.regressions[0].baseline_min_ns, 3);
        assert_eq!(blowup.regressions[0].fresh_min_ns, 500);
    }

    #[test]
    #[should_panic(expected = "positive factor")]
    fn bogus_tolerance_is_rejected() {
        let _ = compare(&[], &[], 0.0);
    }

    #[test]
    fn report_formats_failures_readably() {
        let baseline = [rec("a/x", 1_000), rec("a/gone", 10)];
        let fresh = [rec("a/x", 9_000)];
        let text = compare(&baseline, &fresh, 3.0).to_string();
        assert!(text.contains("REGRESSED a/x"), "{text}");
        assert!(text.contains("MISSING   a/gone"), "{text}");
        assert!(text.contains("1 regressed, 1 missing"), "{text}");
    }
}
