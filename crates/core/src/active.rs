//! Active (operational) carbon — equations (2) and (3) of the paper.

use iriscast_grid::IntensitySeries;
use iriscast_telemetry::EnergySeries;
use iriscast_units::{CarbonIntensity, CarbonMass, Energy};
use serde::{Deserialize, Serialize};

/// Equation (3): `Ca = E × CMe` with a scalar intensity.
pub fn active_carbon(energy: Energy, intensity: CarbonIntensity) -> CarbonMass {
    energy * intensity
}

/// Equation (3) with a time-varying intensity: each energy slot is charged
/// at the intensity of the grid interval containing it. Slots outside the
/// intensity series' coverage are charged at the series mean, so no energy
/// is silently dropped.
///
/// This is the formulation the paper's model implies (`CMe^p` varies with
/// the period) but its evaluation collapses to three scalars; keeping the
/// aligned version lets us quantify how much that collapse loses.
pub fn active_carbon_series(energy: &EnergySeries, intensity: &IntensitySeries) -> CarbonMass {
    let mean = intensity.mean();
    let mut total = CarbonMass::ZERO;
    for (slot, e) in energy.iter() {
        // Charge at the intensity of the interval containing the slot's
        // start; for slots wider than the intensity step this still
        // assigns every joule exactly once.
        let ci = intensity.at(slot.start()).unwrap_or(mean);
        total += e * ci;
    }
    total
}

/// Equation (2)'s component decomposition: the active energy of the DRI
/// split into the classes the paper identifies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ActiveEnergyBreakdown {
    /// Compute/login/storage/service node energy.
    pub nodes: Energy,
    /// Standalone network equipment energy.
    pub network: Energy,
    /// Facility overheads (cooling, distribution, building).
    pub facilities: Energy,
}

impl ActiveEnergyBreakdown {
    /// IT-only energy (nodes + network).
    pub fn it_energy(&self) -> Energy {
        self.nodes + self.network
    }

    /// Total active energy.
    pub fn total(&self) -> Energy {
        self.nodes + self.network + self.facilities
    }

    /// Applies equation (3) to every class at a single intensity.
    pub fn carbon(&self, intensity: CarbonIntensity) -> ActiveCarbonBreakdown {
        ActiveCarbonBreakdown {
            nodes: self.nodes * intensity,
            network: self.network * intensity,
            facilities: self.facilities * intensity,
        }
    }
}

/// Equation (2): per-class active carbon.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ActiveCarbonBreakdown {
    /// Carbon from node energy.
    pub nodes: CarbonMass,
    /// Carbon from network energy.
    pub network: CarbonMass,
    /// Carbon from facility overheads.
    pub facilities: CarbonMass,
}

impl ActiveCarbonBreakdown {
    /// Total active carbon `Ca`.
    pub fn total(&self) -> CarbonMass {
        self.nodes + self.network + self.facilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::{Period, SimDuration, Timestamp};

    #[test]
    fn scalar_matches_paper_cells() {
        let e = Energy::from_kilowatt_hours(19_380.0);
        let c = active_carbon(e, CarbonIntensity::from_grams_per_kwh(175.0));
        assert!((c.kilograms() - 3_391.5).abs() < 0.1);
    }

    #[test]
    fn series_alignment_charges_each_slot() {
        // Energy: 10 kWh in each of 4 half-hour slots.
        let energy = EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![Energy::from_kilowatt_hours(10.0); 4],
        );
        // Intensity: 100, 200, 300, 400 g/kWh.
        let intensity = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            (1..=4)
                .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 * f64::from(i)))
                .collect(),
        );
        let c = active_carbon_series(&energy, &intensity);
        // 10×(100+200+300+400) g = 10 kg.
        assert!((c.kilograms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn series_fallback_uses_mean_for_uncovered_slots() {
        let energy = EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![Energy::from_kilowatt_hours(10.0); 4],
        );
        // Intensity covers only the first two slots at 100/300.
        let intensity = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![
                CarbonIntensity::from_grams_per_kwh(100.0),
                CarbonIntensity::from_grams_per_kwh(300.0),
            ],
        );
        let c = active_carbon_series(&energy, &intensity);
        // Covered: 10×100 + 10×300 = 4 kg; uncovered 2 slots at mean 200:
        // 4 kg. Total 8 kg.
        assert!((c.kilograms() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_equals_series_for_constant_intensity() {
        let energy = EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            (0..48)
                .map(|i| Energy::from_kilowatt_hours(5.0 + f64::from(i % 7)))
                .collect(),
        );
        let ci = CarbonIntensity::from_grams_per_kwh(175.0);
        let series =
            IntensitySeries::constant(Period::snapshot_24h(), SimDuration::SETTLEMENT_PERIOD, ci);
        let via_series = active_carbon_series(&energy, &series);
        let via_scalar = active_carbon(energy.total(), ci);
        assert!((via_series.grams() - via_scalar.grams()).abs() < 1e-6);
    }

    #[test]
    fn breakdown_totals() {
        let b = ActiveEnergyBreakdown {
            nodes: Energy::from_kilowatt_hours(100.0),
            network: Energy::from_kilowatt_hours(10.0),
            facilities: Energy::from_kilowatt_hours(30.0),
        };
        assert_eq!(b.it_energy().kilowatt_hours(), 110.0);
        assert_eq!(b.total().kilowatt_hours(), 140.0);
        let c = b.carbon(CarbonIntensity::from_grams_per_kwh(100.0));
        assert!((c.total().kilograms() - 14.0).abs() < 1e-12);
        assert!((c.nodes.kilograms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_matters_for_time_varying_grids() {
        // Energy concentrated in dirty hours must cost more than the
        // scalar-mean approximation says.
        let mut intensities = vec![CarbonIntensity::from_grams_per_kwh(300.0); 24];
        intensities.extend(vec![CarbonIntensity::from_grams_per_kwh(100.0); 24]);
        let grid = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            intensities,
        );
        let mut slots = vec![Energy::from_kilowatt_hours(2.0); 24];
        slots.extend(vec![Energy::from_kilowatt_hours(0.0); 24]);
        let dirty_loaded =
            EnergySeries::new(Timestamp::EPOCH, SimDuration::SETTLEMENT_PERIOD, slots);
        let aligned = active_carbon_series(&dirty_loaded, &grid);
        let scalar = active_carbon(dirty_loaded.total(), grid.mean());
        assert!(
            aligned.grams() > scalar.grams() * 1.4,
            "aligned {} vs scalar {}",
            aligned,
            scalar
        );
    }
}
