//! The end-to-end snapshot assessment pipeline.
//!
//! [`SnapshotAssessment`] is the paper-shaped facade: fixed three-scenario
//! axes, every published table in one call. It is a compatibility adapter
//! over the scenario-space engine — [`AssessmentParams::engine`] exposes
//! the equivalent [`crate::engine::Assessment`] for arbitrary-cardinality
//! sweeps of the same parameter set.

use crate::engine::Assessment;
use crate::equivalence::{equivalences, Equivalences};
use crate::error::Result;
use crate::model::CarbonAssessment;
use crate::paper;
use crate::scenario::{ActiveCarbonGrid, EmbodiedSweep};
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue, TriEstimate};
use serde::{Deserialize, Serialize};

/// All the scenario parameters an assessment sweeps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AssessmentParams {
    /// Grid carbon-intensity references (low/medium/high).
    pub ci: TriEstimate<CarbonIntensity>,
    /// PUE sweep (low/medium/high).
    pub pue: TriEstimate<Pue>,
    /// Per-server embodied bounds.
    pub embodied_per_server: Bounds<CarbonMass>,
    /// Lifespans to sweep, years.
    pub lifespans_years: Vec<u32>,
    /// Servers amortised.
    pub servers: u32,
}

impl AssessmentParams {
    /// The paper's exact parameterisation (with Table 3's implied 1.6
    /// high PUE).
    pub fn paper() -> Self {
        AssessmentParams {
            ci: paper::ci_references(),
            pue: paper::pue_table3(),
            embodied_per_server: paper::server_embodied_bounds(),
            lifespans_years: paper::LIFESPANS_YEARS.to_vec(),
            servers: paper::AMORTISATION_FLEET_SERVERS,
        }
    }

    /// The equivalent scenario-space assessment for a given IT energy:
    /// the same parameters as a 3 × 3 × 2 × *n* space ready for batch
    /// evaluation, envelope/percentile queries, or axis refinement.
    pub fn engine(&self, it_energy: Energy) -> Result<Assessment> {
        Assessment::builder()
            .energy(it_energy)
            .ci_tri(self.ci)
            .pue_tri(self.pue)
            .embodied_bounds(self.embodied_per_server)
            .lifespans_years(&self.lifespans_years)
            .servers(self.servers)
            .build()
    }
}

/// A complete snapshot assessment: every table the paper reports, derived
/// from one IT-energy figure and one parameter set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotAssessment {
    /// The IT energy assessed.
    pub it_energy: Energy,
    /// Table 3: the CI × PUE active grid.
    pub active: ActiveCarbonGrid,
    /// Table 4: the embodied sweep.
    pub embodied: EmbodiedSweep,
    /// Equation (1) over the table envelopes.
    pub assessment: CarbonAssessment,
    /// Flight/car/household equivalents of the total envelope.
    pub equivalents: Bounds<Equivalences>,
}

impl SnapshotAssessment {
    /// Runs the full pipeline, reporting invalid parameters (an empty
    /// lifespan sweep, a sub-1.0 PUE) as typed errors.
    pub fn try_run(it_energy: Energy, params: &AssessmentParams) -> Result<Self> {
        let active = ActiveCarbonGrid::compute(it_energy, params.ci, params.pue);
        let embodied = EmbodiedSweep::try_compute(
            params.embodied_per_server,
            &params.lifespans_years,
            params.servers,
        )?;
        let assessment = CarbonAssessment::new(active.envelope(), embodied.try_envelope()?);
        let total = assessment.total();
        Ok(SnapshotAssessment {
            it_energy,
            active,
            embodied,
            assessment,
            equivalents: Bounds::new(equivalences(total.lo), equivalences(total.hi)),
        })
    }

    /// Runs the full pipeline.
    ///
    /// # Panics
    /// On an empty lifespan sweep (see [`SnapshotAssessment::try_run`]).
    pub fn run(it_energy: Energy, params: &AssessmentParams) -> Self {
        match Self::try_run(it_energy, params) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// The paper's own assessment: published effective energy + published
    /// parameters. Regenerates §6's summary numbers exactly.
    pub fn paper_exact() -> Self {
        SnapshotAssessment::run(paper::effective_energy(), &AssessmentParams::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exact_summary() {
        let a = SnapshotAssessment::paper_exact();
        let total = a.assessment.total();
        assert!((total.lo.kilograms() - 1_441.0).abs() < 2.0);
        assert!((total.hi.kilograms() - 11_711.0).abs() < 2.0);
        // §6: "between 1 and 4 of these passenger journeys" (24 h flights);
        // the extremes bracket that statement.
        assert!(a.equivalents.lo.flight_days < 1.0);
        assert!(a.equivalents.hi.flight_days > 4.0);
    }

    #[test]
    fn pipeline_scales_with_energy() {
        let params = AssessmentParams::paper();
        let small = SnapshotAssessment::run(Energy::from_kilowatt_hours(1_000.0), &params);
        let large = SnapshotAssessment::run(Energy::from_kilowatt_hours(10_000.0), &params);
        // Active scales linearly; embodied is energy-independent.
        let ratio = large.active.central() / small.active.central();
        assert!((ratio - 10.0).abs() < 1e-9);
        assert_eq!(small.embodied, large.embodied);
    }

    #[test]
    fn embodied_share_rises_as_grid_decarbonises() {
        let mut params = AssessmentParams::paper();
        let baseline = SnapshotAssessment::run(paper::effective_energy(), &params);
        // A decarbonised grid: 10/25/50 g/kWh.
        params.ci = TriEstimate::new(
            CarbonIntensity::from_grams_per_kwh(10.0),
            CarbonIntensity::from_grams_per_kwh(25.0),
            CarbonIntensity::from_grams_per_kwh(50.0),
        );
        let future = SnapshotAssessment::run(paper::effective_energy(), &params);
        let share_now = baseline.assessment.embodied_share().hi;
        let share_future = future.assessment.embodied_share().hi;
        assert!(
            share_future > share_now * 2.0,
            "embodied share should jump: {share_now:.2} → {share_future:.2}"
        );
        // The paper's §6 prediction: embodied comes to dominate.
        assert!(share_future > 0.5);
    }

    #[test]
    fn try_run_reports_empty_sweep_as_typed_error() {
        let mut params = AssessmentParams::paper();
        params.lifespans_years.clear();
        let err = SnapshotAssessment::try_run(paper::effective_energy(), &params).unwrap_err();
        assert_eq!(
            err,
            crate::error::Error::EmptyAxis {
                axis: "lifespan".into()
            }
        );
    }

    #[test]
    fn engine_bridge_reproduces_the_snapshot_envelope() {
        let params = AssessmentParams::paper();
        let snapshot = SnapshotAssessment::run(paper::effective_energy(), &params);
        let results = params
            .engine(paper::effective_energy())
            .unwrap()
            .evaluate_space();
        let env = results.envelope();
        // The batch envelope is exactly the table-extremes assessment.
        assert_eq!(env.active, snapshot.assessment.active);
        assert_eq!(env.embodied, snapshot.assessment.embodied);
        assert_eq!(results.assessment().total(), snapshot.assessment.total());
    }

    #[test]
    fn serde_round_trip() {
        let a = SnapshotAssessment::paper_exact();
        let json = serde_json::to_string(&a).unwrap();
        let back: SnapshotAssessment = serde_json::from_str(&json).unwrap();
        // JSON decimal formatting may lose the last ulp of an f64, so
        // compare the load-bearing fields to a relative tolerance.
        let close = |x: f64, y: f64| (x - y).abs() <= x.abs().max(y.abs()) * 1e-12 + 1e-12;
        assert!(close(a.it_energy.joules(), back.it_energy.joules()));
        assert!(close(
            a.assessment.total().hi.grams(),
            back.assessment.total().hi.grams()
        ));
        assert_eq!(a.embodied.rows.len(), back.embodied.rows.len());
        for (x, y) in a.embodied.rows.iter().zip(back.embodied.rows.iter()) {
            assert_eq!(x.lifespan_years, y.lifespan_years);
            assert!(close(
                x.fleet_snapshot.lo.grams(),
                y.fleet_snapshot.lo.grams()
            ));
        }
        assert!(close(
            a.equivalents.hi.flight_days,
            back.equivalents.hi.flight_days
        ));
    }
}
