//! Embodied-carbon amortisation — equation (4) and §4.3 of the paper.

use iriscast_units::{CarbonMass, SimDuration};
use serde::{Deserialize, Serialize};

/// How a fixed embodied cost is spread across a hardware lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AmortizationPolicy {
    /// Equal charge per unit time — the paper's method (§4.3: "5kg over
    /// 5 years … 500 grams for 6 months").
    Linear,
    /// Linear, scaled by how hard the hardware worked during the window
    /// relative to its lifetime average (`relative_usage = 1` reduces to
    /// linear). Over a full lifetime at average usage the total is
    /// conserved.
    UsageWeighted {
        /// Window usage divided by lifetime-average usage.
        relative_usage: f64,
    },
    /// Front-loaded declining balance at `rate` per year, normalised so
    /// the whole lifetime still sums to the full embodied cost. Reflects
    /// the argument that early life should carry more of the manufacturing
    /// burden (newer hardware displaces older, dirtier kit).
    DecliningBalance {
        /// Fractional annual decline, in `(0, 1)`.
        rate: f64,
    },
}

impl AmortizationPolicy {
    /// Carbon charged to a window of `window` length that starts `age`
    /// into a lifetime of `lifespan`, for hardware with `total` embodied
    /// carbon. Windows extending past end-of-life only charge the
    /// in-life portion.
    ///
    /// # Panics
    /// If `lifespan` is not positive, `age`/`window` are negative, or a
    /// policy parameter is out of range.
    pub fn charge(
        &self,
        total: CarbonMass,
        lifespan: SimDuration,
        age: SimDuration,
        window: SimDuration,
    ) -> CarbonMass {
        assert!(lifespan.as_secs() > 0, "lifespan must be positive");
        assert!(!age.is_negative(), "age must be non-negative");
        assert!(!window.is_negative(), "window must be non-negative");
        // Clip the window to the remaining life.
        let start = age.as_secs().min(lifespan.as_secs());
        let end = (age + window).as_secs().min(lifespan.as_secs());
        if end <= start {
            return CarbonMass::ZERO;
        }
        let clipped = SimDuration::from_secs(end - start);
        match self {
            AmortizationPolicy::Linear => total * clipped.ratio_of(lifespan),
            AmortizationPolicy::UsageWeighted { relative_usage } => {
                assert!(
                    *relative_usage >= 0.0,
                    "relative usage must be non-negative"
                );
                total * clipped.ratio_of(lifespan) * *relative_usage
            }
            AmortizationPolicy::DecliningBalance { rate } => {
                assert!(
                    (0.0..1.0).contains(rate) && *rate > 0.0,
                    "declining-balance rate must lie in (0, 1)"
                );
                // Continuous declining balance: density ∝ (1−r)^t, t in
                // years. Integral over [a, b] of λ^t dt = (λ^a − λ^b)/(−lnλ);
                // normalise by the integral over [0, L].
                let lambda = 1.0 - rate;
                let a = SimDuration::from_secs(start).as_years();
                let b = SimDuration::from_secs(end).as_years();
                let l = lifespan.as_years();
                let seg = lambda.powf(a) - lambda.powf(b);
                let whole = 1.0 - lambda.powf(l);
                total * (seg / whole)
            }
        }
    }
}

/// Table 4, column "Embodied carbon per 24 hours per server": linear
/// amortisation of one server over `lifespan_years` (365-day years, per
/// the paper's arithmetic).
pub fn per_server_daily(embodied: CarbonMass, lifespan_years: f64) -> CarbonMass {
    assert!(lifespan_years > 0.0, "lifespan must be positive");
    embodied / (lifespan_years * 365.0)
}

/// Table 4, column "Snapshot Embodied carbon": the 24-hour charge for a
/// fleet of `servers` identical servers.
pub fn fleet_snapshot_daily(
    embodied_per_server: CarbonMass,
    lifespan_years: f64,
    servers: u32,
) -> CarbonMass {
    per_server_daily(embodied_per_server, lifespan_years) * f64::from(servers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg(v: f64) -> CarbonMass {
        CarbonMass::from_kilograms(v)
    }

    #[test]
    fn papers_worked_example() {
        // §4.3: 5 kg embodied, 5-year life, 6-month window → 500 g.
        let charge = AmortizationPolicy::Linear.charge(
            kg(5.0),
            SimDuration::from_years(5.0),
            SimDuration::ZERO,
            SimDuration::from_years(0.5),
        );
        assert!((charge.grams() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn table4_per_server_cells() {
        for (years, d400, d1100, _, _) in crate::paper::TABLE4_ROWS {
            let y = f64::from(years);
            assert!(
                (per_server_daily(kg(400.0), y).kilograms() - d400).abs() < 0.01,
                "{years}y @400"
            );
            assert!(
                (per_server_daily(kg(1_100.0), y).kilograms() - d1100).abs() < 0.01,
                "{years}y @1100"
            );
        }
    }

    #[test]
    fn table4_fleet_cells() {
        for (years, _, _, f400, f1100) in crate::paper::TABLE4_ROWS {
            let y = f64::from(years);
            let servers = crate::paper::AMORTISATION_FLEET_SERVERS;
            assert!(
                (fleet_snapshot_daily(kg(400.0), y, servers).kilograms() - f400).abs() < 1.0,
                "{years}y fleet @400"
            );
            assert!(
                (fleet_snapshot_daily(kg(1_100.0), y, servers).kilograms() - f1100).abs() < 1.0,
                "{years}y fleet @1100"
            );
        }
    }

    #[test]
    fn all_policies_conserve_total_over_lifetime() {
        let total = kg(1_100.0);
        let life = SimDuration::from_years(5.0);
        for policy in [
            AmortizationPolicy::Linear,
            AmortizationPolicy::UsageWeighted {
                relative_usage: 1.0,
            },
            AmortizationPolicy::DecliningBalance { rate: 0.3 },
        ] {
            // Sum 60 monthly windows.
            let month = SimDuration::from_secs(life.as_secs() / 60);
            let mut sum = CarbonMass::ZERO;
            for m in 0..60 {
                sum += policy.charge(total, life, month * m, month);
            }
            assert!(
                (sum.kilograms() - 1_100.0).abs() < 0.01,
                "{policy:?} sums to {}",
                sum.kilograms()
            );
        }
    }

    #[test]
    fn declining_balance_front_loads() {
        let policy = AmortizationPolicy::DecliningBalance { rate: 0.4 };
        let total = kg(100.0);
        let life = SimDuration::from_years(4.0);
        let year = SimDuration::from_years(1.0);
        let y0 = policy.charge(total, life, SimDuration::ZERO, year);
        let y3 = policy.charge(total, life, year * 3, year);
        assert!(y0.kilograms() > 2.0 * y3.kilograms());
        // Linear charges the same each year.
        let lin0 = AmortizationPolicy::Linear.charge(total, life, SimDuration::ZERO, year);
        let lin3 = AmortizationPolicy::Linear.charge(total, life, year * 3, year);
        assert!((lin0.kilograms() - lin3.kilograms()).abs() < 1e-9);
    }

    #[test]
    fn usage_weighting_scales() {
        let total = kg(100.0);
        let life = SimDuration::from_years(5.0);
        let day = SimDuration::DAY;
        let linear = AmortizationPolicy::Linear.charge(total, life, SimDuration::ZERO, day);
        let busy = AmortizationPolicy::UsageWeighted {
            relative_usage: 1.5,
        }
        .charge(total, life, SimDuration::ZERO, day);
        let idle = AmortizationPolicy::UsageWeighted {
            relative_usage: 0.25,
        }
        .charge(total, life, SimDuration::ZERO, day);
        assert!((busy.grams() - linear.grams() * 1.5).abs() < 1e-9);
        assert!((idle.grams() - linear.grams() * 0.25).abs() < 1e-9);
    }

    #[test]
    fn window_clipped_at_end_of_life() {
        let total = kg(100.0);
        let life = SimDuration::from_years(1.0);
        // Window starts 6 months before EoL and runs for a year: only the
        // first 6 months charge.
        let charge = AmortizationPolicy::Linear.charge(
            total,
            life,
            SimDuration::from_years(0.5),
            SimDuration::from_years(1.0),
        );
        assert!((charge.kilograms() - 50.0).abs() < 0.01);
        // Entirely past EoL: zero.
        let zero = AmortizationPolicy::Linear.charge(
            total,
            life,
            SimDuration::from_years(2.0),
            SimDuration::from_years(1.0),
        );
        assert_eq!(zero, CarbonMass::ZERO);
    }

    #[test]
    fn zero_window_charges_nothing() {
        let c = AmortizationPolicy::Linear.charge(
            kg(100.0),
            SimDuration::from_years(5.0),
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(c, CarbonMass::ZERO);
    }

    #[test]
    #[should_panic(expected = "lifespan must be positive")]
    fn zero_lifespan_rejected() {
        let _ = AmortizationPolicy::Linear.charge(
            kg(1.0),
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::DAY,
        );
    }

    #[test]
    #[should_panic(expected = "rate must lie in (0, 1)")]
    fn bad_rate_rejected() {
        let _ = AmortizationPolicy::DecliningBalance { rate: 1.5 }.charge(
            kg(1.0),
            SimDuration::from_years(1.0),
            SimDuration::ZERO,
            SimDuration::DAY,
        );
    }
}
