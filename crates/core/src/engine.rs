//! The scenario-space evaluation engine.
//!
//! This is the generalised form of the paper's methodology: one IT-energy
//! figure, one fleet, and a [`ScenarioSpace`] of model inputs, evaluated
//! to `total = active + embodied` at every point. The paper's Tables 3
//! and 4 are tiny spaces (3 × 3 and 2 × 5); the engine evaluates spaces of
//! any cardinality, serially or chunked across threads, and answers
//! envelope/percentile/marginal queries over the batch.
//!
//! Entry point: [`Assessment::builder`].
//!
//! ```
//! use iriscast_model::engine::Assessment;
//! use iriscast_model::paper;
//!
//! // The paper's exact parameter space, as a 3 × 3 × 2 × 5 scenario space.
//! let assessment = Assessment::builder()
//!     .energy(paper::effective_energy())
//!     .ci_tri(paper::ci_references())
//!     .pue_tri(paper::pue_table3())
//!     .embodied_bounds(paper::server_embodied_bounds())
//!     .lifespans_years(&paper::LIFESPANS_YEARS)
//!     .servers(paper::AMORTISATION_FLEET_SERVERS)
//!     .build()
//!     .unwrap();
//! let results = assessment.evaluate_space();
//! assert_eq!(results.len(), 90);
//! // §6's active envelope falls out of the batch: 1,066–9,302 kg.
//! let env = results.envelope();
//! assert!((env.active.lo.kilograms() - 1_065.9).abs() < 0.1);
//! assert!((env.active.hi.kilograms() - 9_302.4).abs() < 0.1);
//! ```

use crate::embodied::fleet_snapshot_daily;
use crate::error::{Error, Result};
use crate::space::{ScenarioAxis, ScenarioPoint, ScenarioSpace};
use crate::stats_view::StatsAccumulator;
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue, SimDuration, TriEstimate};
use std::sync::OnceLock;

// Re-exported here because the query types began life in this module;
// they are defined alongside the rest of the statistics surface in
// [`crate::stats_view`].
pub use crate::stats_view::{Envelope, Marginal, TotalsSummary};

/// Active and embodied carbon for one evaluated scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointOutcome {
    /// Active carbon for the window (equations 2–3).
    pub active: CarbonMass,
    /// Embodied carbon apportioned to the window (equation 4).
    pub embodied: CarbonMass,
}

impl PointOutcome {
    /// Equation (1): `Ct = Ca + Ce`.
    pub fn total(&self) -> CarbonMass {
        self.active + self.embodied
    }

    /// Embodied share of the total, in `[0, 1]`.
    pub fn embodied_share(&self) -> f64 {
        self.embodied / self.total()
    }
}

/// One evaluated scenario: the resolved parameters plus the outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointResult {
    /// The scenario that was evaluated.
    pub point: ScenarioPoint,
    /// Its active/embodied outcome.
    pub outcome: PointOutcome,
}

/// The model kernel: one scenario, evaluated.
///
/// `window_days` scales the embodied charge (1.0 is the paper's 24-hour
/// snapshot). Every evaluation path — single point, batch, parallel batch,
/// and all the legacy adapters — funnels through this function, which is
/// what keeps them bit-identical.
///
/// The caller guarantees `lifespan_years > 0` (the builder and
/// [`ScenarioSpace`] validate it; the underlying amortisation helper
/// asserts it).
pub fn evaluate_one(
    energy: Energy,
    servers: u32,
    window_days: f64,
    ci: CarbonIntensity,
    pue: Pue,
    embodied_per_server: CarbonMass,
    lifespan_years: f64,
) -> PointOutcome {
    PointOutcome {
        active: pue.apply(energy) * ci,
        embodied: fleet_snapshot_daily(embodied_per_server, lifespan_years, servers) * window_days,
    }
}

/// A fully resolved assessment: energy, fleet, window, and the scenario
/// space to sweep. Built with [`Assessment::builder`].
#[derive(Clone, Debug)]
pub struct Assessment {
    energy: Energy,
    servers: u32,
    window_days: f64,
    space: ScenarioSpace,
    /// Kernel tables, built lazily on first evaluation and reused by
    /// every subsequent batch/stream/chunk call — an `Assessment` is
    /// immutable, so the cache never needs invalidating.
    tables: OnceLock<EvalTables>,
}

/// Equality is over the assessment's parameters; the lazily built kernel
///-table cache is a derived artefact and deliberately not compared.
impl PartialEq for Assessment {
    fn eq(&self, other: &Self) -> bool {
        self.energy == other.energy
            && self.servers == other.servers
            && self.window_days == other.window_days
            && self.space == other.space
    }
}

impl Assessment {
    /// Starts a builder with nothing filled in.
    pub fn builder() -> AssessmentBuilder {
        AssessmentBuilder::default()
    }

    /// The paper's exact parameterisation (effective energy, Table 3/4
    /// axes, 2,398 servers, 24-hour window).
    pub fn paper() -> Self {
        Assessment::builder()
            .energy(crate::paper::effective_energy())
            .ci_tri(crate::paper::ci_references())
            .pue_tri(crate::paper::pue_table3())
            .embodied_bounds(crate::paper::server_embodied_bounds())
            .lifespans_years(&crate::paper::LIFESPANS_YEARS)
            .servers(crate::paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .expect("paper parameters are valid")
    }

    /// The IT energy being assessed.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// The fleet size amortised.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// The window length the embodied charge covers, in days.
    pub fn window_days(&self) -> f64 {
        self.window_days
    }

    /// The scenario space this assessment sweeps.
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// Evaluates one scenario point.
    pub fn evaluate(&self, point: &ScenarioPoint) -> PointResult {
        PointResult {
            point: *point,
            outcome: evaluate_one(
                self.energy,
                self.servers,
                self.window_days,
                point.ci,
                point.pue,
                point.embodied_per_server,
                point.lifespan_years,
            ),
        }
    }

    /// Evaluates the scenario at a flat index.
    pub fn evaluate_index(&self, index: usize) -> Result<PointResult> {
        Ok(self.evaluate(&self.space.point(index)?))
    }

    /// Precomputed multiplication tables for this assessment: one active
    /// value per (CI, PUE) pair (`pue.apply(energy) * ci`, exactly
    /// [`evaluate_one`]'s arithmetic) and one windowed fleet charge per
    /// (embodied, lifespan) pair. Factoring these out makes a batch
    /// O(points) table reads while keeping each point's value identical
    /// to [`evaluate_one`] — it is what keeps every evaluation path
    /// (materialised, streamed, chunked, parallel) bit-identical.
    ///
    /// Built once, lazily, and cached: repeated sweeps over the same
    /// assessment (the warm path) pay no per-call table work.
    fn tables(&self) -> &EvalTables {
        self.tables.get_or_init(|| {
            let pued: Vec<Energy> = self
                .space
                .pue()
                .iter()
                .map(|p| p.apply(self.energy))
                .collect();
            let mut active = Vec::with_capacity(self.space.ci().len() * pued.len());
            for &ci in self.space.ci() {
                for &pe in &pued {
                    active.push(pe * ci);
                }
            }
            let mut embodied =
                Vec::with_capacity(self.space.embodied().len() * self.space.lifespan_years().len());
            for &e in self.space.embodied() {
                for &years in self.space.lifespan_years() {
                    embodied.push(fleet_snapshot_daily(e, years, self.servers) * self.window_days);
                }
            }
            EvalTables { active, embodied }
        })
    }

    /// Evaluates every point in the space, serially, in index order.
    pub fn evaluate_space(&self) -> SpaceResults {
        materialise(&self.space, self.tables())
    }

    /// Evaluates the space into an existing [`SpaceResults`], reusing its
    /// column buffers (and, where capacities allow, its space's axis
    /// buffers) instead of allocating fresh ones — the warm path for
    /// repeated sweeps such as the `day_sweep` pattern. Values are
    /// bit-identical to [`Assessment::evaluate_space`]; after the first
    /// sweep warms the buffers, subsequent same-shape sweeps through this
    /// call allocate nothing.
    ///
    /// Any cached statistics view on `out` (see
    /// [`SpaceResults::percentile`]) is invalidated; it is rebuilt lazily
    /// on the next quantile query.
    pub fn evaluate_space_into(&self, out: &mut SpaceResults) {
        evaluate_into(&self.space, self.tables(), out);
    }

    /// Evaluates the space chunked across `threads` OS threads (via the
    /// crossbeam scope shim). Results are identical — not just close — to
    /// [`Assessment::evaluate_space`]: each point's arithmetic is the
    /// same, only the loop is partitioned. Spaces smaller than
    /// [`PAR_SERIAL_CUTOFF`] are evaluated serially (the answer is
    /// bit-identical either way; below the cutoff serial is faster).
    ///
    /// `threads == 0` selects the machine's available parallelism.
    pub fn par_evaluate_space(&self, threads: usize) -> SpaceResults {
        par_materialise(&self.space, self.tables(), threads)
    }

    /// Streams every point, in index order, to `sink` — no result
    /// columns are materialised, so memory stays O(1) in the space's
    /// cardinality. This is how >10M-point sweeps stay inside a bounded
    /// footprint; for batch queries (envelope, percentiles, marginals)
    /// use [`Assessment::evaluate_space`] instead.
    pub fn stream_space(&self, sink: impl FnMut(PointResult)) {
        stream_points(&self.space, self.tables(), sink);
    }

    /// Streamed evaluation with the per-point arithmetic chunked across
    /// `threads` OS threads. `sink` still observes every point in index
    /// order, and every value is bit-identical to
    /// [`Assessment::stream_space`]; memory is bounded by
    /// `threads × `[`STREAM_CHUNK_POINTS`] points in flight.
    ///
    /// `threads == 0` selects the machine's available parallelism.
    pub fn par_stream_space(&self, threads: usize, sink: impl FnMut(PointResult)) {
        par_stream_points(&self.space, self.tables(), threads, sink);
    }

    /// Iterates the space as materialised chunks of at most
    /// `chunk_points` points (clamped to ≥ 1) — the middle ground
    /// between one giant [`SpaceResults`] and a per-point sink: each
    /// [`SpaceChunk`] holds contiguous columns for vectorised
    /// consumption, and only one chunk is alive at a time.
    pub fn chunks(&self, chunk_points: usize) -> SpaceChunks<'_> {
        chunks_over(&self.space, self.tables().clone(), chunk_points)
    }
}

/// Below this many points `par_evaluate_space` falls back to the serial
/// path. Per-point work is two table reads and one add, so thread
/// spawn/join overhead dominates small batches: the PR 2 trajectory
/// measured 13.8 µs parallel vs 2.6 µs serial at 864 points, with
/// break-even sitting just above 10⁵ points on the dev container (see
/// `crates/bench/benches/scenario_space.rs`). The fallback is safe
/// because both paths are bit-identical by construction.
pub const PAR_SERIAL_CUTOFF: usize = 1 << 17;

/// Points per in-flight chunk for the streaming evaluators — small
/// enough that `threads × STREAM_CHUNK_POINTS × 3` columns stay a few
/// megabytes, large enough to amortise thread spawn/join.
pub const STREAM_CHUNK_POINTS: usize = 1 << 16;

/// Precomputed per-(CI, PUE) active and per-(embodied, lifespan) fleet
/// charges — the shared kernel every evaluation path reads. The scalar
/// engine fills `active` from one energy figure; the time-resolved
/// engine fills it from per-interval convolutions. Everything downstream
/// (materialise / stream / chunk / parallel) is common code, which is
/// what keeps the paths bit-identical to each other.
#[derive(Clone, Debug)]
pub(crate) struct EvalTables {
    /// Active carbon per (ci, pue) pair, ci-major.
    pub(crate) active: Vec<CarbonMass>,
    /// Windowed embodied charge per (embodied, lifespan) pair, embodied-major.
    pub(crate) embodied: Vec<CarbonMass>,
}

impl EvalTables {
    /// Calls `sink(flat_index, outcome)` for every point in
    /// `[start, end)`, in index order, without materialising anything.
    fn for_each(&self, start: usize, end: usize, mut sink: impl FnMut(usize, PointOutcome)) {
        let n_inner = self.embodied.len();
        let mut outer = start / n_inner;
        let mut inner = start % n_inner;
        for idx in start..end {
            sink(
                idx,
                PointOutcome {
                    active: self.active[outer],
                    embodied: self.embodied[inner],
                },
            );
            inner += 1;
            if inner == n_inner {
                inner = 0;
                outer += 1;
            }
        }
    }

    /// Materialises the three result columns for `[start, end)` into
    /// caller-owned buffers, clearing them first — the buffer-reuse
    /// primitive behind [`Assessment::evaluate_space_into`]. When the
    /// buffers' capacities already fit the range (the warm path), this
    /// allocates nothing.
    fn fill_columns_into(
        &self,
        start: usize,
        end: usize,
        active: &mut Vec<CarbonMass>,
        embodied: &mut Vec<CarbonMass>,
        total: &mut Vec<CarbonMass>,
    ) {
        active.clear();
        embodied.clear();
        total.clear();
        active.reserve(end - start);
        embodied.reserve(end - start);
        total.reserve(end - start);
        self.for_each(start, end, |_, o| {
            active.push(o.active);
            embodied.push(o.embodied);
            total.push(o.active + o.embodied);
        });
    }

    /// Materialises the three result columns for `[start, end)`.
    fn fill_columns(
        &self,
        start: usize,
        end: usize,
    ) -> (Vec<CarbonMass>, Vec<CarbonMass>, Vec<CarbonMass>) {
        let mut active = Vec::new();
        let mut embodied = Vec::new();
        let mut total = Vec::new();
        self.fill_columns_into(start, end, &mut active, &mut embodied, &mut total);
        (active, embodied, total)
    }

    /// Materialises only the active/embodied columns for `[start, end)` —
    /// the streaming paths derive totals at the sink, so building the
    /// third column would be wasted work.
    fn fill_pairs(&self, start: usize, end: usize) -> (Vec<CarbonMass>, Vec<CarbonMass>) {
        let mut active = Vec::with_capacity(end - start);
        let mut embodied = Vec::with_capacity(end - start);
        self.for_each(start, end, |_, o| {
            active.push(o.active);
            embodied.push(o.embodied);
        });
        (active, embodied)
    }
}

/// Resolves a thread-count request (`0` = available parallelism) against
/// the number of points.
fn resolve_threads(threads: usize, n: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n.max(1))
}

/// Serial materialisation over the kernel tables.
pub(crate) fn materialise(space: &ScenarioSpace, tables: &EvalTables) -> SpaceResults {
    let (active, embodied, total) = tables.fill_columns(0, space.len());
    SpaceResults {
        space: space.clone(),
        active,
        embodied,
        total,
        sorted: OnceLock::new(),
    }
}

/// Serial materialisation into an existing [`SpaceResults`], reusing its
/// buffers (see [`Assessment::evaluate_space_into`]). Bit-identical to
/// [`materialise`]; the stale statistics cache is dropped so queries
/// can't read the previous sweep's totals.
pub(crate) fn evaluate_into(space: &ScenarioSpace, tables: &EvalTables, out: &mut SpaceResults) {
    if out.space != *space {
        out.space.clone_from(space);
    }
    out.sorted = OnceLock::new();
    tables.fill_columns_into(
        0,
        space.len(),
        &mut out.active,
        &mut out.embodied,
        &mut out.total,
    );
}

/// Parallel materialisation: one contiguous range per thread, results
/// concatenated in range order — bit-identical to [`materialise`].
pub(crate) fn par_materialise(
    space: &ScenarioSpace,
    tables: &EvalTables,
    threads: usize,
) -> SpaceResults {
    let n = space.len();
    // Check the cutoff before resolving threads: `available_parallelism`
    // is a syscall (cgroup reads on Linux) costing ~10 µs — more than a
    // whole sub-cutoff batch.
    if n < PAR_SERIAL_CUTOFF {
        return materialise(space, tables);
    }
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        return materialise(space, tables);
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect();
    let mut active = Vec::with_capacity(n);
    let mut embodied = Vec::with_capacity(n);
    let mut total = Vec::with_capacity(n);
    let parts = crossbeam::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| scope.spawn(move |_| tables.fill_columns(start, end)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope");
    for (a, e, t) in parts {
        active.extend(a);
        embodied.extend(e);
        total.extend(t);
    }
    SpaceResults {
        space: space.clone(),
        active,
        embodied,
        total,
        sorted: OnceLock::new(),
    }
}

/// Serial streaming over the kernel tables: `sink` sees every point in
/// index order and nothing is materialised.
pub(crate) fn stream_points(
    space: &ScenarioSpace,
    tables: &EvalTables,
    mut sink: impl FnMut(PointResult),
) {
    tables.for_each(0, space.len(), |idx, outcome| {
        sink(PointResult {
            point: space
                .point(idx)
                .expect("kernel indices are in range by construction"),
            outcome,
        });
    });
}

/// Parallel streaming: the per-point arithmetic runs chunked across
/// threads in waves of `threads ×` [`STREAM_CHUNK_POINTS`] points, and
/// the sink drains each wave in index order on the calling thread — so
/// delivery order and every value match [`stream_points`] exactly while
/// memory stays bounded by the wave size.
pub(crate) fn par_stream_points(
    space: &ScenarioSpace,
    tables: &EvalTables,
    threads: usize,
    mut sink: impl FnMut(PointResult),
) {
    let n = space.len();
    if n < PAR_SERIAL_CUTOFF {
        return stream_points(space, tables, sink);
    }
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        return stream_points(space, tables, sink);
    }
    let mut wave_start = 0usize;
    while wave_start < n {
        let wave_end = (wave_start + threads * STREAM_CHUNK_POINTS).min(n);
        let ranges: Vec<(usize, usize)> = (0..)
            .map(|t| {
                (
                    wave_start + t * STREAM_CHUNK_POINTS,
                    (wave_start + (t + 1) * STREAM_CHUNK_POINTS).min(wave_end),
                )
            })
            .take_while(|(s, e)| s < e)
            .collect();
        let parts = crossbeam::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(start, end)| scope.spawn(move |_| tables.fill_pairs(start, end)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scenario worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");
        let mut idx = wave_start;
        for (active, embodied) in parts {
            for (a, e) in active.into_iter().zip(embodied) {
                sink(PointResult {
                    point: space
                        .point(idx)
                        .expect("kernel indices are in range by construction"),
                    outcome: PointOutcome {
                        active: a,
                        embodied: e,
                    },
                });
                idx += 1;
            }
        }
        wave_start = wave_end;
    }
}

/// A contiguous slice of batch results: columns for the points
/// `[start, start + len)` of the owning space, in index order.
///
/// Produced by the chunked iterators ([`Assessment::chunks`] and the
/// time-resolved equivalent); values are bit-identical to the same
/// indices of a full [`SpaceResults`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpaceChunk {
    /// Flat index of the chunk's first point.
    pub start: usize,
    /// Active-carbon column for the chunk.
    pub active: Vec<CarbonMass>,
    /// Embodied-carbon column for the chunk.
    pub embodied: Vec<CarbonMass>,
    /// Total-carbon column for the chunk.
    pub total: Vec<CarbonMass>,
}

impl SpaceChunk {
    /// Number of points in the chunk (≥ 1).
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// `true` when the chunk holds no points (never produced by the
    /// iterators; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// The flat-index range this chunk covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len()
    }
}

/// Iterator of [`SpaceChunk`]s over a scenario space (see
/// [`Assessment::chunks`]). Only the chunk being yielded is
/// materialised.
#[derive(Clone, Debug)]
pub struct SpaceChunks<'a> {
    space: &'a ScenarioSpace,
    tables: EvalTables,
    next: usize,
    chunk: usize,
}

impl Iterator for SpaceChunks<'_> {
    type Item = SpaceChunk;

    fn next(&mut self) -> Option<SpaceChunk> {
        let n = self.space.len();
        if self.next >= n {
            return None;
        }
        let start = self.next;
        let end = (start + self.chunk).min(n);
        self.next = end;
        let (active, embodied, total) = self.tables.fill_columns(start, end);
        Some(SpaceChunk {
            start,
            active,
            embodied,
            total,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.space.len().saturating_sub(self.next);
        let chunks = remaining.div_ceil(self.chunk);
        (chunks, Some(chunks))
    }
}

impl ExactSizeIterator for SpaceChunks<'_> {}

pub(crate) fn chunks_over<'a>(
    space: &'a ScenarioSpace,
    tables: EvalTables,
    chunk_points: usize,
) -> SpaceChunks<'a> {
    SpaceChunks {
        space,
        tables,
        next: 0,
        chunk: chunk_points.max(1),
    }
}

/// Builder for [`Assessment`]: energy source, the four scenario axes,
/// fleet size, and embodied window.
///
/// Axis setters exist at three altitudes: raw [`ScenarioAxis`] values,
/// the paper's [`TriEstimate`]/[`Bounds`] types, and plain-number
/// conveniences. Validation (empty axes, invalid PUEs, non-positive
/// lifespans) happens in [`AssessmentBuilder::build`] and surfaces as
/// typed [`Error`]s rather than panics.
#[derive(Clone, Debug, Default)]
pub struct AssessmentBuilder {
    energy: Option<Energy>,
    servers: Option<u32>,
    window: Option<SimDuration>,
    ci: Option<ScenarioAxis<CarbonIntensity>>,
    pue: Option<ScenarioAxis<Pue>>,
    pue_raw: Option<Vec<f64>>,
    embodied: Option<ScenarioAxis<CarbonMass>>,
    lifespan: Option<ScenarioAxis<f64>>,
    /// First error recorded by a convenience setter (e.g. an empty
    /// sample list); surfaced by [`AssessmentBuilder::build`].
    deferred: Option<Error>,
}

impl AssessmentBuilder {
    /// Sets the measured IT energy for the window (required).
    pub fn energy(mut self, energy: Energy) -> Self {
        self.energy = Some(energy);
        self
    }

    /// Sets the fleet size amortised (required).
    pub fn servers(mut self, servers: u32) -> Self {
        self.servers = Some(servers);
        self
    }

    /// Sets the window the embodied charge covers (default: 24 hours, the
    /// paper's snapshot).
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the carbon-intensity axis.
    pub fn ci_axis(mut self, axis: ScenarioAxis<CarbonIntensity>) -> Self {
        self.ci = Some(axis);
        self
    }

    /// Carbon-intensity axis from a low/mid/high triple.
    pub fn ci_tri(self, tri: TriEstimate<CarbonIntensity>) -> Self {
        self.ci_axis(ScenarioAxis::from_tri("carbon intensity", tri))
    }

    /// Records a setter-level failure for [`AssessmentBuilder::build`]
    /// to report (the first one wins), leaving already-set axes alone.
    fn defer(&mut self, err: Error) {
        self.deferred.get_or_insert(err);
    }

    /// Carbon-intensity axis from raw g/kWh samples. An empty list
    /// surfaces as [`Error::EmptyAxis`] at [`AssessmentBuilder::build`].
    pub fn ci_grams_per_kwh(mut self, samples: &[f64]) -> Self {
        match ScenarioAxis::new(
            "carbon intensity",
            samples
                .iter()
                .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
                .collect(),
        ) {
            Ok(axis) => self.ci = Some(axis),
            Err(e) => self.defer(e),
        }
        self
    }

    /// Sets the PUE axis.
    pub fn pue_axis(mut self, axis: ScenarioAxis<Pue>) -> Self {
        self.pue = Some(axis);
        self.pue_raw = None;
        self
    }

    /// PUE axis from a low/mid/high triple.
    pub fn pue_tri(self, tri: TriEstimate<Pue>) -> Self {
        self.pue_axis(ScenarioAxis::from_tri("pue", tri))
    }

    /// PUE axis from raw ratios; values are validated at
    /// [`AssessmentBuilder::build`], where an invalid PUE becomes
    /// [`Error::Units`] instead of a panic.
    pub fn pue_values(mut self, samples: &[f64]) -> Self {
        self.pue_raw = Some(samples.to_vec());
        self.pue = None;
        self
    }

    /// Sets the embodied-carbon axis (per-server).
    pub fn embodied_axis(mut self, axis: ScenarioAxis<CarbonMass>) -> Self {
        self.embodied = Some(axis);
        self
    }

    /// Embodied axis from published per-server bounds (2 samples — the
    /// paper's 400/1,100 kg bracket).
    pub fn embodied_bounds(self, bounds: Bounds<CarbonMass>) -> Self {
        self.embodied_axis(
            ScenarioAxis::new("embodied per server", bounds.to_vec())
                .expect("two bounds are never an empty sample list"),
        )
    }

    /// Embodied axis of `n` evenly spaced samples across per-server
    /// bounds. `n == 0` surfaces as [`Error::EmptyAxis`] at
    /// [`AssessmentBuilder::build`].
    pub fn embodied_linspace(mut self, bounds: Bounds<CarbonMass>, n: usize) -> Self {
        match ScenarioAxis::linspace("embodied per server", bounds, n) {
            Ok(axis) => self.embodied = Some(axis),
            Err(e) => self.defer(e),
        }
        self
    }

    /// Sets the lifespan axis (years).
    pub fn lifespan_axis(mut self, axis: ScenarioAxis<f64>) -> Self {
        self.lifespan = Some(axis);
        self
    }

    /// Lifespan axis from whole-year samples (Table 4's 3–7 years). An
    /// empty list surfaces as [`Error::EmptyAxis`] at
    /// [`AssessmentBuilder::build`].
    pub fn lifespans_years(mut self, years: &[u32]) -> Self {
        let samples: Vec<f64> = years.iter().map(|&y| f64::from(y)).collect();
        match ScenarioAxis::new("lifespan", samples) {
            Ok(axis) => self.lifespan = Some(axis),
            Err(e) => self.defer(e),
        }
        self
    }

    /// Lifespan axis of `n` evenly spaced samples between `lo` and `hi`
    /// years. `n == 0` surfaces as [`Error::EmptyAxis`] at
    /// [`AssessmentBuilder::build`].
    pub fn lifespan_linspace(mut self, lo: f64, hi: f64, n: usize) -> Self {
        match ScenarioAxis::linspace("lifespan", Bounds::new(lo, hi), n) {
            Ok(axis) => self.lifespan = Some(axis),
            Err(e) => self.defer(e),
        }
        self
    }

    /// Validates and builds the [`Assessment`].
    pub fn build(self) -> Result<Assessment> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        let energy = self
            .energy
            .ok_or(Error::MissingParameter { what: "energy" })?;
        let servers = self.servers.ok_or(Error::MissingParameter {
            what: "fleet size (servers)",
        })?;
        let window_days = match self.window {
            Some(w) => w.as_days(),
            None => 1.0,
        };
        if !(window_days.is_finite() && window_days > 0.0) {
            return Err(Error::InvalidWindow { days: window_days });
        }
        let ci = self.ci.ok_or(Error::MissingParameter {
            what: "carbon-intensity axis",
        })?;
        let pue = match (self.pue, self.pue_raw) {
            (Some(axis), _) => axis,
            (None, Some(raw)) => {
                let samples = raw
                    .into_iter()
                    .map(Pue::new)
                    .collect::<std::result::Result<Vec<_>, _>>()?;
                ScenarioAxis::new("pue", samples)?
            }
            (None, None) => return Err(Error::MissingParameter { what: "pue axis" }),
        };
        let embodied = self.embodied.ok_or(Error::MissingParameter {
            what: "embodied-carbon axis",
        })?;
        let lifespan = self.lifespan.ok_or(Error::MissingParameter {
            what: "lifespan axis",
        })?;
        Ok(Assessment {
            energy,
            servers,
            window_days,
            space: ScenarioSpace::new(ci, pue, embodied, lifespan)?,
            tables: OnceLock::new(),
        })
    }
}

/// Columnar results of a batch evaluation: one entry per scenario point,
/// in the space's index order.
///
/// Columns are stored separately (struct-of-arrays) so envelope,
/// percentile and marginal queries scan contiguous memory. The query
/// surface (envelope / quantiles / marginals) lives in
/// [`crate::stats_view`]; quantile queries share a lazily built sorted
/// view of the total column, so repeated queries cost O(1) after the
/// first.
///
/// # Invariant
///
/// Every constructor ([`Assessment::evaluate_space`] and friends) fills
/// exactly `space.len()` entries per column, and a [`ScenarioSpace`] is
/// non-empty by construction (every axis rejects empty sample lists) —
/// so `len() ≥ 1` always, each axis sample owns `len() / axis_len ≥ 1`
/// points, and the statistics queries are total without empty-input
/// guards. Debug builds assert the invariant before every statistics
/// query (`debug_assert_invariant`).
#[derive(Clone, Debug)]
pub struct SpaceResults {
    pub(crate) space: ScenarioSpace,
    pub(crate) active: Vec<CarbonMass>,
    pub(crate) embodied: Vec<CarbonMass>,
    pub(crate) total: Vec<CarbonMass>,
    /// Lazily built ascending view of `total` in kilograms (see
    /// [`crate::stats_view`]); folded into in place by
    /// [`SpaceResults::extend_rows`], dropped on re-fill by
    /// [`Assessment::evaluate_space_into`].
    pub(crate) sorted: OnceLock<StatsAccumulator>,
}

/// Equality is over the space and the three result columns; the lazily
/// built statistics cache is a derived artefact and deliberately not
/// compared (a queried and an unqueried copy of the same results are
/// equal).
impl PartialEq for SpaceResults {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.active == other.active
            && self.embodied == other.embodied
            && self.total == other.total
    }
}

impl SpaceResults {
    /// Number of evaluated points (= the space's cardinality, ≥ 1).
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// Always `false`: spaces are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The space these results were evaluated over.
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// Active-carbon column.
    pub fn active(&self) -> &[CarbonMass] {
        &self.active
    }

    /// Embodied-carbon column.
    pub fn embodied(&self) -> &[CarbonMass] {
        &self.embodied
    }

    /// Total-carbon column.
    pub fn totals(&self) -> &[CarbonMass] {
        &self.total
    }

    /// Reconstructs the full [`PointResult`] at an index.
    pub fn get(&self, index: usize) -> Result<PointResult> {
        let point = self.space.point(index)?;
        Ok(PointResult {
            point,
            outcome: PointOutcome {
                active: self.active[index],
                embodied: self.embodied[index],
            },
        })
    }

    /// Checks the type-level invariant (columns exactly tile the
    /// non-empty space) in debug builds; called by the statistics view
    /// before relying on it.
    #[inline]
    pub(crate) fn debug_assert_invariant(&self) {
        debug_assert!(
            !self.total.is_empty(),
            "spaces are non-empty by construction"
        );
        debug_assert_eq!(self.total.len(), self.space.len());
        debug_assert_eq!(self.active.len(), self.total.len());
        debug_assert_eq!(self.embodied.len(), self.total.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn builder_requires_every_parameter() {
        let missing = Assessment::builder().build().unwrap_err();
        assert_eq!(missing, Error::MissingParameter { what: "energy" });
        let missing_axis = Assessment::builder()
            .energy(paper::effective_energy())
            .servers(10)
            .build()
            .unwrap_err();
        assert_eq!(
            missing_axis,
            Error::MissingParameter {
                what: "carbon-intensity axis"
            }
        );
    }

    #[test]
    fn invalid_pue_is_a_typed_error_not_a_panic() {
        let err = Assessment::builder()
            .energy(paper::effective_energy())
            .servers(10)
            .ci_grams_per_kwh(&[100.0])
            .pue_values(&[1.1, 0.9])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[5])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Units(_)), "{err}");
    }

    #[test]
    fn empty_convenience_setter_surfaces_empty_axis_not_missing() {
        // A setter given an empty sample list must not clear a
        // previously set axis or masquerade as "missing".
        let err = Assessment::builder()
            .energy(paper::effective_energy())
            .servers(10)
            .ci_tri(paper::ci_references())
            .ci_grams_per_kwh(&[])
            .pue_values(&[1.3])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[5])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::EmptyAxis {
                axis: "carbon intensity".into()
            }
        );
        for builder in [
            Assessment::builder().embodied_linspace(paper::server_embodied_bounds(), 0),
            Assessment::builder().lifespan_linspace(3.0, 7.0, 0),
            Assessment::builder().lifespans_years(&[]),
        ] {
            let err = builder
                .energy(paper::effective_energy())
                .servers(10)
                .ci_tri(paper::ci_references())
                .pue_values(&[1.3])
                .embodied_bounds(paper::server_embodied_bounds())
                .lifespans_years(&[5])
                .build()
                .unwrap_err();
            assert!(matches!(err, Error::EmptyAxis { .. }), "{err}");
        }
    }

    #[test]
    fn non_positive_window_is_rejected() {
        for secs in [0i64, -86_400] {
            let err = Assessment::builder()
                .energy(paper::effective_energy())
                .servers(10)
                .ci_grams_per_kwh(&[175.0])
                .pue_values(&[1.3])
                .embodied_bounds(paper::server_embodied_bounds())
                .lifespans_years(&[5])
                .window(SimDuration::from_secs(secs))
                .build()
                .unwrap_err();
            assert!(matches!(err, Error::InvalidWindow { .. }), "{secs}: {err}");
        }
    }

    #[test]
    fn paper_space_matches_tables() {
        let a = Assessment::paper();
        assert_eq!(a.space().shape(), [3, 3, 2, 5]);
        let results = a.evaluate_space();
        assert_eq!(results.len(), 90);
        // Corner scenarios: all-low → Table 3 [0][0] + Table 4 7y/400kg;
        // all-high → Table 3 [2][2] + Table 4 3y/1100kg.
        let env = results.envelope();
        assert!((env.total.lo.kilograms() - 1_441.3).abs() < 0.1);
        assert!((env.total.hi.kilograms() - 11_711.3).abs() < 0.1);
        // The §6 assessment object agrees.
        let asm = results.assessment();
        assert!((asm.total().lo.kilograms() - 1_441.3).abs() < 0.1);
    }

    #[test]
    fn single_point_matches_batch() {
        let a = Assessment::paper();
        let results = a.evaluate_space();
        for idx in [0, 1, 17, 42, 89] {
            let single = a.evaluate_index(idx).unwrap();
            let batch = results.get(idx).unwrap();
            assert_eq!(single, batch, "point {idx}");
            assert_eq!(
                single.outcome.total(),
                single.outcome.active + single.outcome.embodied
            );
        }
        assert!(results.get(90).is_err());
        assert!(a.evaluate_index(90).is_err());
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let a = Assessment::builder()
            .energy(paper::effective_energy())
            .ci_grams_per_kwh(&[50.0, 100.0, 175.0, 250.0, 300.0])
            .pue_values(&[1.1, 1.2, 1.3, 1.4, 1.5, 1.6])
            .embodied_linspace(paper::server_embodied_bounds(), 7)
            .lifespan_linspace(3.0, 7.0, 9)
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap();
        let serial = a.evaluate_space();
        assert_eq!(serial.len(), 5 * 6 * 7 * 9);
        for threads in [0, 1, 2, 3, 8, 64] {
            let par = a.par_evaluate_space(threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn evaluate_into_reuses_buffers_and_matches_fresh_evaluation() {
        let a = Assessment::paper();
        let fresh = a.evaluate_space();
        // Warm a differently-shaped result, then sweep into it.
        let b = Assessment::builder()
            .energy(paper::effective_energy())
            .ci_grams_per_kwh(&[80.0, 120.0])
            .pue_values(&[1.2])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[4])
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap();
        let mut reused = b.evaluate_space();
        assert_ne!(reused, fresh);
        a.evaluate_space_into(&mut reused);
        assert_eq!(reused, fresh);
        assert_eq!(reused.space(), a.space());
        // Warm path: a same-shape re-sweep must reuse the column
        // storage in place (the data pointer survives clear + refill
        // when capacity already fits), not reallocate.
        let ptr = reused.totals().as_ptr();
        a.evaluate_space_into(&mut reused);
        assert_eq!(reused, fresh);
        assert_eq!(reused.totals().as_ptr(), ptr);
        // A stale statistics cache never leaks across sweeps.
        let p95_b = b.evaluate_space().percentile(0.95).unwrap();
        let mut recycled = b.evaluate_space();
        assert_eq!(recycled.percentile(0.95).unwrap(), p95_b);
        a.evaluate_space_into(&mut recycled);
        assert_eq!(
            recycled.percentile(0.95).unwrap(),
            fresh.percentile(0.95).unwrap()
        );
    }

    #[test]
    fn streamed_and_chunked_paths_match_materialised() {
        let a = Assessment::paper();
        let results = a.evaluate_space();
        let mut streamed = Vec::new();
        a.stream_space(|p| streamed.push(p));
        assert_eq!(streamed.len(), results.len());
        for (i, p) in streamed.iter().enumerate() {
            assert_eq!(*p, results.get(i).unwrap(), "point {i}");
        }
        let mut par_streamed = Vec::new();
        a.par_stream_space(4, |p| par_streamed.push(p));
        assert_eq!(streamed, par_streamed);

        // Chunked: uneven chunk size, full coverage, exact columns.
        let mut idx = 0;
        let chunks = a.chunks(7);
        assert_eq!(chunks.len(), results.len().div_ceil(7));
        for chunk in chunks {
            assert_eq!(chunk.start, idx);
            assert!(!chunk.is_empty());
            assert_eq!(chunk.range().start, idx);
            for k in 0..chunk.len() {
                assert_eq!(chunk.active[k], results.active()[idx + k]);
                assert_eq!(chunk.embodied[k], results.embodied()[idx + k]);
                assert_eq!(chunk.total[k], results.totals()[idx + k]);
            }
            idx += chunk.len();
        }
        assert_eq!(idx, results.len());
        // Chunk size 0 is clamped, not a panic or infinite loop.
        assert_eq!(a.chunks(0).count(), results.len());
    }

    #[test]
    fn parallel_paths_are_bit_identical_across_the_cutoff() {
        // 20 × 10 × 30 × 28 = 168,000 points — above PAR_SERIAL_CUTOFF,
        // so the threaded code paths genuinely run.
        let a = Assessment::builder()
            .energy(paper::effective_energy())
            .ci_axis(
                crate::space::ScenarioAxis::linspace(
                    "ci",
                    iriscast_units::Bounds::new(
                        CarbonIntensity::from_grams_per_kwh(50.0),
                        CarbonIntensity::from_grams_per_kwh(300.0),
                    ),
                    20,
                )
                .unwrap(),
            )
            .pue_values(&[1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5, 1.6])
            .embodied_linspace(paper::server_embodied_bounds(), 30)
            .lifespan_linspace(3.0, 7.0, 28)
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap();
        assert!(a.space().len() >= PAR_SERIAL_CUTOFF);
        let serial = a.evaluate_space();
        let par = a.par_evaluate_space(4);
        assert_eq!(serial, par);
        let mut streamed_totals = Vec::with_capacity(serial.len());
        a.par_stream_space(4, |p| streamed_totals.push(p.outcome.total()));
        assert_eq!(streamed_totals.as_slice(), serial.totals());
    }

    #[test]
    fn window_scales_embodied_only() {
        let base = Assessment::builder()
            .energy(paper::effective_energy())
            .ci_grams_per_kwh(&[175.0])
            .pue_values(&[1.3])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[5])
            .servers(paper::AMORTISATION_FLEET_SERVERS);
        let day = base.clone().build().unwrap().evaluate_space();
        let week = base
            .window(SimDuration::from_days(7))
            .build()
            .unwrap()
            .evaluate_space();
        assert_eq!(day.active(), week.active());
        for (d, w) in day.embodied().iter().zip(week.embodied()) {
            assert!((w.grams() - d.grams() * 7.0).abs() < 1e-6);
        }
    }
}
