//! Everyday equivalences for carbon quantities (paper §6).

use crate::paper::FLIGHT_KG_PER_PASSENGER_HOUR;
use iriscast_units::CarbonMass;
use serde::{Deserialize, Serialize};

/// Average petrol-car emissions, kgCO₂e per km (DEFRA-style factor).
pub const CAR_KG_PER_KM: f64 = 0.17;

/// Average UK household electricity+heating footprint, kgCO₂e per day
/// (~2.9 t/year).
pub const UK_HOUSEHOLD_KG_PER_DAY: f64 = 8.0;

/// A carbon mass translated into everyday activities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Equivalences {
    /// Passenger-hours of jet flight (92 kg each).
    pub flight_passenger_hours: f64,
    /// Equivalent 24-hour continuous flights (the paper's benchmark).
    pub flight_days: f64,
    /// Petrol-car kilometres.
    pub car_km: f64,
    /// UK household-days of domestic emissions.
    pub household_days: f64,
}

/// Translates a carbon mass into the paper's comparison units.
pub fn equivalences(carbon: CarbonMass) -> Equivalences {
    let kg = carbon.kilograms();
    Equivalences {
        flight_passenger_hours: kg / FLIGHT_KG_PER_PASSENGER_HOUR,
        flight_days: kg / (FLIGHT_KG_PER_PASSENGER_HOUR * 24.0),
        car_km: kg / CAR_KG_PER_KM,
        household_days: kg / UK_HOUSEHOLD_KG_PER_DAY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_flight_comparison() {
        // §6: snapshot totals are "between 1 and 4" 24-hour flights
        // (1,441–11,711 kg against 2,208 kg per flight-day).
        let lo = equivalences(CarbonMass::from_kilograms(1_441.0));
        let hi = equivalences(CarbonMass::from_kilograms(11_711.0));
        assert!(lo.flight_days > 0.6 && lo.flight_days < 1.0);
        assert!(hi.flight_days > 5.0 && hi.flight_days < 5.5);
        // The paper's "1 to 4" counts the active+embodied table extremes
        // (1,066+375 … 9,302+2,409 before rounding); our envelope brackets
        // it.
        let mid = equivalences(CarbonMass::from_kilograms(4_409.0 + 657.0));
        assert!((mid.flight_days - 2.29).abs() < 0.05);
    }

    #[test]
    fn one_flight_day_is_exact() {
        let e = equivalences(CarbonMass::from_kilograms(2_208.0));
        assert!((e.flight_days - 1.0).abs() < 1e-12);
        assert!((e.flight_passenger_hours - 24.0).abs() < 1e-12);
    }

    #[test]
    fn car_and_household_scales() {
        let e = equivalences(CarbonMass::from_kilograms(17.0));
        assert!((e.car_km - 100.0).abs() < 1e-9);
        let h = equivalences(CarbonMass::from_kilograms(8.0));
        assert!((h.household_days - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_is_zero() {
        let e = equivalences(CarbonMass::ZERO);
        assert_eq!(e.flight_days, 0.0);
        assert_eq!(e.car_km, 0.0);
    }
}
