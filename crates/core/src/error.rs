//! Typed errors for the carbon model.
//!
//! The scenario-space engine validates its inputs at construction time and
//! reports failures through [`Error`] instead of panicking — the `expect()`
//! calls that used to guard empty sweeps and invalid PUEs are now
//! unreachable through the builder API.

use iriscast_units::UnitsError;
use std::fmt;

/// Result alias for model-layer operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong building or evaluating an assessment.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A scenario axis was built from an empty sample list.
    EmptyAxis {
        /// The axis's name ("carbon intensity", "lifespan", …).
        axis: String,
    },
    /// A required builder parameter was never supplied.
    MissingParameter {
        /// The parameter's name ("energy", "ci axis", …).
        what: &'static str,
    },
    /// A lifespan sample was zero, negative, or non-finite.
    InvalidLifespan {
        /// The offending value in years.
        years: f64,
    },
    /// A percentile or other fraction lay outside `[0, 1]`.
    InvalidFraction {
        /// The offending value.
        value: f64,
    },
    /// A statistics query ran over a column containing `NaN` — quantile
    /// interpolation over `NaN` would silently poison the answer, so it
    /// is refused instead.
    NonFiniteData {
        /// The column the `NaN` was found in ("total", …).
        column: &'static str,
    },
    /// A statistics query ran over a column with no present values —
    /// e.g. a fleet-level percentile when no site produced a best
    /// estimate. There is no number to interpolate, so the query is
    /// refused instead of inventing one.
    EmptyColumn {
        /// The column the query targeted ("best estimate", …).
        column: &'static str,
    },
    /// An incremental fold tried to append results whose fixed inner
    /// axes did not match the accumulated space's — only the
    /// carbon-intensity (outermost) axis may grow; PUE, embodied and
    /// lifespan must be identical, or the appended rows would land at
    /// the wrong coordinates.
    ShapeMismatch {
        /// The first mismatching axis ("pue", "embodied", "lifespan").
        axis: &'static str,
    },
    /// A retraction asked to evict at least as many carbon-intensity
    /// samples as the batch holds. Results are non-empty by invariant,
    /// so at least one CI sample must survive every eviction — a full
    /// drain would leave an unrepresentable empty batch.
    RetractOutOfRange {
        /// CI samples the caller asked to retract.
        requested: usize,
        /// CI samples currently in the batch.
        available: usize,
    },
    /// The embodied amortisation window was zero, negative, or
    /// non-finite.
    InvalidWindow {
        /// The offending window length in days.
        days: f64,
    },
    /// A point index exceeded the space's cardinality.
    PointOutOfRange {
        /// The requested flat index.
        index: usize,
        /// The space's cardinality.
        len: usize,
    },
    /// A quantity-level validation failed (invalid PUE, unordered
    /// estimate, …).
    Units(UnitsError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyAxis { axis } => {
                write!(f, "scenario axis \"{axis}\" has no samples")
            }
            Error::MissingParameter { what } => {
                write!(f, "assessment builder is missing {what}")
            }
            Error::InvalidLifespan { years } => {
                write!(f, "lifespan must be positive and finite, got {years} years")
            }
            Error::InvalidFraction { value } => {
                write!(f, "fraction must lie in [0, 1], got {value}")
            }
            Error::NonFiniteData { column } => {
                write!(f, "statistics query over a {column} column containing NaN")
            }
            Error::EmptyColumn { column } => {
                write!(f, "statistics query over an empty {column} column")
            }
            Error::ShapeMismatch { axis } => {
                write!(
                    f,
                    "incremental fold over a mismatched {axis} axis (only the \
                     carbon-intensity axis may grow)"
                )
            }
            Error::RetractOutOfRange {
                requested,
                available,
            } => {
                write!(
                    f,
                    "cannot retract {requested} of {available} carbon-intensity \
                     samples (at least one must survive an eviction)"
                )
            }
            Error::InvalidWindow { days } => {
                write!(f, "window must be positive and finite, got {days} days")
            }
            Error::PointOutOfRange { index, len } => {
                write!(
                    f,
                    "scenario point {index} out of range for a {len}-point space"
                )
            }
            Error::Units(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Units(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitsError> for Error {
    fn from(e: UnitsError) -> Self {
        Error::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::EmptyAxis {
                axis: "lifespan".into()
            }
            .to_string(),
            "scenario axis \"lifespan\" has no samples"
        );
        assert_eq!(
            Error::MissingParameter { what: "energy" }.to_string(),
            "assessment builder is missing energy"
        );
        assert!(Error::InvalidLifespan { years: -1.0 }
            .to_string()
            .contains("-1 years"));
        assert!(Error::PointOutOfRange { index: 9, len: 9 }
            .to_string()
            .contains("9-point space"));
        assert!(Error::InvalidFraction { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(Error::NonFiniteData { column: "total" }
            .to_string()
            .contains("total"));
        assert!(Error::EmptyColumn {
            column: "best estimate"
        }
        .to_string()
        .contains("empty best estimate column"));
        assert!(Error::InvalidWindow { days: -1.0 }
            .to_string()
            .contains("-1 days"));
        assert!(Error::ShapeMismatch { axis: "pue" }
            .to_string()
            .contains("mismatched pue axis"));
    }

    #[test]
    fn units_errors_convert_and_chain() {
        let e: Error = UnitsError::InvalidPue(0.5).into();
        assert_eq!(e, Error::Units(UnitsError::InvalidPue(0.5)));
        assert!(e.to_string().contains("invalid PUE"));
        use std::error::Error as _;
        assert!(e.source().is_some());
        assert!(Error::MissingParameter { what: "energy" }
            .source()
            .is_none());
    }
}
