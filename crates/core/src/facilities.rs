//! Facility overheads: measured or PUE-estimated (paper §4.1, §5).

use iriscast_units::{Energy, Pue};
use serde::{Deserialize, Serialize};

/// The facility energy components of §4.1: cooling, power distribution
/// (transformers + UPS), and the wider building.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FacilityEnergy {
    /// Cooling-system energy.
    pub cooling: Energy,
    /// Transformer/UPS losses.
    pub power_distribution: Energy,
    /// Building overheads (lighting, security, ancillary systems).
    pub building: Energy,
}

impl FacilityEnergy {
    /// Total overhead energy.
    pub fn total(&self) -> Energy {
        self.cooling + self.power_distribution + self.building
    }

    /// The effective PUE these overheads imply for a given IT energy.
    pub fn implied_pue(&self, it_energy: Energy) -> Option<Pue> {
        if it_energy.joules() <= 0.0 {
            return None;
        }
        Pue::new(1.0 + self.total() / it_energy).ok()
    }
}

/// How facility overheads are obtained for a site.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FacilityModel {
    /// Direct measurements of each overhead component (none of the
    /// paper's sites could provide this — their stated future work).
    Measured(FacilityEnergy),
    /// Estimated from a PUE factor, split into components by the typical
    /// data-centre overhead shares (cooling ≈ 70%, distribution ≈ 20%,
    /// building ≈ 10% of the overhead).
    PueEstimate(Pue),
}

/// Overhead share of cooling within PUE-estimated overheads.
pub const COOLING_SHARE: f64 = 0.70;
/// Overhead share of power distribution within PUE-estimated overheads.
pub const POWER_SHARE: f64 = 0.20;
/// Overhead share of the building within PUE-estimated overheads.
pub const BUILDING_SHARE: f64 = 0.10;

impl FacilityModel {
    /// Facility overheads implied for `it_energy`.
    pub fn overheads(&self, it_energy: Energy) -> FacilityEnergy {
        match self {
            FacilityModel::Measured(f) => *f,
            FacilityModel::PueEstimate(pue) => {
                let overhead = pue.overhead(it_energy);
                FacilityEnergy {
                    cooling: overhead * COOLING_SHARE,
                    power_distribution: overhead * POWER_SHARE,
                    building: overhead * BUILDING_SHARE,
                }
            }
        }
    }

    /// Total site energy (IT + overheads).
    pub fn total_energy(&self, it_energy: Energy) -> Energy {
        it_energy + self.overheads(it_energy).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        assert!((COOLING_SHARE + POWER_SHARE + BUILDING_SHARE - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pue_estimate_reproduces_pue() {
        let model = FacilityModel::PueEstimate(Pue::new(1.3).expect("valid"));
        let it = Energy::from_kilowatt_hours(1_000.0);
        let f = model.overheads(it);
        assert!((f.total().kilowatt_hours() - 300.0).abs() < 1e-9);
        assert!((f.cooling.kilowatt_hours() - 210.0).abs() < 1e-9);
        assert!((f.power_distribution.kilowatt_hours() - 60.0).abs() < 1e-9);
        assert!((f.building.kilowatt_hours() - 30.0).abs() < 1e-9);
        assert!((model.total_energy(it).kilowatt_hours() - 1_300.0).abs() < 1e-9);
        // Round trip.
        let implied = f.implied_pue(it).unwrap();
        assert!((implied.value() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn measured_passthrough() {
        let measured = FacilityEnergy {
            cooling: Energy::from_kilowatt_hours(100.0),
            power_distribution: Energy::from_kilowatt_hours(40.0),
            building: Energy::from_kilowatt_hours(20.0),
        };
        let model = FacilityModel::Measured(measured);
        let f = model.overheads(Energy::from_kilowatt_hours(999.0));
        assert_eq!(f, measured);
        assert_eq!(f.total().kilowatt_hours(), 160.0);
    }

    #[test]
    fn implied_pue_degenerate() {
        let f = FacilityEnergy::default();
        assert!(f.implied_pue(Energy::ZERO).is_none());
        let pue = f.implied_pue(Energy::from_kilowatt_hours(10.0)).unwrap();
        assert_eq!(pue.value(), 1.0);
    }

    #[test]
    fn ideal_pue_means_zero_overheads() {
        let model = FacilityModel::PueEstimate(Pue::IDEAL);
        let f = model.overheads(Energy::from_kilowatt_hours(500.0));
        assert_eq!(f.total(), Energy::ZERO);
    }
}
