//! Fleet federation: hierarchical roll-up of telemetry snapshots at
//! 10,000-site scale.
//!
//! The paper's experiment is one ~7-site federation, and
//! [`crate::iris::IrisScenario`] simulates it by looping sites serially
//! (parallelism lives *inside* each site's collect). That inversion is
//! wrong once "all sites" means tens of thousands of mostly-small
//! machine rooms: the per-site work is microseconds, so the win is many
//! **sites** in flight, not many workers per site. This module inverts
//! the sharding:
//!
//! * a [`FleetScenario`] holds the rack → site → region → fleet
//!   hierarchy as flat site configs tagged with region indexes, in
//!   region-major order (the canonical enumeration
//!   [`iriscast_inventory::FederatedFleet`] defines);
//! * [`FleetScenario::try_simulate`] shards **sites** across the one
//!   process-wide persistent worker pool
//!   ([`iriscast_telemetry::FillBackend::Pool`]); each site collects
//!   with `workers = 1` (inline on the claiming worker — no nested
//!   dispatch) using that worker's own recycled
//!   [`CollectScratch`] arena
//!   ([`CollectScratch::with_thread_local`]) — one arena per worker,
//!   not per call;
//! * each site's [`iriscast_telemetry::SiteTelemetryResult`] is reduced
//!   to a compact [`SiteRollup`] on the worker and its buffers recycled
//!   immediately, so the fleet never materialises 10,000 full power
//!   series;
//! * the per-site rollups stream into a columnar [`FleetRollup`] whose
//!   quantile queries reuse the cached-sort machinery of
//!   [`crate::stats_view`] (one `OnceLock`-guarded sorted copy,
//!   [`iriscast_grid::stats::percentile_sorted`] interpolation).
//!
//! Sharding is bit-invariant: every site collects with one worker
//! whichever pool thread claims it, and the final fold visits slots in
//! site order, so `try_simulate(1)` and `try_simulate(16)` produce
//! identical bits — the property suites in `tests/properties.rs` pin
//! this against independently collected sites.
//!
//! # Example
//!
//! ```
//! use iriscast_model::federation::FleetScenario;
//!
//! // A toy federation: 2 regions × 3 sites × 4 nodes.
//! let fleet = FleetScenario::synthetic(2, 3, 4, 0xF1EE7);
//! let rollup = fleet.try_simulate(4).unwrap();
//! assert_eq!(rollup.site_count(), 6);
//! assert_eq!(rollup.total_nodes(), 24);
//! let median = rollup.percentile(0.5).unwrap();
//! assert!(median.kilowatt_hours() > 0.0);
//! ```

use crate::error::{Error, Result};
use crate::iris::IrisScenario;
use iriscast_grid::stats;
use iriscast_telemetry::{
    CollectScratch, EnergyByMethod, FillBackend, MeterKind, NodeGroupTelemetry, NodePowerModel,
    SiteCollector, SiteTelemetryConfig, SiteTelemetryResult, SyntheticUtilization, TelemetryResult,
};
use iriscast_units::{Energy, Period, Power, SimDuration};
use std::sync::OnceLock;

/// One site of a federated scenario: a collector config tagged with the
/// region it rolls up into.
#[derive(Clone, Debug)]
pub struct FleetSite {
    /// Index into [`FleetScenario::region_codes`].
    pub region: u32,
    /// Collector configuration (groups, methods, coverage, seed).
    pub config: SiteTelemetryConfig,
    /// Utilisation source driving the site's nodes.
    pub utilization: SyntheticUtilization,
}

/// A simulatable federation: the site → region → fleet hierarchy with
/// everything each site's collector needs, held in region-major site
/// order.
#[derive(Clone, Debug)]
pub struct FleetScenario {
    /// Region short codes; [`FleetSite::region`] indexes this list.
    pub region_codes: Vec<String>,
    /// Sites in region-major order — the canonical enumeration every
    /// shard assignment and columnar statistic uses.
    pub sites: Vec<FleetSite>,
    /// Snapshot window shared by every site.
    pub period: Period,
}

impl FleetScenario {
    /// A synthetic hyperscale federation: `regions × sites_per_region`
    /// small sites of `nodes_per_site` nodes each, PDU-metered, sampled
    /// hourly over the 24-hour snapshot window. Site utilisations vary
    /// deterministically with `seed`, so the fleet has a real spread for
    /// the quantile queries to resolve.
    ///
    /// This is the "Chasing Carbon" shape — thousands of rooms of a few
    /// racks — as opposed to the paper's seven large HPC sites; the
    /// `fleet_federation` bench simulates 10,000 of these in the same
    /// order of time as the 7-site IRIS snapshot.
    pub fn synthetic(regions: u32, sites_per_region: u32, nodes_per_site: u32, seed: u64) -> Self {
        let region_codes = (0..regions).map(|r| format!("R{r:03}")).collect();
        let mut sites = Vec::with_capacity((regions as usize) * (sites_per_region as usize));
        for r in 0..regions {
            for s in 0..sites_per_region {
                let index = u64::from(r) * u64::from(sites_per_region) + u64::from(s);
                // Cheap splitmix-style hash → mean utilisation in
                // [0.25, 0.75], deterministic in (seed, site index).
                let mix = (seed ^ index)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(31)
                    .wrapping_mul(0x94D0_49BB_1331_11EB);
                let mean = 0.25 + 0.5 * ((mix >> 11) as f64 / (1u64 << 53) as f64);
                let mut config = SiteTelemetryConfig::new(
                    format!("R{r:03}-S{s:04}"),
                    vec![NodeGroupTelemetry {
                        label: "edge".into(),
                        count: nodes_per_site,
                        power_model: NodePowerModel::linear(
                            Power::from_watts(140.0),
                            Power::from_watts(620.0),
                        ),
                    }],
                    seed ^ (index << 1) ^ 1,
                );
                config.methods = vec![MeterKind::Pdu];
                config.sample_step = SimDuration::from_secs(3_600);
                sites.push(FleetSite {
                    region: r,
                    config,
                    utilization: SyntheticUtilization::calibrated(mean, seed ^ (index << 7) ^ 3),
                });
            }
        }
        FleetScenario {
            region_codes,
            sites,
            period: Period::snapshot_24h(),
        }
    }

    /// Wraps the calibrated IRIS scenario as a single-region federation,
    /// so the paper's snapshot can run through the fleet roll-up path.
    /// Site order, configs and utilisation sources are identical to the
    /// scenario's, so per-site energies are bit-identical to
    /// [`IrisScenario::simulate`]'s rows.
    pub fn from_iris(scenario: &IrisScenario) -> Self {
        FleetScenario {
            region_codes: vec!["IRIS".into()],
            sites: scenario
                .sites
                .iter()
                .map(|s| FleetSite {
                    region: 0,
                    config: s.config.clone(),
                    utilization: s.utilization,
                })
                .collect(),
            period: scenario.period,
        }
    }

    /// Overrides the sampling step on every site (tests use coarser
    /// steps to stay fast in debug builds).
    pub fn with_sample_step(mut self, step: SimDuration) -> Self {
        for s in &mut self.sites {
            s.config.sample_step = step;
        }
        self
    }

    /// Number of sites across all regions.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total monitored nodes across the federation.
    pub fn total_nodes(&self) -> u64 {
        self.sites
            .iter()
            .map(|s| u64::from(s.config.total_nodes()))
            .sum()
    }

    /// Simulates the whole federation, sharding **sites** across the
    /// persistent worker pool, and streams the per-site results into a
    /// columnar [`FleetRollup`].
    ///
    /// Inversion of the [`IrisScenario`] strategy: each site collects
    /// with one worker (inline on whichever pool thread claims it, using
    /// that thread's recycled scratch arena), and up to `workers` sites
    /// are in flight at once. Results are bit-identical for every
    /// `workers` value. The first site that fails to collect (zero
    /// nodes, empty window — reachable only by hand-mutating the public
    /// fields) surfaces as its typed
    /// [`iriscast_telemetry::TelemetryError`], earliest site first.
    pub fn try_simulate(&self, workers: usize) -> TelemetryResult<FleetRollup> {
        let mut slots: Vec<Option<TelemetryResult<SiteRollup>>> =
            Vec::with_capacity(self.sites.len());
        slots.resize_with(self.sites.len(), || None);
        let period = self.period;
        let sites = &self.sites;
        FillBackend::Pool.fill_indexed(&mut slots, workers, |i, slot| {
            let site = &sites[i];
            *slot = Some(CollectScratch::with_thread_local(|scratch| {
                // workers = 1 ⇒ the inner collect runs inline on this
                // pool thread (every fill primitive shortcuts the
                // single-worker case), so there is no nested dispatch
                // and no re-entrant scratch borrow.
                let result = SiteCollector::collect_config(
                    &site.config,
                    period,
                    &site.utilization,
                    1,
                    scratch,
                    FillBackend::Pool,
                )?;
                let rollup = SiteRollup::from_result(&result, site.region);
                scratch.recycle(result);
                Ok(rollup)
            }));
        });

        let mut rollup = FleetRollup::new(self.region_codes.clone(), self.period);
        for slot in slots {
            // Not a data condition: `fill_indexed` writes every slot
            // exactly once by contract, so a `None` is a harness bug.
            rollup.fold_site(slot.expect("fill_indexed visits every slot")?);
        }
        Ok(rollup)
    }
}

/// The compact per-site reduction a federation worker hands back:
/// everything the fleet tiers need, none of the power series they don't.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteRollup {
    /// Region index the site rolls up into.
    pub region: u32,
    /// Monitored nodes swept.
    pub nodes: u32,
    /// Observed energy per available method.
    pub energies: EnergyByMethod,
    /// Instrument-free truth energy, for validation.
    pub truth: Energy,
}

impl SiteRollup {
    /// Reduces a full collector result to the roll-up columns. Energies
    /// match [`iriscast_telemetry::SiteEnergyReport::from_result`]
    /// cell for cell, so fleet totals stay bit-identical to the serial
    /// row path.
    pub fn from_result(result: &SiteTelemetryResult, region: u32) -> Self {
        SiteRollup {
            region,
            nodes: result.nodes,
            energies: EnergyByMethod {
                facility: result.energy(MeterKind::Facility),
                pdu: result.energy(MeterKind::Pdu),
                ipmi: result.energy(MeterKind::Ipmi),
                turbostat: result.energy(MeterKind::Turbostat),
            },
            truth: result.true_energy(),
        }
    }
}

/// One region's totals inside a [`FleetRollup`].
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRollup {
    /// Region short code ("?" for region indexes beyond the scenario's
    /// code list — reachable only via hand-mutated fields).
    pub code: String,
    /// Sites rolled into this region.
    pub sites: usize,
    /// Monitored nodes rolled into this region.
    pub nodes: u64,
    /// Sum of the region's per-site best estimates (sites without an
    /// estimate excluded).
    pub best_estimate: Energy,
    /// Sum of the region's truth energies.
    pub truth: Energy,
}

/// Columnar fleet-level statistics over per-site best-estimate energies,
/// with the same cached-sort quantile machinery as
/// [`crate::stats_view`]: the sorted copy is built once on first
/// quantile query and reused after that.
///
/// Sites that lack any measurement method hold `NaN` in the
/// best-estimate column and are excluded from quantiles, totals and
/// extrema; a *present* best estimate that is itself `NaN` (poisoned
/// data) instead flags the whole column, and quantile queries refuse
/// with [`Error::NonFiniteData`] rather than interpolating garbage.
#[derive(Clone, Debug)]
pub struct FleetRollup {
    period: Period,
    region_codes: Vec<String>,
    region_of: Vec<u32>,
    nodes: Vec<u32>,
    /// Per-site best estimate in kWh; `NaN` = the site has no method.
    best_kwh: Vec<f64>,
    truth_kwh: Vec<f64>,
    missing_best: usize,
    nan_best: bool,
    sorted_best: OnceLock<Vec<f64>>,
}

impl FleetRollup {
    /// An empty roll-up to fold sites into — the incremental
    /// counterpart of [`FleetScenario::try_simulate`]'s batch path,
    /// which itself is just `new` + [`FleetRollup::fold_site`] per
    /// site. The serve layer grows one of these per live fleet.
    pub fn new(region_codes: Vec<String>, period: Period) -> Self {
        FleetRollup {
            period,
            region_codes,
            region_of: Vec::new(),
            nodes: Vec::new(),
            best_kwh: Vec::new(),
            truth_kwh: Vec::new(),
            missing_best: 0,
            nan_best: false,
            sorted_best: OnceLock::new(),
        }
    }

    /// Folds one more site's roll-up into the columns, in place.
    ///
    /// A warm cached-sort view is **updated** — the new best estimate is
    /// inserted at its `partition_point` rank — never left stale: the
    /// private `push` this grew out of skipped the cache entirely, which
    /// was sound only while every push happened before the first
    /// quantile query. The incremental service folds *between* queries,
    /// so the regression tests now pin fold-after-warm-query directly.
    /// Sites without an estimate (and poisoned `NaN` estimates, which
    /// flag the column for the quantile guards) stay out of the cached
    /// view, exactly as the batch sort filters them.
    pub fn fold_site(&mut self, site: SiteRollup) {
        self.region_of.push(site.region);
        self.nodes.push(site.nodes);
        let kwh = match site.energies.best_estimate() {
            Some(e) => {
                let kwh = e.kilowatt_hours();
                if kwh.is_nan() {
                    self.nan_best = true;
                }
                kwh
            }
            None => {
                self.missing_best += 1;
                f64::NAN
            }
        };
        self.best_kwh.push(kwh);
        self.truth_kwh.push(site.truth.kilowatt_hours());
        if !kwh.is_nan() {
            if let Some(sorted) = self.sorted_best.get_mut() {
                let p = sorted.partition_point(|x| x.total_cmp(&kwh).is_le());
                sorted.insert(p, kwh);
            }
        }
    }

    /// Snapshot window the fleet was simulated over.
    pub fn period(&self) -> Period {
        self.period
    }

    /// Region short codes, as supplied by the scenario.
    pub fn region_codes(&self) -> &[String] {
        &self.region_codes
    }

    /// Number of sites rolled up.
    pub fn site_count(&self) -> usize {
        self.best_kwh.len()
    }

    /// Sites that produced no best estimate (no measurement method).
    pub fn sites_missing_estimate(&self) -> usize {
        self.missing_best
    }

    /// Total monitored nodes across the fleet.
    pub fn total_nodes(&self) -> u64 {
        self.nodes.iter().map(|&n| u64::from(n)).sum()
    }

    /// The per-site best-estimate column in site (= region-major) order,
    /// in kWh; `NaN` marks a site with no estimate.
    pub fn best_estimate_kwh(&self) -> &[f64] {
        &self.best_kwh
    }

    /// The per-site truth-energy column in site order, in kWh.
    pub fn truth_kwh(&self) -> &[f64] {
        &self.truth_kwh
    }

    /// Fleet total of per-site best estimates — the Table 2 "Total" row
    /// convention lifted to fleet scale. Sites without an estimate are
    /// skipped, exactly as [`iriscast_telemetry::aggregate::total_best_estimate`]
    /// skips `None` rows, and the fold runs in site order, so the total
    /// is bit-identical to the serial row path's. A poisoned column
    /// (some site's *present* estimate is `NaN`) yields `NaN`, just as
    /// the serial sum would.
    pub fn total_best_estimate(&self) -> Energy {
        if self.nan_best {
            return Energy::from_kilowatt_hours(f64::NAN);
        }
        let kwh = self
            .best_kwh
            .iter()
            .filter(|v| !v.is_nan())
            .fold(0.0, |acc, v| acc + v);
        Energy::from_kilowatt_hours(kwh)
    }

    /// Fleet total of instrument-free truth energies.
    pub fn total_truth(&self) -> Energy {
        Energy::from_kilowatt_hours(self.truth_kwh.iter().fold(0.0, |acc, v| acc + v))
    }

    /// The sorted best-estimate column (present values only), built once
    /// and cached — `stats_view`'s cached-sort pattern.
    fn sorted_best(&self) -> &[f64] {
        self.sorted_best.get_or_init(|| {
            let mut v: Vec<f64> = self
                .best_kwh
                .iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect();
            v.sort_by(f64::total_cmp);
            v
        })
    }

    /// The `q`-quantile (0 = min, 0.5 = median, 1 = max) of per-site
    /// best estimates, linearly interpolated with the same rule as every
    /// other quantile in the workspace
    /// ([`iriscast_grid::stats::percentile_sorted`]).
    ///
    /// # Errors
    /// [`Error::InvalidFraction`] when `q` lies outside `[0, 1]`;
    /// [`Error::NonFiniteData`] when a present estimate is `NaN`;
    /// [`Error::EmptyColumn`] when no site has any estimate.
    pub fn percentile(&self, q: f64) -> Result<Energy> {
        if !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidFraction { value: q });
        }
        if self.nan_best {
            return Err(Error::NonFiniteData {
                column: "best estimate",
            });
        }
        stats::percentile_sorted(self.sorted_best(), q)
            .map(Energy::from_kilowatt_hours)
            .ok_or(Error::EmptyColumn {
                column: "best estimate",
            })
    }

    /// Median per-site best estimate — `percentile(0.5)`.
    pub fn median(&self) -> Result<Energy> {
        self.percentile(0.5)
    }

    /// The hottest site as `(site index, best estimate)`, or `None` when
    /// no site has an estimate. `NaN` estimates never win.
    pub fn hottest_site(&self) -> Option<(usize, Energy)> {
        self.best_kwh
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, Energy::from_kilowatt_hours(v)))
    }

    /// Imbalance factor: hottest site over the mean site (present
    /// estimates only) — 1.0 is a perfectly balanced fleet. Degenerate
    /// fleets (no estimates, all-zero, `NaN`-poisoned) report 1.0
    /// through the same NaN-safe guard as
    /// [`iriscast_telemetry::RackEnergyReport::imbalance`].
    pub fn imbalance(&self) -> f64 {
        let Some((_, hottest)) = self.hottest_site() else {
            return 1.0;
        };
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in &self.best_kwh {
            if !v.is_nan() {
                sum += v;
                n += 1;
            }
        }
        let mean = sum / n as f64;
        // Explicit NaN arm: NaN compares false against any threshold,
        // so a bare `<= 0.0` guard would let it through into the ratio.
        if mean.is_nan() || mean <= 0.0 {
            return 1.0;
        }
        hottest.kilowatt_hours() / mean
    }

    /// Per-region totals in region order — the middle tier of the
    /// roll-up. Region indexes beyond the scenario's code list (only
    /// reachable by hand-mutating public fields) land in a trailing
    /// `"?"` bucket rather than panicking.
    pub fn region_rollups(&self) -> Vec<RegionRollup> {
        let known = self.region_codes.len();
        let buckets = self
            .region_of
            .iter()
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0)
            .max(known);
        let mut out: Vec<RegionRollup> = (0..buckets)
            .map(|r| RegionRollup {
                code: self
                    .region_codes
                    .get(r)
                    .cloned()
                    .unwrap_or_else(|| "?".into()),
                sites: 0,
                nodes: 0,
                best_estimate: Energy::from_kilowatt_hours(0.0),
                truth: Energy::from_kilowatt_hours(0.0),
            })
            .collect();
        for (i, &r) in self.region_of.iter().enumerate() {
            let bucket = &mut out[r as usize];
            bucket.sites += 1;
            bucket.nodes += u64::from(self.nodes[i]);
            if !self.best_kwh[i].is_nan() {
                bucket.best_estimate += Energy::from_kilowatt_hours(self.best_kwh[i]);
            }
            bucket.truth += Energy::from_kilowatt_hours(self.truth_kwh[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_telemetry::TelemetryError;

    fn quick_fleet() -> FleetScenario {
        FleetScenario::synthetic(3, 4, 2, 99).with_sample_step(SimDuration::from_secs(7_200))
    }

    #[test]
    fn synthetic_shape_and_order() {
        let f = quick_fleet();
        assert_eq!(f.region_codes.len(), 3);
        assert_eq!(f.site_count(), 12);
        assert_eq!(f.total_nodes(), 24);
        // Region-major order with contiguous region runs.
        let regions: Vec<u32> = f.sites.iter().map(|s| s.region).collect();
        assert_eq!(regions, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        // Utilisation means actually vary across sites.
        let means: Vec<f64> = f.sites.iter().map(|s| s.utilization.mean).collect();
        assert!(means.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-3));
    }

    #[test]
    fn rollup_tiers_sum_consistently() {
        let rollup = quick_fleet().try_simulate(4).unwrap();
        assert_eq!(rollup.site_count(), 12);
        assert_eq!(rollup.total_nodes(), 24);
        assert_eq!(rollup.sites_missing_estimate(), 0);
        let regions = rollup.region_rollups();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions.iter().map(|r| r.sites).sum::<usize>(), 12);
        let by_region: f64 = regions
            .iter()
            .map(|r| r.best_estimate.kilowatt_hours())
            .sum();
        let flat = rollup.total_best_estimate().kilowatt_hours();
        assert!((by_region - flat).abs() < flat * 1e-12 + 1e-9);
        // PDU observes the truth with small noise: totals are close.
        let truth = rollup.total_truth().kilowatt_hours();
        assert!((flat - truth).abs() / truth < 0.05, "{flat} vs {truth}");
    }

    #[test]
    fn quantiles_bracket_the_column() {
        let rollup = quick_fleet().try_simulate(2).unwrap();
        let lo = rollup.percentile(0.0).unwrap();
        let med = rollup.median().unwrap();
        let hi = rollup.percentile(1.0).unwrap();
        assert!(lo <= med && med <= hi);
        let (_, hottest) = rollup.hottest_site().unwrap();
        assert_eq!(hi, hottest);
        assert!(rollup.imbalance() >= 1.0);
        assert!(matches!(
            rollup.percentile(1.5),
            Err(Error::InvalidFraction { .. })
        ));
    }

    #[test]
    fn methodless_sites_are_skipped_not_poisonous() {
        let mut f = quick_fleet();
        f.sites[3].config.methods.clear();
        let rollup = f.try_simulate(2).unwrap();
        assert_eq!(rollup.sites_missing_estimate(), 1);
        assert!(rollup.best_estimate_kwh()[3].is_nan());
        assert!(rollup.total_best_estimate().kilowatt_hours().is_finite());
        assert!(rollup.median().unwrap().kilowatt_hours() > 0.0);
        // A fleet with no estimates at all is an EmptyColumn, not a 0.
        for s in &mut f.sites {
            s.config.methods.clear();
        }
        let bare = f.try_simulate(2).unwrap();
        assert!(matches!(
            bare.median(),
            Err(Error::EmptyColumn {
                column: "best estimate"
            })
        ));
        assert_eq!(bare.hottest_site(), None);
        assert_eq!(bare.imbalance(), 1.0);
        assert_eq!(bare.total_best_estimate().kilowatt_hours(), 0.0);
    }

    #[test]
    fn degenerate_site_fails_as_a_value() {
        let mut f = quick_fleet();
        f.sites[5].config.groups.clear();
        let err = f.try_simulate(4).unwrap_err();
        assert!(matches!(err, TelemetryError::NoNodes { .. }));
    }

    #[test]
    fn earliest_failing_site_wins() {
        let mut f = quick_fleet();
        f.sites[7].config.groups.clear();
        f.sites[2].config.groups.clear();
        let err = f.try_simulate(4).unwrap_err();
        let TelemetryError::NoNodes { site } = err else {
            panic!("wrong error kind");
        };
        assert_eq!(site, f.sites[2].config.site_code);
    }

    #[test]
    fn sharding_is_bit_invariant() {
        let f = quick_fleet();
        let a = f.try_simulate(1).unwrap();
        let b = f.try_simulate(16).unwrap();
        assert_eq!(a.best_estimate_kwh(), b.best_estimate_kwh());
        assert_eq!(a.truth_kwh(), b.truth_kwh());
        assert_eq!(
            a.total_best_estimate().kilowatt_hours(),
            b.total_best_estimate().kilowatt_hours()
        );
    }

    fn hand_site(kwh: Option<f64>, truth: f64) -> SiteRollup {
        SiteRollup {
            region: 0,
            nodes: 1,
            energies: EnergyByMethod {
                facility: None,
                pdu: kwh.map(Energy::from_kilowatt_hours),
                ipmi: None,
                turbostat: None,
            },
            truth: Energy::from_kilowatt_hours(truth),
        }
    }

    #[test]
    fn fold_after_warm_query_never_serves_the_stale_sort() {
        // The regression: the old private `push` never touched the
        // cached sort, which was sound only because every push happened
        // before the first quantile query. The public fold interleaves
        // with queries, so a warm cache must absorb each new site.
        let mut live = FleetRollup::new(vec!["R".into()], Period::snapshot_24h());
        live.fold_site(hand_site(Some(10.0), 10.0));
        live.fold_site(hand_site(Some(30.0), 30.0));
        // Warm the cache, then fold an extremum past both ends.
        assert_eq!(live.percentile(1.0).unwrap().kilowatt_hours(), 30.0);
        live.fold_site(hand_site(Some(50.0), 50.0));
        assert_eq!(live.percentile(1.0).unwrap().kilowatt_hours(), 50.0);
        live.fold_site(hand_site(Some(1.0), 1.0));
        assert_eq!(live.percentile(0.0).unwrap().kilowatt_hours(), 1.0);
        // A methodless site folds into the columns but not the warm
        // cache (mirroring the batch sort's NaN filter).
        live.fold_site(hand_site(None, 2.0));
        assert_eq!(live.sites_missing_estimate(), 1);
        assert_eq!(live.percentile(0.0).unwrap().kilowatt_hours(), 1.0);
        // Every quantile of the warm incremental view matches a cold
        // roll-up of the same sites, interpolation and all.
        let mut cold = FleetRollup::new(vec!["R".into()], Period::snapshot_24h());
        for kwh in [Some(10.0), Some(30.0), Some(50.0), Some(1.0), None] {
            cold.fold_site(hand_site(kwh, kwh.unwrap_or(2.0)));
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(
                live.percentile(q).unwrap().kilowatt_hours(),
                cold.percentile(q).unwrap().kilowatt_hours(),
                "q = {q}"
            );
        }
        // A poisoned estimate folded after warming flips the typed
        // refusal on, stale cache notwithstanding.
        live.fold_site(hand_site(Some(f64::NAN), 0.0));
        assert!(matches!(
            live.percentile(0.5),
            Err(Error::NonFiniteData { .. })
        ));
    }

    #[test]
    fn unknown_region_index_lands_in_question_bucket() {
        let mut f = quick_fleet();
        f.sites[11].region = 9;
        let rollup = f.try_simulate(2).unwrap();
        let regions = rollup.region_rollups();
        assert_eq!(regions.len(), 10);
        assert_eq!(regions[9].code, "?");
        assert_eq!(regions[9].sites, 1);
        assert_eq!(regions.iter().map(|r| r.sites).sum::<usize>(), 12);
    }
}
