//! The paper's experiment as a library function: the calibrated IRIS
//! snapshot.
//!
//! Calibration works backwards from the published Table 2: each site's
//! *wall* energy target is derived from its most upstream measurement
//! (facility/PDU directly; IPMI divided by the 0.985 instrument share),
//! the site-wide utilisation is solved from the fleet's power envelopes,
//! and IPMI node coverage is solved so the expected IPMI column lands on
//! the published value. Running the collector with those parameters then
//! regenerates Table 2 — systematic offsets, missing cells and all — from
//! a physically structured simulation rather than from pasted constants.

use crate::paper::{self, Table2Row};
use iriscast_inventory::{iris as iris_inv, Fleet};
use iriscast_telemetry::{
    aggregate, CollectScratch, FillBackend, MeterKind, NodeGroupTelemetry, NodePowerModel,
    SiteCollector, SiteEnergyReport, SiteTelemetryConfig, SiteTelemetryResult,
    SyntheticUtilization,
};
use iriscast_units::{Energy, Period, SimDuration};

/// A fully calibrated per-site simulation setup.
#[derive(Clone, Debug)]
pub struct CalibratedSite {
    /// Collector configuration (groups, methods, coverage, seed).
    pub config: SiteTelemetryConfig,
    /// Utilisation source whose mean reproduces the site's published
    /// energy.
    pub utilization: SyntheticUtilization,
    /// The site-wide utilisation the calibration solved for.
    pub solved_utilization: f64,
}

/// The full IRIS snapshot scenario: fleet + calibrated sites.
#[derive(Clone, Debug)]
pub struct IrisScenario {
    /// The IRIS hardware inventory.
    pub fleet: Fleet,
    /// One calibrated setup per Table 2 row, in row order.
    pub sites: Vec<CalibratedSite>,
    /// Snapshot window (24 hours).
    pub period: Period,
}

/// Result of simulating the snapshot.
#[derive(Clone, Debug)]
pub struct IrisSnapshotResult {
    /// Per-site collector outputs (power series per method, registers).
    pub site_results: Vec<SiteTelemetryResult>,
    /// Table 2 rows computed from the simulation.
    pub rows: Vec<SiteEnergyReport>,
}

impl IrisSnapshotResult {
    /// The federation total using the paper's best-estimate priority.
    pub fn total(&self) -> Energy {
        aggregate::total_best_estimate(&self.rows)
    }

    /// Total monitored nodes.
    pub fn nodes(&self) -> u32 {
        aggregate::total_nodes(&self.rows)
    }
}

/// Which methods each site had, per the published Table 2's populated
/// cells.
fn methods_for(row: &Table2Row) -> Vec<MeterKind> {
    let mut methods = Vec::new();
    if row.facility_kwh.is_some() {
        methods.push(MeterKind::Facility);
    }
    if row.pdu_kwh.is_some() {
        methods.push(MeterKind::Pdu);
    }
    if row.ipmi_kwh.is_some() {
        methods.push(MeterKind::Ipmi);
    }
    if row.turbostat_kwh.is_some() {
        methods.push(MeterKind::Turbostat);
    }
    methods
}

/// The wall-energy target for a site: its most upstream published cell,
/// corrected for instrument coverage where only IPMI exists.
fn wall_target_kwh(row: &Table2Row, ipmi_share: f64) -> f64 {
    row.facility_kwh
        .or(row.pdu_kwh)
        .unwrap_or_else(|| row.ipmi_kwh.expect("every Table 2 row has IPMI") / ipmi_share)
}

impl IrisScenario {
    /// Builds the calibrated scenario with the given base seed.
    pub fn paper_snapshot(seed: u64) -> Self {
        let fleet = iris_inv::iris_fleet();
        let period = Period::snapshot_24h();
        let window_hours = period.duration().as_hours();
        let mut sites = Vec::with_capacity(paper::TABLE2_ROWS.len());

        for (i, row) in paper::TABLE2_ROWS.iter().enumerate() {
            let site = fleet
                .site(row.site)
                .unwrap_or_else(|| panic!("fleet is missing site {}", row.site));
            // Monitored groups become telemetry groups.
            let groups: Vec<NodeGroupTelemetry> = site
                .groups
                .iter()
                .filter(|g| g.monitored > 0)
                .map(|g| NodeGroupTelemetry {
                    label: g.spec.name().to_string(),
                    count: g.monitored,
                    power_model: NodePowerModel::linear(g.spec.idle_power(), g.spec.max_power()),
                })
                .collect();
            let mut config = SiteTelemetryConfig::new(row.site, groups, seed ^ (i as u64 + 1));
            config.methods = methods_for(row);

            // Solve site utilisation from the wall-energy target.
            let ipmi_share = config.groups[0].power_model.ipmi_share;
            let target_kwh = wall_target_kwh(row, ipmi_share);
            let target_power =
                Energy::from_kilowatt_hours(target_kwh).mean_power_over(period.duration());
            let u = config.solve_utilization(target_power);

            // Solve IPMI node coverage against the published IPMI cell:
            // walk the id space (group order) accumulating expected IPMI
            // energy per node until the target is met.
            if let Some(ipmi_target) = row.ipmi_kwh {
                let mut remaining = ipmi_target;
                let mut covered_nodes = 0.0f64;
                'groups: for g in &config.groups {
                    let per_node_kwh = (g.power_model.ipmi_visible(g.power_model.wall_power(u))
                        * SimDuration::from_hours(window_hours))
                    .kilowatt_hours();
                    for _ in 0..g.count {
                        if remaining < per_node_kwh / 2.0 {
                            break 'groups;
                        }
                        remaining -= per_node_kwh;
                        covered_nodes += 1.0;
                    }
                }
                config.ipmi_node_coverage =
                    (covered_nodes / f64::from(config.total_nodes())).min(1.0);
            }

            sites.push(CalibratedSite {
                utilization: SyntheticUtilization::calibrated(u, seed ^ (0x5EED << 8) ^ i as u64),
                solved_utilization: u,
                config,
            });
        }

        IrisScenario {
            fleet,
            sites,
            period,
        }
    }

    /// The scenario as a single-region federation, for the fleet-level
    /// roll-up path ([`crate::federation::FleetScenario::try_simulate`]):
    /// same sites, same seeds, so per-site energies are bit-identical to
    /// [`IrisScenario::simulate`]'s rows.
    pub fn federated(&self) -> crate::federation::FleetScenario {
        crate::federation::FleetScenario::from_iris(self)
    }

    /// Overrides the sampling step on every site (tests use coarser steps
    /// to stay fast in debug builds; benches use the realistic 30 s).
    pub fn with_sample_step(mut self, step: SimDuration) -> Self {
        for s in &mut self.sites {
            s.config.sample_step = step;
        }
        self
    }

    /// Runs the collectors and assembles Table 2.
    ///
    /// # Panics
    /// If any site fails to collect. Scenarios from
    /// [`IrisScenario::paper_snapshot`] always collect, but the fields
    /// are public — a hand-mutated scenario (zero-length period,
    /// zero-node site) should go through
    /// [`IrisScenario::try_simulate_with`] to get the failure as a
    /// value.
    pub fn simulate(&self, workers: usize) -> IrisSnapshotResult {
        self.simulate_with(workers, &mut CollectScratch::new())
    }

    /// [`IrisScenario::simulate`] with caller-owned collector buffers:
    /// one [`CollectScratch`] serves every site in turn, so a loop that
    /// simulates repeatedly (benchmarks, day-sweeps) can keep the chunk
    /// arena warm across snapshots — recycle the previous snapshot's
    /// [`SiteTelemetryResult`]s into `scratch` first and the collect
    /// data path allocates nothing. Bit-identical to
    /// [`IrisScenario::simulate`], including its panic on a
    /// non-collectable site.
    pub fn simulate_with(
        &self,
        workers: usize,
        scratch: &mut CollectScratch,
    ) -> IrisSnapshotResult {
        self.try_simulate_with(workers, scratch)
            .unwrap_or_else(|e| panic!("site failed to collect: {e}"))
    }

    /// The fallible form of [`IrisScenario::simulate_with`]: a site that
    /// cannot collect (zero-length period, zero monitored nodes — only
    /// reachable by mutating the scenario's public fields) surfaces as
    /// the typed [`iriscast_telemetry::TelemetryError`] instead of a
    /// panic.
    pub fn try_simulate_with(
        &self,
        workers: usize,
        scratch: &mut CollectScratch,
    ) -> iriscast_telemetry::TelemetryResult<IrisSnapshotResult> {
        let mut site_results = Vec::with_capacity(self.sites.len());
        let mut rows = Vec::with_capacity(self.sites.len());
        for site in &self.sites {
            // Borrowed-config collect: no per-site config clone or
            // collector construction — with a recycled scratch, the
            // whole snapshot's telemetry data path allocates nothing.
            let result = SiteCollector::collect_config(
                &site.config,
                self.period,
                &site.utilization,
                workers,
                scratch,
                FillBackend::default(),
            )?;
            rows.push(SiteEnergyReport::from_result(&result));
            site_results.push(result);
        }
        Ok(IrisSnapshotResult { site_results, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coarse sampling keeps debug-mode tests quick; calibration is
    /// time-mean based, so the step barely moves the totals.
    fn quick_scenario() -> IrisScenario {
        IrisScenario::paper_snapshot(2022).with_sample_step(SimDuration::from_secs(600))
    }

    #[test]
    fn calibration_solves_sane_utilizations() {
        let scenario = quick_scenario();
        assert_eq!(scenario.sites.len(), 6);
        for site in &scenario.sites {
            assert!(
                (0.05..=0.95).contains(&site.solved_utilization),
                "{}: u = {}",
                site.config.site_code,
                site.solved_utilization
            );
        }
        // QMUL's published mean wall power is ~459 W/node on a 140–620 W
        // envelope → u ≈ 0.66.
        let qmul = &scenario.sites[0];
        assert!((qmul.solved_utilization - 0.664).abs() < 0.01);
    }

    #[test]
    fn coverage_reflects_published_ipmi_gaps() {
        let scenario = quick_scenario();
        let by_code = |code: &str| {
            scenario
                .sites
                .iter()
                .find(|s| s.config.site_code == code)
                .unwrap()
        };
        // QMUL IPMI ≈ full coverage; DUR and SCARF far below.
        assert!(by_code("QMUL").config.ipmi_node_coverage > 0.95);
        let dur = by_code("DUR").config.ipmi_node_coverage;
        assert!((0.70..0.85).contains(&dur), "DUR coverage {dur}");
        let scarf = by_code("STFC-SCARF").config.ipmi_node_coverage;
        assert!((0.70..0.85).contains(&scarf), "SCARF coverage {scarf}");
    }

    #[test]
    fn simulated_table2_matches_published_cells() {
        let result = quick_scenario().simulate(4);
        for (row, published) in result.rows.iter().zip(paper::TABLE2_ROWS.iter()) {
            assert_eq!(row.site, published.site);
            assert_eq!(row.nodes, published.nodes);
            let check = |got: Option<Energy>, want: Option<f64>, what: &str| match (got, want) {
                (Some(g), Some(w)) => {
                    let rel = (g.kilowatt_hours() - w).abs() / w;
                    assert!(
                        rel < 0.02,
                        "{}/{what}: simulated {:.0} vs published {w:.0} ({:.1}% off)",
                        row.site,
                        g.kilowatt_hours(),
                        rel * 100.0
                    );
                }
                (None, None) => {}
                (g, w) => panic!("{}/{what}: presence mismatch {g:?} vs {w:?}", row.site),
            };
            check(row.energies.facility, published.facility_kwh, "facility");
            check(row.energies.pdu, published.pdu_kwh, "pdu");
            check(row.energies.ipmi, published.ipmi_kwh, "ipmi");
            check(row.energies.turbostat, published.turbostat_kwh, "turbostat");
        }
        // Federation total within 2% of 18,760 kWh.
        let total = result.total().kilowatt_hours();
        assert!(
            (total - paper::TABLE2_TOTAL_KWH).abs() / paper::TABLE2_TOTAL_KWH < 0.02,
            "total {total:.0}"
        );
        assert_eq!(result.nodes(), 2_462);
    }

    #[test]
    fn qmul_method_ordering_reproduced() {
        let result = quick_scenario().simulate(4);
        let qmul = &result.rows[0];
        let fac = qmul.energies.facility.unwrap().kilowatt_hours();
        let pdu = qmul.energies.pdu.unwrap().kilowatt_hours();
        let ipmi = qmul.energies.ipmi.unwrap().kilowatt_hours();
        let turbo = qmul.energies.turbostat.unwrap().kilowatt_hours();
        assert!(turbo < ipmi && ipmi < pdu);
        assert!((fac - pdu).abs() / pdu < 0.01);
        // The paper's systematic offsets: −5% and −1.5%.
        assert!((turbo / ipmi - 0.949).abs() < 0.01, "{}", turbo / ipmi);
        assert!((ipmi / pdu - 0.985).abs() < 0.01, "{}", ipmi / pdu);
    }

    #[test]
    fn hand_mutated_scenario_fails_as_a_value_through_try_simulate() {
        let mut scenario = quick_scenario();
        scenario.period =
            Period::starting_at(scenario.period.start(), iriscast_units::SimDuration::ZERO);
        let err = scenario
            .try_simulate_with(2, &mut CollectScratch::new())
            .unwrap_err();
        assert!(matches!(
            err,
            iriscast_telemetry::TelemetryError::EmptyWindow { .. }
        ));
    }

    #[test]
    fn federated_rollup_matches_serial_rows_bit_for_bit() {
        let scenario = quick_scenario();
        let serial = scenario.simulate(2);
        let rollup = scenario.federated().try_simulate(4).unwrap();
        assert_eq!(rollup.site_count(), serial.rows.len());
        for (i, row) in serial.rows.iter().enumerate() {
            let want = row.energies.best_estimate().unwrap().kilowatt_hours();
            assert_eq!(rollup.best_estimate_kwh()[i], want, "{} drifted", row.site);
        }
        assert_eq!(
            rollup.total_best_estimate().kilowatt_hours(),
            serial.total().kilowatt_hours(),
            "fleet total is not bit-identical to the Table 2 total"
        );
        assert_eq!(rollup.total_nodes(), u64::from(serial.nodes()));
        let regions = rollup.region_rollups();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].code, "IRIS");
        assert_eq!(regions[0].sites, serial.rows.len());
    }

    #[test]
    fn simulation_is_deterministic() {
        let scenario = quick_scenario();
        let a = scenario.simulate(1);
        let b = scenario.simulate(8);
        assert_eq!(a.rows, b.rows, "worker count changed the result");
    }
}
