//! The IRISCAST carbon model: total climate impact of a computing
//! infrastructure.
//!
//! This crate is the paper's primary contribution — the model of §4:
//!
//! > `Ct = Ca + Ce`  *(equation 1)*
//!
//! where active carbon `Ca` is measured energy × grid carbon intensity ×
//! facility overheads (equations 2–3), and embodied carbon `Ce` is
//! manufacturing carbon amortised over hardware lifetime (equation 4).
//! Everything is evaluated as *ranges* (low/medium/high scenarios), the
//! paper's way of handling the deep uncertainty in each input.
//!
//! Layout:
//!
//! * [`space`] — first-class scenario spaces: [`space::ScenarioAxis`],
//!   [`space::ScenarioSpace`], [`space::ScenarioPoint`];
//! * [`engine`] — [`engine::Assessment::builder`] and batch evaluation
//!   (materialised, streamed, chunked; serial and parallel) with
//!   envelope/percentile/marginal queries;
//! * [`time_resolved`] — [`time_resolved::TimeResolvedAssessment`]:
//!   per-interval energy × intensity series convolved over the same
//!   scenario spaces, with per-interval [`time_resolved::CarbonProfile`]
//!   output;
//! * [`federation`] — [`federation::FleetScenario`]: rack → site →
//!   region → fleet roll-up that shards *sites* (not node lanes) across
//!   the persistent worker pool, scaling telemetry snapshots to 10,000
//!   sites with columnar fleet statistics;
//! * [`error`] — the typed [`Error`]/[`Result`] every fallible API uses;
//! * [`active`] — equations (2)–(3), scalar and time-aligned;
//! * [`facilities`] — PUE-based and measured facility overheads;
//! * [`embodied`] — equation (4) plus amortisation-policy extensions;
//! * [`scenario`] — the CI×PUE grid (Table 3) and embodied sweep (Table 4);
//! * [`model`] — equation (1) over interval estimates;
//! * [`assessment`] — the one-call pipeline producing every table;
//! * [`iris`] — the paper's experiment, calibrated and runnable;
//! * [`netzero`] — decarbonisation-pathway projection and the
//!   embodied/active crossover year (extension of §6's outlook);
//! * [`uncertainty`] — Monte-Carlo propagation (extension);
//! * [`equivalence`] — flight/car/household comparisons (§6);
//! * [`report`] — text/markdown table rendering;
//! * [`paper`] — every published constant and cell, for validation.
//!
//! # The scenario-space engine and the table adapters
//!
//! The model's native surface is the [`engine`]: an
//! [`engine::Assessment`] couples one energy figure and one fleet to a
//! [`space::ScenarioSpace`] — the cartesian product of carbon-intensity,
//! PUE, embodied-carbon and lifespan axes of *any* length — and evaluates
//! `total = active + embodied` at every point, serially
//! ([`engine::Assessment::evaluate_space`]) or chunked across threads
//! ([`engine::Assessment::par_evaluate_space`], bit-identical results).
//!
//! The paper-shaped types predate the engine and are kept as **thin
//! adapters** over it, cell-for-cell and bit-for-bit compatible:
//!
//! * [`scenario::ActiveCarbonGrid`] is a CI×PUE space with embodied
//!   pinned to zero — Table 3 is the `active` column reshaped 3 × 3;
//! * [`scenario::EmbodiedSweep`] is an embodied×lifespan space with a
//!   fixed grid — Table 4 is the `embodied` column reshaped 2 × *n*;
//! * [`assessment::SnapshotAssessment::run`] composes both adapters, so
//!   every golden Table 3/4 number is unchanged;
//! * [`sensitivity`] and [`uncertainty`] evaluate their one-at-a-time and
//!   Monte-Carlo points through the same [`engine::evaluate_one`] kernel.
//!
//! New code should build scenario spaces directly; the adapters exist so
//! published-table workflows (and their serialised forms) keep working.
//!
//! # Quickstart
//!
//! ```
//! use iriscast_model::engine::Assessment;
//! use iriscast_model::paper;
//! use iriscast_units::Energy;
//!
//! // Assess a day where the estate drew 19,380 kWh (the paper's figure),
//! // sweeping a 6 × 4 × 5 × 5 = 600-scenario space.
//! let assessment = Assessment::builder()
//!     .energy(Energy::from_kilowatt_hours(19_380.0))
//!     .ci_grams_per_kwh(&[50.0, 100.0, 150.0, 200.0, 250.0, 300.0])
//!     .pue_values(&[1.1, 1.3, 1.5, 1.6])
//!     .embodied_linspace(paper::server_embodied_bounds(), 5)
//!     .lifespan_linspace(3.0, 7.0, 5)
//!     .servers(paper::AMORTISATION_FLEET_SERVERS)
//!     .build()
//!     .unwrap();
//! let results = assessment.evaluate_space();
//! assert_eq!(results.len(), 600);
//! let total = results.envelope().total;
//! assert!(total.lo.kilograms() > 1_400.0 && total.hi.kilograms() < 11_800.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod active;
pub mod assessment;
pub mod embodied;
pub mod engine;
pub mod equivalence;
pub mod error;
pub mod facilities;
pub mod federation;
pub mod iris;
pub mod model;
pub mod netzero;
pub mod paper;
pub mod regional;
pub mod report;
pub mod scenario;
pub mod sensitivity;
pub mod space;
pub mod stats_view;
pub mod time_resolved;
pub mod uncertainty;

pub use assessment::{AssessmentParams, SnapshotAssessment};
pub use engine::{
    Assessment, AssessmentBuilder, PointOutcome, PointResult, SpaceChunk, SpaceChunks, SpaceResults,
};
pub use error::{Error, Result};
pub use federation::{FleetRollup, FleetScenario, FleetSite, RegionRollup, SiteRollup};
pub use model::CarbonAssessment;
pub use scenario::{ActiveCarbonGrid, EmbodiedSweep};
pub use space::{AxisId, ScenarioAxis, ScenarioPoint, ScenarioSpace};
pub use stats_view::{Envelope, Marginal, TotalsSummary};
pub use time_resolved::{CarbonProfile, TimeResolvedAssessment, TimeResolvedBuilder};
