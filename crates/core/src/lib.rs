//! The IRISCAST carbon model: total climate impact of a computing
//! infrastructure.
//!
//! This crate is the paper's primary contribution — the model of §4:
//!
//! > `Ct = Ca + Ce`  *(equation 1)*
//!
//! where active carbon `Ca` is measured energy × grid carbon intensity ×
//! facility overheads (equations 2–3), and embodied carbon `Ce` is
//! manufacturing carbon amortised over hardware lifetime (equation 4).
//! Everything is evaluated as *ranges* (low/medium/high scenarios), the
//! paper's way of handling the deep uncertainty in each input.
//!
//! Layout:
//!
//! * [`active`] — equations (2)–(3), scalar and time-aligned;
//! * [`facilities`] — PUE-based and measured facility overheads;
//! * [`embodied`] — equation (4) plus amortisation-policy extensions;
//! * [`scenario`] — the CI×PUE grid (Table 3) and embodied sweep (Table 4);
//! * [`model`] — equation (1) over interval estimates;
//! * [`assessment`] — the one-call pipeline producing every table;
//! * [`iris`] — the paper's experiment, calibrated and runnable;
//! * [`netzero`] — decarbonisation-pathway projection and the
//!   embodied/active crossover year (extension of §6's outlook);
//! * [`uncertainty`] — Monte-Carlo propagation (extension);
//! * [`equivalence`] — flight/car/household comparisons (§6);
//! * [`report`] — text/markdown table rendering;
//! * [`paper`] — every published constant and cell, for validation.
//!
//! # Quickstart
//!
//! ```
//! use iriscast_model::assessment::{AssessmentParams, SnapshotAssessment};
//! use iriscast_units::Energy;
//!
//! // Assess a day where the estate drew 19,380 kWh (the paper's figure).
//! let a = SnapshotAssessment::run(
//!     Energy::from_kilowatt_hours(19_380.0),
//!     &AssessmentParams::paper(),
//! );
//! let total = a.assessment.total();
//! assert!(total.lo.kilograms() > 1_400.0 && total.hi.kilograms() < 11_800.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod active;
pub mod assessment;
pub mod embodied;
pub mod equivalence;
pub mod facilities;
pub mod iris;
pub mod model;
pub mod netzero;
pub mod paper;
pub mod regional;
pub mod report;
pub mod scenario;
pub mod sensitivity;
pub mod uncertainty;

pub use assessment::{AssessmentParams, SnapshotAssessment};
pub use model::CarbonAssessment;
pub use scenario::{ActiveCarbonGrid, EmbodiedSweep};
