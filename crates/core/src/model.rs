//! Equation (1): `Ct = Ca + Ce` — the top of the model.

use iriscast_units::{Bounds, CarbonMass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A completed assessment for one period: the active range, the embodied
/// range, and their combination.
///
/// Active and embodied ranges are *independent* (grid intensity does not
/// correlate with server lifespan), so the total is the interval sum —
/// lowest active + lowest embodied up to highest active + highest
/// embodied, exactly how §6 of the paper combines its ranges.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CarbonAssessment {
    /// Active carbon range for the period (`Ca`).
    pub active: Bounds<CarbonMass>,
    /// Embodied carbon range apportioned to the period (`Ce`).
    pub embodied: Bounds<CarbonMass>,
}

impl CarbonAssessment {
    /// Combines active and embodied ranges.
    pub fn new(active: Bounds<CarbonMass>, embodied: Bounds<CarbonMass>) -> Self {
        CarbonAssessment { active, embodied }
    }

    /// Equation (1) as an interval: `Ct = Ca + Ce`.
    pub fn total(&self) -> Bounds<CarbonMass> {
        Bounds::new(
            self.active.lo + self.embodied.lo,
            self.active.hi + self.embodied.hi,
        )
    }

    /// Embodied share of the total across the low and high scenarios,
    /// ordered as a range. The paper's §6 observation — "embodied carbon
    /// is generally a much smaller percentage of the overall impact" — is
    /// this range sitting well below 0.5.
    pub fn embodied_share(&self) -> Bounds<f64> {
        let at_low = self.embodied.lo / (self.active.lo + self.embodied.lo);
        let at_high = self.embodied.hi / (self.active.hi + self.embodied.hi);
        Bounds::new(at_low.min(at_high), at_low.max(at_high))
    }

    /// Worst-case embodied share across the cross-pairings (high embodied
    /// against *low* active): the scenario in which embodied matters most,
    /// relevant to the paper's decarbonising-grid discussion.
    pub fn max_embodied_share(&self) -> f64 {
        self.embodied.hi / (self.active.lo + self.embodied.hi)
    }
}

impl fmt::Display for CarbonAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "active {:.0}–{:.0} kg + embodied {:.0}–{:.0} kg = total {:.0}–{:.0} kgCO2e",
            self.active.lo.kilograms(),
            self.active.hi.kilograms(),
            self.embodied.lo.kilograms(),
            self.embodied.hi.kilograms(),
            t.lo.kilograms(),
            t.hi.kilograms(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn paper_assessment() -> CarbonAssessment {
        CarbonAssessment::new(
            paper::summary_active_bounds(),
            paper::summary_embodied_bounds(),
        )
    }

    #[test]
    fn paper_summary_totals() {
        let a = paper_assessment();
        let t = a.total();
        assert!((t.lo.kilograms() - 1_441.0).abs() < 1e-9);
        assert!((t.hi.kilograms() - 11_711.0).abs() < 1e-9);
    }

    #[test]
    fn embodied_is_the_smaller_component() {
        let a = paper_assessment();
        let share = a.embodied_share();
        assert!(share.lo < 0.5 && share.hi < 0.5);
        // Even the worst cross-pairing keeps embodied below parity…
        let worst = a.max_embodied_share();
        assert!(worst < 0.75, "worst-case embodied share {worst:.2}");
        // …but it is no longer negligible (the paper's "will come to
        // dominate" discussion).
        assert!(worst > 0.5);
    }

    #[test]
    fn display_is_informative() {
        let s = paper_assessment().to_string();
        assert!(s.contains("1066"), "{s}");
        assert!(s.contains("11711"), "{s}");
    }
}
