//! Net-zero pathway analysis: when does embodied carbon take over?
//!
//! The paper's §6 makes a forward-looking claim: grid decarbonisation will
//! shrink the active term, so "the embodied carbon will come to dominate
//! the climate impact of such systems". This module makes the claim
//! quantitative: project the grid's mean intensity along a decarbonisation
//! pathway, hold the DRI's energy and hardware churn constant, and find
//! the crossover year at which the embodied term exceeds the active term.

use crate::embodied::fleet_snapshot_daily;
use iriscast_units::{CarbonIntensity, CarbonMass, Energy, Pue};
use serde::{Deserialize, Serialize};

/// A grid decarbonisation trajectory: mean annual intensity declining
/// exponentially from `start` towards an `r#final` floor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecarbonisationPathway {
    /// First projected year (e.g. 2022).
    pub start_year: u32,
    /// Mean intensity in the first year.
    pub start: CarbonIntensity,
    /// Asymptotic floor (residual gas peaking, imports, biomass).
    pub floor: CarbonIntensity,
    /// Fractional decline per year of the above-floor component
    /// (GB 2010–2022 averaged ≈ 9%/year).
    pub annual_decline: f64,
}

impl DecarbonisationPathway {
    /// The GB trajectory consistent with the paper's figures: ~180 g/kWh
    /// in 2022 declining ~9%/year above a 20 g floor.
    pub fn gb_default() -> Self {
        DecarbonisationPathway {
            start_year: 2022,
            start: CarbonIntensity::from_grams_per_kwh(180.0),
            floor: CarbonIntensity::from_grams_per_kwh(20.0),
            annual_decline: 0.09,
        }
    }

    /// Mean intensity projected for `year`.
    ///
    /// # Panics
    /// If `year` precedes the pathway start.
    pub fn intensity_in(&self, year: u32) -> CarbonIntensity {
        assert!(
            year >= self.start_year,
            "year {year} precedes pathway start {}",
            self.start_year
        );
        let dt = f64::from(year - self.start_year);
        let above_floor = (self.start - self.floor).grams_per_kwh().max(0.0);
        let decayed = above_floor * (1.0 - self.annual_decline).powf(dt);
        self.floor + CarbonIntensity::from_grams_per_kwh(decayed)
    }
}

/// A steady-state DRI for pathway projection: constant daily energy and a
/// constant hardware-refresh treadmill.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateDri {
    /// IT energy per day.
    pub daily_it_energy: Energy,
    /// Facility overhead factor.
    pub pue: Pue,
    /// Embodied carbon per server.
    pub embodied_per_server: CarbonMass,
    /// Replacement cycle in years.
    pub lifespan_years: f64,
    /// Fleet size (servers, refreshed on the cycle).
    pub servers: u32,
}

impl SteadyStateDri {
    /// The IRIS estate under the paper's central parameters.
    pub fn iris_central() -> Self {
        SteadyStateDri {
            daily_it_energy: crate::paper::effective_energy(),
            pue: Pue::new(1.3).expect("valid"),
            embodied_per_server: CarbonMass::from_kilograms(750.0), // mid of 400–1100
            lifespan_years: 5.0,
            servers: crate::paper::AMORTISATION_FLEET_SERVERS,
        }
    }

    /// Daily active carbon at a given grid intensity.
    pub fn daily_active(&self, ci: CarbonIntensity) -> CarbonMass {
        self.pue.apply(self.daily_it_energy) * ci
    }

    /// Daily embodied charge (constant along the pathway: the treadmill
    /// keeps amortising).
    pub fn daily_embodied(&self) -> CarbonMass {
        fleet_snapshot_daily(self.embodied_per_server, self.lifespan_years, self.servers)
    }
}

/// One projected year.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathwayYear {
    /// Calendar year.
    pub year: u32,
    /// Projected mean grid intensity.
    pub intensity: CarbonIntensity,
    /// Daily active carbon.
    pub active: CarbonMass,
    /// Daily embodied carbon.
    pub embodied: CarbonMass,
    /// Embodied share of the daily total.
    pub embodied_share: f64,
}

/// Projects `dri` along `pathway` for `years` years.
pub fn project(
    dri: &SteadyStateDri,
    pathway: &DecarbonisationPathway,
    years: u32,
) -> Vec<PathwayYear> {
    let embodied = dri.daily_embodied();
    (pathway.start_year..pathway.start_year + years)
        .map(|year| {
            let intensity = pathway.intensity_in(year);
            let active = dri.daily_active(intensity);
            PathwayYear {
                year,
                intensity,
                active,
                embodied,
                embodied_share: embodied / (active + embodied),
            }
        })
        .collect()
}

/// The first projected year in which embodied carbon exceeds active
/// carbon, or `None` if it never does within the projection.
pub fn crossover_year(projection: &[PathwayYear]) -> Option<u32> {
    projection
        .iter()
        .find(|y| y.embodied > y.active)
        .map(|y| y.year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathway_declines_to_floor() {
        let p = DecarbonisationPathway::gb_default();
        let now = p.intensity_in(2022);
        assert_eq!(now, p.start);
        let later = p.intensity_in(2040);
        assert!(later < now);
        assert!(later >= p.floor);
        let far = p.intensity_in(2100);
        assert!((far.grams_per_kwh() - p.floor.grams_per_kwh()).abs() < 2.0);
        // Monotone decline.
        let series: Vec<f64> = (2022..2060)
            .map(|y| p.intensity_in(y).grams_per_kwh())
            .collect();
        assert!(series.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    #[should_panic(expected = "precedes pathway start")]
    fn past_years_rejected() {
        let _ = DecarbonisationPathway::gb_default().intensity_in(2020);
    }

    #[test]
    fn iris_crosses_over_within_two_decades() {
        // The paper's §6 prediction, quantified: under central IRIS
        // parameters and the GB pathway, embodied overtakes active within
        // a plausible horizon.
        let projection = project(
            &SteadyStateDri::iris_central(),
            &DecarbonisationPathway::gb_default(),
            40,
        );
        let year = crossover_year(&projection).expect("crossover must occur");
        assert!(
            (2025..=2045).contains(&year),
            "crossover {year} outside plausible window"
        );
        // Embodied share rises monotonically along the pathway.
        for w in projection.windows(2) {
            assert!(w[1].embodied_share >= w[0].embodied_share - 1e-12);
        }
        // Start: active dominates (the paper's 2022 conclusion).
        assert!(projection[0].embodied_share < 0.5);
        // End: embodied dominates.
        assert!(projection.last().unwrap().embodied_share > 0.5);
    }

    #[test]
    fn zero_carbon_grid_is_all_embodied() {
        let dri = SteadyStateDri::iris_central();
        let active = dri.daily_active(CarbonIntensity::ZERO);
        assert_eq!(active, CarbonMass::ZERO);
        let embodied = dri.daily_embodied();
        assert!(embodied.kilograms() > 0.0);
    }

    #[test]
    fn longer_lifespans_delay_crossover_never_prevent_it() {
        let pathway = DecarbonisationPathway::gb_default();
        let mut dri = SteadyStateDri::iris_central();
        let base = crossover_year(&project(&dri, &pathway, 60)).unwrap();
        dri.lifespan_years = 8.0;
        let extended = crossover_year(&project(&dri, &pathway, 60)).unwrap();
        assert!(extended >= base, "longer life should not hasten crossover");
    }

    #[test]
    fn no_crossover_on_a_static_grid() {
        let static_grid = DecarbonisationPathway {
            start_year: 2022,
            start: CarbonIntensity::from_grams_per_kwh(180.0),
            floor: CarbonIntensity::from_grams_per_kwh(180.0),
            annual_decline: 0.0,
        };
        let projection = project(&SteadyStateDri::iris_central(), &static_grid, 30);
        assert_eq!(crossover_year(&projection), None);
    }
}
