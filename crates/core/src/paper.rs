//! Published constants and table cells from the IRISCAST paper.
//!
//! Everything the paper reports numerically lives here, so validation
//! tests and the `repro` harness compare against a single source of truth.
//! Three findings from reverse-engineering the published arithmetic are
//! encoded explicitly (see DESIGN.md §3):
//!
//! 1. Table 3's "High" PUE column is computed with **1.6**, although the
//!    text says 1.5 (all nine cells match 1.6 to rounding; none match 1.5).
//! 2. The active-carbon base is **≈ 19,380 kWh**, not Table 2's 18,760
//!    (969 kg / 50 g·kWh⁻¹ = 19,380; similarly for the other two cells).
//! 3. Table 4's fleet is **2,398 servers** — the 2,462 monitored nodes
//!    minus Durham's 64 storage nodes.

use iriscast_telemetry::{EnergyByMethod, SiteEnergyReport};
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue, TriEstimate};

/// The paper's low/medium/high grid carbon-intensity references
/// (gCO₂/kWh), read off Figure 1.
pub fn ci_references() -> TriEstimate<CarbonIntensity> {
    TriEstimate::new(
        CarbonIntensity::from_grams_per_kwh(50.0),
        CarbonIntensity::from_grams_per_kwh(175.0),
        CarbonIntensity::from_grams_per_kwh(300.0),
    )
}

/// The PUE sweep as *stated in the text*: 1.1 / 1.3 / 1.5.
pub fn pue_stated() -> TriEstimate<Pue> {
    TriEstimate::new(
        Pue::new(1.1).expect("valid"),
        Pue::new(1.3).expect("valid"),
        Pue::new(1.5).expect("valid"),
    )
}

/// The PUE sweep *implied by Table 3's cells*: 1.1 / 1.3 / 1.6.
pub fn pue_table3() -> TriEstimate<Pue> {
    TriEstimate::new(
        Pue::new(1.1).expect("valid"),
        Pue::new(1.3).expect("valid"),
        Pue::new(1.6).expect("valid"),
    )
}

/// Table 2's total row: 18,760 kWh.
pub const TABLE2_TOTAL_KWH: f64 = 18_760.0;

/// The effective energy behind Table 3's active-carbon cells
/// (969 kg ÷ 0.050 kg/kWh): ≈ 19,380 kWh.
pub const EFFECTIVE_ENERGY_KWH: f64 = 19_380.0;

/// Table 2's effective energy as a typed quantity.
pub fn effective_energy() -> Energy {
    Energy::from_kilowatt_hours(EFFECTIVE_ENERGY_KWH)
}

/// The paper's per-server embodied-carbon bounds: 400 and 1,100 kgCO₂.
pub fn server_embodied_bounds() -> Bounds<CarbonMass> {
    Bounds::new(
        CarbonMass::from_kilograms(400.0),
        CarbonMass::from_kilograms(1_100.0),
    )
}

/// Hardware lifespans swept in Table 4, in years.
pub const LIFESPANS_YEARS: [u32; 5] = [3, 4, 5, 6, 7];

/// Server count behind Table 4's fleet-snapshot column.
pub const AMORTISATION_FLEET_SERVERS: u32 = 2_398;

/// Flight-equivalence factor used in the summary: 92 kgCO₂ per passenger
/// per flight hour.
pub const FLIGHT_KG_PER_PASSENGER_HOUR: f64 = 92.0;

/// §6's 24-hour flight benchmark: 2,208 kgCO₂.
pub const FLIGHT_24H_KG: f64 = 2_208.0;

/// Published Table 3: active carbon without facilities, per CI reference.
pub const TABLE3_ACTIVE_KG: [f64; 3] = [969.0, 3_391.0, 5_814.0];

/// Published Table 3: active carbon including facilities.
/// `TABLE3_WITH_FACILITIES_KG[ci][pue]`, CI rows Low/Med/High, PUE columns
/// Low/Med/High.
pub const TABLE3_WITH_FACILITIES_KG: [[f64; 3]; 3] = [
    [1_066.0, 1_260.0, 1_550.0],
    [3_731.0, 4_409.0, 5_426.0],
    [6_395.0, 7_558.0, 9_302.0],
];

/// Published Table 4 rows: `(lifespan_years, per-server-per-day kg at
/// 400 kg, per-server-per-day kg at 1,100 kg, fleet-snapshot kg at 400,
/// fleet-snapshot kg at 1,100)`.
pub const TABLE4_ROWS: [(u32, f64, f64, f64, f64); 5] = [
    (3, 0.36, 1.00, 876.0, 2_409.0),
    (4, 0.27, 0.75, 657.0, 1_806.0),
    (5, 0.22, 0.61, 526.0, 1_445.0),
    (6, 0.18, 0.50, 438.0, 1_204.0),
    (7, 0.16, 0.43, 375.0, 1_032.0),
];

/// §6's summary ranges: active 1,066–9,302 kg, embodied 375–2,409 kg.
pub fn summary_active_bounds() -> Bounds<CarbonMass> {
    Bounds::new(
        CarbonMass::from_kilograms(1_066.0),
        CarbonMass::from_kilograms(9_302.0),
    )
}

/// §6's embodied range.
pub fn summary_embodied_bounds() -> Bounds<CarbonMass> {
    Bounds::new(
        CarbonMass::from_kilograms(375.0),
        CarbonMass::from_kilograms(2_409.0),
    )
}

/// One calibration row of the published Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Site code as used by `iriscast_inventory::iris`.
    pub site: &'static str,
    /// Facility-meter kWh, when the site had one.
    pub facility_kwh: Option<f64>,
    /// PDU kWh.
    pub pdu_kwh: Option<f64>,
    /// IPMI kWh.
    pub ipmi_kwh: Option<f64>,
    /// Turbostat kWh.
    pub turbostat_kwh: Option<f64>,
    /// Monitored node count.
    pub nodes: u32,
}

/// The published Table 2, row by row.
pub const TABLE2_ROWS: [Table2Row; 6] = [
    Table2Row {
        site: "QMUL",
        facility_kwh: Some(1_299.0),
        pdu_kwh: Some(1_299.0),
        ipmi_kwh: Some(1_279.0),
        turbostat_kwh: Some(1_214.0),
        nodes: 118,
    },
    Table2Row {
        site: "CAM",
        facility_kwh: None,
        pdu_kwh: None,
        ipmi_kwh: Some(261.0),
        turbostat_kwh: None,
        nodes: 59,
    },
    Table2Row {
        site: "DUR",
        facility_kwh: Some(8_154.0),
        pdu_kwh: Some(8_154.0),
        ipmi_kwh: Some(6_267.0),
        turbostat_kwh: None,
        nodes: 876,
    },
    Table2Row {
        site: "STFC-CLOUD",
        facility_kwh: None,
        pdu_kwh: None,
        ipmi_kwh: Some(3_831.0),
        turbostat_kwh: None,
        nodes: 721,
    },
    Table2Row {
        site: "STFC-SCARF",
        facility_kwh: None,
        pdu_kwh: Some(4_271.0),
        ipmi_kwh: Some(3_292.0),
        turbostat_kwh: None,
        nodes: 571,
    },
    Table2Row {
        site: "IMP",
        facility_kwh: None,
        pdu_kwh: None,
        ipmi_kwh: Some(944.0),
        turbostat_kwh: None,
        nodes: 117,
    },
];

/// The published Table 2 as telemetry report rows (for quality analysis
/// and rendering alongside simulated rows).
pub fn table2_reports() -> Vec<SiteEnergyReport> {
    TABLE2_ROWS
        .iter()
        .map(|r| SiteEnergyReport {
            site: r.site.to_string(),
            energies: EnergyByMethod {
                facility: r.facility_kwh.map(Energy::from_kilowatt_hours),
                pdu: r.pdu_kwh.map(Energy::from_kilowatt_hours),
                ipmi: r.ipmi_kwh.map(Energy::from_kilowatt_hours),
                turbostat: r.turbostat_kwh.map(Energy::from_kilowatt_hours),
            },
            nodes: r.nodes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_telemetry::aggregate::total_best_estimate;

    #[test]
    fn table2_rows_sum_to_published_total() {
        let rows = table2_reports();
        let total = total_best_estimate(&rows);
        assert!((total.kilowatt_hours() - TABLE2_TOTAL_KWH).abs() < 1e-9);
        let nodes: u32 = rows.iter().map(|r| r.nodes).sum();
        assert_eq!(nodes, 2_462);
    }

    #[test]
    fn effective_energy_reproduces_active_cells() {
        let e = effective_energy();
        for (ci, expect) in ci_references().into_values().zip(TABLE3_ACTIVE_KG) {
            let kg = (e * ci).kilograms();
            assert!(
                (kg - expect).abs() < 1.0,
                "CI {ci}: {kg:.1} vs published {expect}"
            );
        }
    }

    #[test]
    fn table3_cells_use_pue_1_6_not_1_5() {
        // Every High-PUE cell matches 1.6; none matches the stated 1.5.
        for (i, &base) in TABLE3_ACTIVE_KG.iter().enumerate() {
            let with_16 = base * 1.6;
            let with_15 = base * 1.5;
            let published = TABLE3_WITH_FACILITIES_KG[i][2];
            assert!(
                (with_16 - published).abs() < 1.0,
                "row {i}: 1.6 gives {with_16:.0}, published {published}"
            );
            assert!(
                (with_15 - published).abs() > 50.0,
                "row {i}: 1.5 would give {with_15:.0} — too close to published"
            );
        }
    }

    #[test]
    fn full_table3_consistent() {
        let pues = pue_table3();
        for (i, &base) in TABLE3_ACTIVE_KG.iter().enumerate() {
            for (j, pue) in pues.iter().enumerate() {
                let computed = base * pue.value();
                let published = TABLE3_WITH_FACILITIES_KG[i][j];
                assert!(
                    (computed - published).abs() < 1.5,
                    "cell [{i}][{j}]: {computed:.1} vs {published}"
                );
            }
        }
    }

    #[test]
    fn table4_implies_2398_servers() {
        for (years, per_day_400, per_day_1100, fleet_400, fleet_1100) in TABLE4_ROWS {
            let days = f64::from(years) * 365.0;
            // Per-server-per-day cells (published at 2 dp).
            assert!((400.0 / days - per_day_400).abs() < 0.01, "{years}y/400");
            assert!(
                (1_100.0 / days - per_day_1100).abs() < 0.01,
                "{years}y/1100"
            );
            // Fleet cells: 2,398 servers × per-day, published truncated or
            // rounded to integer kg.
            let servers = f64::from(AMORTISATION_FLEET_SERVERS);
            assert!(
                (400.0 / days * servers - fleet_400).abs() < 1.0,
                "{years}y fleet/400: {} vs {fleet_400}",
                400.0 / days * servers
            );
            assert!(
                (1_100.0 / days * servers - fleet_1100).abs() < 1.0,
                "{years}y fleet/1100: {} vs {fleet_1100}",
                1_100.0 / days * servers
            );
        }
    }

    #[test]
    fn flight_benchmark() {
        assert_eq!(FLIGHT_KG_PER_PASSENGER_HOUR * 24.0, FLIGHT_24H_KG);
    }

    #[test]
    fn summary_bounds_are_table_extremes() {
        assert_eq!(
            summary_active_bounds().lo.kilograms(),
            TABLE3_WITH_FACILITIES_KG[0][0]
        );
        assert_eq!(
            summary_active_bounds().hi.kilograms(),
            TABLE3_WITH_FACILITIES_KG[2][2]
        );
        assert_eq!(summary_embodied_bounds().lo.kilograms(), 375.0);
        assert_eq!(summary_embodied_bounds().hi.kilograms(), 2_409.0);
    }
}
