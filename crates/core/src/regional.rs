//! Regional refinement of the active-carbon estimate.
//!
//! The paper charges every site at the *national* carbon intensity. But
//! the IRIS sites sit in four different GB distribution regions whose
//! intensities differ persistently (wind-rich North East vs gas-heavy
//! London). Charging each site at its regional intensity is a
//! straightforward refinement the published data supports — and it shifts
//! the federation total measurably: Durham's 43% of the energy sits in
//! the cleanest region, but the southern and London sites (~55%) sit in
//! dirtier-than-national ones, so the regional view lands a few percent
//! *above* the national estimate.

use iriscast_grid::{GbRegion, IntensitySeries};
use iriscast_telemetry::SiteEnergyReport;
use iriscast_units::{CarbonMass, Energy};
use serde::{Deserialize, Serialize};

/// One site charged both ways.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteRegionalRow {
    /// Site code.
    pub site: String,
    /// Hosting region.
    pub region: GbRegion,
    /// Site energy (best estimate).
    pub energy: Energy,
    /// Carbon at the national mean intensity.
    pub national_carbon: CarbonMass,
    /// Carbon at the regional mean intensity.
    pub regional_carbon: CarbonMass,
}

/// The federation-level comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionalAssessment {
    /// Per-site rows in input order.
    pub rows: Vec<SiteRegionalRow>,
    /// Total at national intensity (the paper's method).
    pub national_total: CarbonMass,
    /// Total at per-site regional intensities.
    pub regional_total: CarbonMass,
}

impl RegionalAssessment {
    /// Relative change from the national to the regional method
    /// (negative = the regional view is cleaner).
    pub fn relative_shift(&self) -> f64 {
        self.regional_total / self.national_total - 1.0
    }
}

/// Charges every site's best-estimate energy at national vs regional mean
/// intensity over the same window. Sites without any energy figure are
/// skipped.
pub fn assess_regional(
    rows: &[SiteEnergyReport],
    national: &IntensitySeries,
) -> RegionalAssessment {
    let national_mean = national.mean();
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut national_total = CarbonMass::ZERO;
    let mut regional_total = CarbonMass::ZERO;
    for row in rows {
        let Some(energy) = row.energies.best_estimate() else {
            continue;
        };
        let region = GbRegion::for_iris_site(&row.site);
        let national_carbon = energy * national_mean;
        let regional_carbon = energy * region.localise(national_mean);
        national_total += national_carbon;
        regional_total += regional_carbon;
        out_rows.push(SiteRegionalRow {
            site: row.site.clone(),
            region,
            energy,
            national_carbon,
            regional_carbon,
        });
    }
    RegionalAssessment {
        rows: out_rows,
        national_total,
        regional_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use iriscast_grid::scenario::uk_november_2022;

    fn assessment() -> RegionalAssessment {
        let grid = uk_november_2022(3).simulate();
        assess_regional(&paper::table2_reports(), grid.intensity())
    }

    #[test]
    fn every_site_charged() {
        let a = assessment();
        assert_eq!(a.rows.len(), 6);
        for row in &a.rows {
            assert!(row.energy.kilowatt_hours() > 0.0);
            assert!(row.national_carbon.kilograms() > 0.0);
        }
    }

    #[test]
    fn london_sites_cost_more_durham_less() {
        let a = assessment();
        let by = |code: &str| a.rows.iter().find(|r| r.site == code).unwrap();
        let qmul = by("QMUL");
        assert!(qmul.regional_carbon > qmul.national_carbon);
        let dur = by("DUR");
        assert!(dur.regional_carbon < dur.national_carbon);
    }

    #[test]
    fn southern_sites_outweigh_durham() {
        // DUR's 43% of the energy sits in the cleanest region, but the
        // South England and London sites carry ~55% at above-national
        // intensity: the net regional shift is a few percent upward.
        let a = assessment();
        assert!(
            a.regional_total > a.national_total,
            "regional {} vs national {}",
            a.regional_total,
            a.national_total
        );
        let shift = a.relative_shift();
        assert!(
            (0.0..0.15).contains(&shift),
            "shift {shift:.3} outside the plausible band"
        );
        // Counterfactual: without the two southern STFC sites, Durham
        // dominates and the regional view *is* cleaner.
        let reduced: Vec<_> = paper::table2_reports()
            .into_iter()
            .filter(|r| !r.site.starts_with("STFC"))
            .collect();
        let grid = uk_november_2022(3).simulate();
        let b = assess_regional(&reduced, grid.intensity());
        assert!(b.regional_total < b.national_total);
    }

    #[test]
    fn totals_are_row_sums() {
        let a = assessment();
        let nat: CarbonMass = a.rows.iter().map(|r| r.national_carbon).sum();
        let reg: CarbonMass = a.rows.iter().map(|r| r.regional_carbon).sum();
        assert!((nat.grams() - a.national_total.grams()).abs() < 1e-6);
        assert!((reg.grams() - a.regional_total.grams()).abs() < 1e-6);
    }

    #[test]
    fn sites_without_energy_are_skipped() {
        let mut rows = paper::table2_reports();
        rows.push(SiteEnergyReport {
            site: "EMPTY".into(),
            energies: Default::default(),
            nodes: 0,
        });
        let grid = uk_november_2022(3).simulate();
        let a = assess_regional(&rows, grid.intensity());
        assert_eq!(a.rows.len(), 6);
    }
}
