//! Plain-text table rendering for reports and the repro harness.

use iriscast_units::format_grouped;

/// Column alignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder: headers, rows, per-column alignment,
/// automatic width. Renders in a style close to the paper's tables.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Starts a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`TextTable::aligns`]).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a caption printed above the table.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    /// If the alignment count differs from the column count.
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the cell count differs from the column count.
    pub fn row<S: Into<String>>(mut self, cells: Vec<S>) -> Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{:<w$}", cells[i])),
                    Align::Right => line.push_str(&format!("{:>w$}", cells[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("**{t}**\n\n"));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a kWh/kg number the way the paper's tables do: grouped
/// thousands, no decimals.
pub fn paper_num(v: f64) -> String {
    format_grouped(v, 0)
}

/// Formats an optional value, blank-as-dash (the paper's empty cells).
pub fn paper_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => paper_num(x),
        None => "-".to_string(),
    }
}

/// A one-line ASCII bar for sparkline-style figures (Figure 1 rendering):
/// `value` scaled within `[lo, hi]` to a bar of `width` characters.
pub fn ascii_bar(value: f64, lo: f64, hi: f64, width: usize) -> String {
    if hi <= lo || width == 0 {
        return String::new();
    }
    let frac = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { ' ' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = TextTable::new(vec!["Site", "kWh"])
            .row(vec!["QMUL", "1,299"])
            .row(vec!["DUR", "8,154"])
            .render();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Site    kWh");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "QMUL  1,299");
        assert_eq!(lines[3], "DUR   8,154");
    }

    #[test]
    fn title_and_markdown() {
        let t = TextTable::new(vec!["A", "B"])
            .title("Table X")
            .row(vec!["x", "1"]);
        assert!(t.render().starts_with("Table X\n"));
        let md = t.render_markdown();
        assert!(md.contains("**Table X**"));
        assert!(md.contains("| A | B |"));
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("| x | 1 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let _ = TextTable::new(vec!["A", "B"]).row(vec!["only-one"]);
    }

    #[test]
    fn paper_formats() {
        assert_eq!(paper_num(18_760.4), "18,760");
        assert_eq!(paper_opt(None), "-");
        assert_eq!(paper_opt(Some(944.0)), "944");
    }

    #[test]
    fn bars() {
        assert_eq!(ascii_bar(50.0, 0.0, 100.0, 10), "#####     ");
        assert_eq!(ascii_bar(0.0, 0.0, 100.0, 4), "    ");
        assert_eq!(ascii_bar(100.0, 0.0, 100.0, 4), "####");
        assert_eq!(ascii_bar(200.0, 0.0, 100.0, 4), "####"); // clamped
        assert_eq!(ascii_bar(1.0, 1.0, 1.0, 4), ""); // degenerate range
    }

    #[test]
    fn custom_alignment() {
        let t = TextTable::new(vec!["L", "R"])
            .aligns(vec![Align::Right, Align::Left])
            .row(vec!["a", "b"])
            .render();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[2], "a  b");
    }
}
