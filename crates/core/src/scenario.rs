//! Scenario sweeps: the machinery behind Tables 3 and 4.

use crate::embodied::{fleet_snapshot_daily, per_server_daily};
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue, TriEstimate};
use serde::{Deserialize, Serialize};

/// Table 3: active carbon across the CI × PUE grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActiveCarbonGrid {
    /// The IT energy the grid was computed from.
    pub it_energy: Energy,
    /// CI references used (rows).
    pub ci: TriEstimate<CarbonIntensity>,
    /// PUE sweep used (columns).
    pub pue: TriEstimate<Pue>,
    /// Row 1 of Table 3: active carbon without facilities, per CI.
    pub base: TriEstimate<CarbonMass>,
    /// `cells[ci][pue]`: active carbon including facilities.
    pub cells: [[CarbonMass; 3]; 3],
}

impl ActiveCarbonGrid {
    /// Sweeps `it_energy` across the CI and PUE scenarios.
    pub fn compute(
        it_energy: Energy,
        ci: TriEstimate<CarbonIntensity>,
        pue: TriEstimate<Pue>,
    ) -> Self {
        let base = ci.map(|c| it_energy * c);
        let ci_list = [ci.low, ci.mid, ci.high];
        let pue_list = [pue.low, pue.mid, pue.high];
        let mut cells = [[CarbonMass::ZERO; 3]; 3];
        for (i, c) in ci_list.iter().enumerate() {
            for (j, p) in pue_list.iter().enumerate() {
                cells[i][j] = p.apply(it_energy) * *c;
            }
        }
        ActiveCarbonGrid {
            it_energy,
            ci,
            pue,
            base,
            cells,
        }
    }

    /// The corner-to-corner envelope (Table 3's 1,066–9,302 kg range).
    pub fn envelope(&self) -> Bounds<CarbonMass> {
        Bounds::new(self.cells[0][0], self.cells[2][2])
    }

    /// The central (medium/medium) scenario.
    pub fn central(&self) -> CarbonMass {
        self.cells[1][1]
    }
}

/// One row of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedSweepRow {
    /// Hardware lifespan in years.
    pub lifespan_years: u32,
    /// Per-server daily charge at the low/high embodied bounds.
    pub per_server_daily: Bounds<CarbonMass>,
    /// Whole-fleet 24-hour charge at the low/high embodied bounds.
    pub fleet_snapshot: Bounds<CarbonMass>,
}

/// Table 4: embodied amortisation across lifespans and embodied bounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedSweep {
    /// Per-server embodied bounds used.
    pub embodied: Bounds<CarbonMass>,
    /// Fleet size amortised.
    pub servers: u32,
    /// One row per lifespan.
    pub rows: Vec<EmbodiedSweepRow>,
}

impl EmbodiedSweep {
    /// Sweeps lifespans for a per-server embodied range and fleet size.
    pub fn compute(embodied: Bounds<CarbonMass>, lifespans_years: &[u32], servers: u32) -> Self {
        let rows = lifespans_years
            .iter()
            .map(|&years| {
                let y = f64::from(years);
                EmbodiedSweepRow {
                    lifespan_years: years,
                    per_server_daily: embodied.map(|e| per_server_daily(e, y)),
                    fleet_snapshot: embodied.map(|e| fleet_snapshot_daily(e, y, servers)),
                }
            })
            .collect();
        EmbodiedSweep {
            embodied,
            servers,
            rows,
        }
    }

    /// The full envelope across every cell (Table 4's 375–2,409 kg range:
    /// longest life at the low bound to shortest life at the high bound).
    pub fn envelope(&self) -> Bounds<CarbonMass> {
        let lo = self
            .rows
            .iter()
            .map(|r| r.fleet_snapshot.lo)
            .min_by(|a, b| a.total_cmp(b))
            .expect("sweep has rows");
        let hi = self
            .rows
            .iter()
            .map(|r| r.fleet_snapshot.hi)
            .max_by(|a, b| a.total_cmp(b))
            .expect("sweep has rows");
        Bounds::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn table3_reproduced_exactly() {
        let grid = ActiveCarbonGrid::compute(
            paper::effective_energy(),
            paper::ci_references(),
            paper::pue_table3(),
        );
        for (i, base) in grid.base.iter().enumerate() {
            assert!(
                (base.kilograms() - paper::TABLE3_ACTIVE_KG[i]).abs() < 1.0,
                "base[{i}]"
            );
        }
        for i in 0..3 {
            for j in 0..3 {
                let got = grid.cells[i][j].kilograms();
                let want = paper::TABLE3_WITH_FACILITIES_KG[i][j];
                assert!((got - want).abs() < 1.5, "cell [{i}][{j}]: {got} vs {want}");
            }
        }
        let env = grid.envelope();
        assert!((env.lo.kilograms() - 1_066.0).abs() < 1.0);
        assert!((env.hi.kilograms() - 9_302.0).abs() < 1.0);
        assert!((grid.central().kilograms() - 4_409.0).abs() < 1.0);
    }

    #[test]
    fn table4_reproduced_exactly() {
        let sweep = EmbodiedSweep::compute(
            paper::server_embodied_bounds(),
            &paper::LIFESPANS_YEARS,
            paper::AMORTISATION_FLEET_SERVERS,
        );
        assert_eq!(sweep.rows.len(), 5);
        for (row, (years, d400, d1100, f400, f1100)) in sweep.rows.iter().zip(paper::TABLE4_ROWS) {
            assert_eq!(row.lifespan_years, years);
            assert!((row.per_server_daily.lo.kilograms() - d400).abs() < 0.01);
            assert!((row.per_server_daily.hi.kilograms() - d1100).abs() < 0.01);
            assert!((row.fleet_snapshot.lo.kilograms() - f400).abs() < 1.0);
            assert!((row.fleet_snapshot.hi.kilograms() - f1100).abs() < 1.0);
        }
        let env = sweep.envelope();
        assert!((env.lo.kilograms() - 375.0).abs() < 1.0);
        assert!((env.hi.kilograms() - 2_409.0).abs() < 1.0);
    }

    #[test]
    fn grid_monotone_in_both_axes() {
        let grid = ActiveCarbonGrid::compute(
            Energy::from_kilowatt_hours(1_000.0),
            paper::ci_references(),
            paper::pue_table3(),
        );
        for i in 0..3 {
            for j in 0..2 {
                assert!(grid.cells[i][j] < grid.cells[i][j + 1]);
            }
        }
        for j in 0..3 {
            for i in 0..2 {
                assert!(grid.cells[i][j] < grid.cells[i + 1][j]);
            }
        }
    }

    #[test]
    fn sweep_monotone_in_lifespan() {
        let sweep = EmbodiedSweep::compute(
            paper::server_embodied_bounds(),
            &paper::LIFESPANS_YEARS,
            100,
        );
        for w in sweep.rows.windows(2) {
            assert!(w[0].fleet_snapshot.lo > w[1].fleet_snapshot.lo);
            assert!(w[0].per_server_daily.hi > w[1].per_server_daily.hi);
        }
    }
}
