//! Scenario sweeps: the machinery behind Tables 3 and 4.
//!
//! Since the scenario-space redesign these types are **compatibility
//! adapters** over [`crate::engine`]: each `compute` builds the
//! equivalent (tiny) [`crate::space::ScenarioSpace`] — Table 3 is a
//! CI × PUE space with embodied pinned to zero, Table 4 an
//! embodied × lifespan space with the grid pinned — evaluates it through
//! the engine, and reshapes the columns into the published table layout.
//! Cell values are bit-identical to the pre-engine implementation (the
//! golden-snapshot suite pins them), and the serialised form is
//! unchanged. New code wanting more than three scenarios per axis should
//! use [`crate::engine::Assessment::builder`] directly.

use crate::embodied::per_server_daily;
use crate::engine::Assessment;
use crate::error::{Error, Result};
use crate::space::ScenarioAxis;
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue, TriEstimate};
use serde::{Deserialize, Serialize};

/// Table 3: active carbon across the CI × PUE grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActiveCarbonGrid {
    /// The IT energy the grid was computed from.
    pub it_energy: Energy,
    /// CI references used (rows).
    pub ci: TriEstimate<CarbonIntensity>,
    /// PUE sweep used (columns).
    pub pue: TriEstimate<Pue>,
    /// Row 1 of Table 3: active carbon without facilities, per CI.
    pub base: TriEstimate<CarbonMass>,
    /// `cells[ci][pue]`: active carbon including facilities.
    pub cells: [[CarbonMass; 3]; 3],
}

impl ActiveCarbonGrid {
    /// Sweeps `it_energy` across the CI and PUE scenarios.
    ///
    /// Adapter: evaluates a 3 × 3 × 1 × 1 scenario space (embodied pinned
    /// to zero) and reads back the engine's active column.
    pub fn compute(
        it_energy: Energy,
        ci: TriEstimate<CarbonIntensity>,
        pue: TriEstimate<Pue>,
    ) -> Self {
        let base = ci.map(|c| it_energy * c);
        let results = Assessment::builder()
            .energy(it_energy)
            .ci_tri(ci)
            .pue_tri(pue)
            .embodied_axis(ScenarioAxis::singleton("embodied", CarbonMass::ZERO))
            .lifespan_axis(ScenarioAxis::singleton("lifespan", 1.0))
            .servers(0)
            .build()
            .expect("three-sample tri axes are always a valid space")
            .evaluate_space();
        let active = results.active();
        let mut cells = [[CarbonMass::ZERO; 3]; 3];
        for (i, row) in cells.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                // Point order: CI outermost, PUE next (embodied and
                // lifespan are singletons).
                *cell = active[i * 3 + j];
            }
        }
        ActiveCarbonGrid {
            it_energy,
            ci,
            pue,
            base,
            cells,
        }
    }

    /// The corner-to-corner envelope (Table 3's 1,066–9,302 kg range).
    pub fn envelope(&self) -> Bounds<CarbonMass> {
        Bounds::new(self.cells[0][0], self.cells[2][2])
    }

    /// The central (medium/medium) scenario.
    pub fn central(&self) -> CarbonMass {
        self.cells[1][1]
    }
}

/// One row of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedSweepRow {
    /// Hardware lifespan in years.
    pub lifespan_years: u32,
    /// Per-server daily charge at the low/high embodied bounds.
    pub per_server_daily: Bounds<CarbonMass>,
    /// Whole-fleet 24-hour charge at the low/high embodied bounds.
    pub fleet_snapshot: Bounds<CarbonMass>,
}

/// Table 4: embodied amortisation across lifespans and embodied bounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedSweep {
    /// Per-server embodied bounds used.
    pub embodied: Bounds<CarbonMass>,
    /// Fleet size amortised.
    pub servers: u32,
    /// One row per lifespan.
    pub rows: Vec<EmbodiedSweepRow>,
}

impl EmbodiedSweep {
    /// Sweeps lifespans for a per-server embodied range and fleet size,
    /// rejecting an empty or invalid lifespan list with a typed error.
    ///
    /// Adapter: evaluates a 1 × 1 × 2 × *n* scenario space (grid pinned:
    /// zero intensity, ideal PUE) and reads back the engine's embodied
    /// column.
    pub fn try_compute(
        embodied: Bounds<CarbonMass>,
        lifespans_years: &[u32],
        servers: u32,
    ) -> Result<Self> {
        let lifespan_axis = ScenarioAxis::new(
            "lifespan",
            lifespans_years.iter().map(|&y| f64::from(y)).collect(),
        )?;
        let n = lifespans_years.len();
        let results = Assessment::builder()
            .energy(Energy::ZERO)
            .ci_axis(ScenarioAxis::singleton("ci", CarbonIntensity::ZERO))
            .pue_axis(ScenarioAxis::singleton("pue", Pue::IDEAL))
            .embodied_axis(ScenarioAxis::new("embodied per server", embodied.to_vec())?)
            .lifespan_axis(lifespan_axis)
            .servers(servers)
            .build()?
            .evaluate_space();
        let fleet = results.embodied();
        let rows = lifespans_years
            .iter()
            .enumerate()
            .map(|(k, &years)| {
                let y = f64::from(years);
                EmbodiedSweepRow {
                    lifespan_years: years,
                    per_server_daily: embodied.map(|e| per_server_daily(e, y)),
                    // Point order: embodied outermost of the two swept
                    // axes, lifespan innermost — lo sits at k, hi at n+k.
                    fleet_snapshot: Bounds::new(fleet[k], fleet[n + k]),
                }
            })
            .collect();
        Ok(EmbodiedSweep {
            embodied,
            servers,
            rows,
        })
    }

    /// Sweeps lifespans for a per-server embodied range and fleet size.
    ///
    /// An empty `lifespans_years` yields an empty sweep (use
    /// [`EmbodiedSweep::try_compute`] to get [`Error::EmptyAxis`]
    /// instead); envelope queries on an empty sweep report that same
    /// typed error through [`EmbodiedSweep::try_envelope`].
    pub fn compute(embodied: Bounds<CarbonMass>, lifespans_years: &[u32], servers: u32) -> Self {
        if lifespans_years.is_empty() {
            return EmbodiedSweep {
                embodied,
                servers,
                rows: Vec::new(),
            };
        }
        Self::try_compute(embodied, lifespans_years, servers)
            .expect("non-empty lifespan list with positive years is a valid sweep")
    }

    /// The full envelope across every cell (Table 4's 375–2,409 kg range:
    /// longest life at the low bound to shortest life at the high bound),
    /// or [`Error::EmptyAxis`] when the sweep has no rows.
    pub fn try_envelope(&self) -> Result<Bounds<CarbonMass>> {
        let empty = || Error::EmptyAxis {
            axis: "lifespan".into(),
        };
        let lo = self
            .rows
            .iter()
            .map(|r| r.fleet_snapshot.lo)
            .min_by(|a, b| a.total_cmp(b))
            .ok_or_else(empty)?;
        let hi = self
            .rows
            .iter()
            .map(|r| r.fleet_snapshot.hi)
            .max_by(|a, b| a.total_cmp(b))
            .ok_or_else(empty)?;
        Ok(Bounds::new(lo, hi))
    }

    /// Infallible form of [`EmbodiedSweep::try_envelope`] for sweeps known
    /// to have rows.
    ///
    /// # Panics
    /// On an empty sweep, with the [`Error::EmptyAxis`] message — reach
    /// for [`EmbodiedSweep::try_envelope`] when the lifespan list is not
    /// statically known to be non-empty.
    pub fn envelope(&self) -> Bounds<CarbonMass> {
        match self.try_envelope() {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn table3_reproduced_exactly() {
        let grid = ActiveCarbonGrid::compute(
            paper::effective_energy(),
            paper::ci_references(),
            paper::pue_table3(),
        );
        for (i, base) in grid.base.iter().enumerate() {
            assert!(
                (base.kilograms() - paper::TABLE3_ACTIVE_KG[i]).abs() < 1.0,
                "base[{i}]"
            );
        }
        for i in 0..3 {
            for j in 0..3 {
                let got = grid.cells[i][j].kilograms();
                let want = paper::TABLE3_WITH_FACILITIES_KG[i][j];
                assert!((got - want).abs() < 1.5, "cell [{i}][{j}]: {got} vs {want}");
            }
        }
        let env = grid.envelope();
        assert!((env.lo.kilograms() - 1_066.0).abs() < 1.0);
        assert!((env.hi.kilograms() - 9_302.0).abs() < 1.0);
        assert!((grid.central().kilograms() - 4_409.0).abs() < 1.0);
    }

    #[test]
    fn table4_reproduced_exactly() {
        let sweep = EmbodiedSweep::compute(
            paper::server_embodied_bounds(),
            &paper::LIFESPANS_YEARS,
            paper::AMORTISATION_FLEET_SERVERS,
        );
        assert_eq!(sweep.rows.len(), 5);
        for (row, (years, d400, d1100, f400, f1100)) in sweep.rows.iter().zip(paper::TABLE4_ROWS) {
            assert_eq!(row.lifespan_years, years);
            assert!((row.per_server_daily.lo.kilograms() - d400).abs() < 0.01);
            assert!((row.per_server_daily.hi.kilograms() - d1100).abs() < 0.01);
            assert!((row.fleet_snapshot.lo.kilograms() - f400).abs() < 1.0);
            assert!((row.fleet_snapshot.hi.kilograms() - f1100).abs() < 1.0);
        }
        let env = sweep.envelope();
        assert!((env.lo.kilograms() - 375.0).abs() < 1.0);
        assert!((env.hi.kilograms() - 2_409.0).abs() < 1.0);
    }

    #[test]
    fn grid_monotone_in_both_axes() {
        let grid = ActiveCarbonGrid::compute(
            Energy::from_kilowatt_hours(1_000.0),
            paper::ci_references(),
            paper::pue_table3(),
        );
        for i in 0..3 {
            for j in 0..2 {
                assert!(grid.cells[i][j] < grid.cells[i][j + 1]);
            }
        }
        for j in 0..3 {
            for i in 0..2 {
                assert!(grid.cells[i][j] < grid.cells[i + 1][j]);
            }
        }
    }

    #[test]
    fn sweep_monotone_in_lifespan() {
        let sweep = EmbodiedSweep::compute(
            paper::server_embodied_bounds(),
            &paper::LIFESPANS_YEARS,
            100,
        );
        for w in sweep.rows.windows(2) {
            assert!(w[0].fleet_snapshot.lo > w[1].fleet_snapshot.lo);
            assert!(w[0].per_server_daily.hi > w[1].per_server_daily.hi);
        }
    }

    #[test]
    fn empty_sweep_reports_typed_error() {
        let sweep = EmbodiedSweep::compute(paper::server_embodied_bounds(), &[], 100);
        assert!(sweep.rows.is_empty());
        let err = sweep.try_envelope().unwrap_err();
        assert_eq!(
            err,
            Error::EmptyAxis {
                axis: "lifespan".into()
            }
        );
        assert_eq!(
            EmbodiedSweep::try_compute(paper::server_embodied_bounds(), &[], 100).unwrap_err(),
            Error::EmptyAxis {
                axis: "lifespan".into()
            }
        );
    }

    #[test]
    #[should_panic(expected = "scenario axis \"lifespan\" has no samples")]
    fn empty_sweep_envelope_panics_with_typed_message() {
        let sweep = EmbodiedSweep::compute(paper::server_embodied_bounds(), &[], 100);
        let _ = sweep.envelope();
    }
}
