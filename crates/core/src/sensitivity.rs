//! One-at-a-time sensitivity (tornado) analysis of the carbon model.
//!
//! The paper sweeps parameters jointly (all-low vs all-high). Sweeping
//! them one at a time around the central scenario shows *which* input
//! buys the most accuracy — the quantitative version of the paper's
//! closing "all these inputs are required" discussion. With the 2022
//! parameterisation, carbon intensity dominates everything else, which is
//! exactly why the paper prioritises measured energy and mentions cooling
//! estimates second.

use crate::engine::evaluate_one;
use crate::error::Result;
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Energy, Pue};
use serde::{Deserialize, Serialize};

/// The model's inputs, each with central value and plausible bounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensitivityInputs {
    /// IT energy for the window (kWh): measurement spread.
    pub it_energy_kwh: (f64, f64, f64),
    /// Grid carbon intensity (g/kWh).
    pub ci_g_per_kwh: (f64, f64, f64),
    /// PUE.
    pub pue: (f64, f64, f64),
    /// Embodied carbon per server (kg).
    pub embodied_kg: (f64, f64, f64),
    /// Hardware lifespan (years). NOTE: total carbon *decreases* in
    /// lifespan, so the low total sits at the high lifespan.
    pub lifespan_years: (f64, f64, f64),
    /// Fleet size.
    pub servers: u32,
}

impl SensitivityInputs {
    /// The paper's parameter space around its central scenario.
    pub fn paper() -> Self {
        SensitivityInputs {
            // Table 2 total … implied effective energy … adjusted total.
            it_energy_kwh: (18_760.0, 19_380.0, 20_100.0),
            ci_g_per_kwh: (50.0, 175.0, 300.0),
            pue: (1.1, 1.3, 1.6),
            embodied_kg: (400.0, 750.0, 1_100.0),
            lifespan_years: (3.0, 5.0, 7.0),
            servers: crate::paper::AMORTISATION_FLEET_SERVERS,
        }
    }

    /// One scenario through the engine kernel: the one-at-a-time analysis
    /// evaluates the same `total = active + embodied` every other path
    /// does. Invalid PUEs surface as [`crate::error::Error::Units`].
    fn total(
        &self,
        kwh: f64,
        ci: f64,
        pue: f64,
        embodied: f64,
        lifespan: f64,
    ) -> Result<CarbonMass> {
        Ok(evaluate_one(
            Energy::from_kilowatt_hours(kwh),
            self.servers,
            1.0,
            CarbonIntensity::from_grams_per_kwh(ci),
            Pue::new(pue)?,
            CarbonMass::from_kilograms(embodied),
            lifespan,
        )
        .total())
    }

    /// Total carbon with every input at its central value.
    ///
    /// # Panics
    /// If the central PUE is invalid; use [`SensitivityInputs::try_central_total`]
    /// for a fallible form.
    pub fn central_total(&self) -> CarbonMass {
        match self.try_central_total() {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total carbon with every input at its central value, with invalid
    /// inputs reported as typed errors.
    pub fn try_central_total(&self) -> Result<CarbonMass> {
        self.total(
            self.it_energy_kwh.1,
            self.ci_g_per_kwh.1,
            self.pue.1,
            self.embodied_kg.1,
            self.lifespan_years.1,
        )
    }
}

/// One bar of the tornado: the total-carbon range produced by sweeping a
/// single input across its bounds with everything else central.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TornadoBar {
    /// Input name.
    pub input: String,
    /// Total carbon at the input's bounds (ordered low ≤ high).
    pub range: Bounds<CarbonMass>,
    /// Width of the bar (range span).
    pub span: CarbonMass,
}

/// Runs the one-at-a-time analysis; bars are returned widest first.
/// Invalid inputs (a PUE below 1.0) surface as typed errors instead of
/// panics.
pub fn try_tornado(inputs: &SensitivityInputs) -> Result<Vec<TornadoBar>> {
    let i = inputs;
    let mk = |name: &'static str, lo: CarbonMass, hi: CarbonMass| {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        TornadoBar {
            input: name.to_owned(),
            range: Bounds::new(lo, hi),
            span: hi - lo,
        }
    };
    let c = (
        i.it_energy_kwh.1,
        i.ci_g_per_kwh.1,
        i.pue.1,
        i.embodied_kg.1,
        i.lifespan_years.1,
    );
    let mut bars = vec![
        mk(
            "carbon intensity",
            i.total(c.0, i.ci_g_per_kwh.0, c.2, c.3, c.4)?,
            i.total(c.0, i.ci_g_per_kwh.2, c.2, c.3, c.4)?,
        ),
        mk(
            "pue",
            i.total(c.0, c.1, i.pue.0, c.3, c.4)?,
            i.total(c.0, c.1, i.pue.2, c.3, c.4)?,
        ),
        mk(
            "embodied per server",
            i.total(c.0, c.1, c.2, i.embodied_kg.0, c.4)?,
            i.total(c.0, c.1, c.2, i.embodied_kg.2, c.4)?,
        ),
        mk(
            "lifespan",
            i.total(c.0, c.1, c.2, c.3, i.lifespan_years.0)?,
            i.total(c.0, c.1, c.2, c.3, i.lifespan_years.2)?,
        ),
        mk(
            "it energy",
            i.total(i.it_energy_kwh.0, c.1, c.2, c.3, c.4)?,
            i.total(i.it_energy_kwh.2, c.1, c.2, c.3, c.4)?,
        ),
    ];
    bars.sort_by(|a, b| b.span.total_cmp(&a.span));
    Ok(bars)
}

/// Runs the one-at-a-time analysis; bars are returned widest first.
///
/// # Panics
/// On invalid inputs; see [`try_tornado`].
pub fn tornado(inputs: &SensitivityInputs) -> Vec<TornadoBar> {
    match try_tornado(inputs) {
        Ok(bars) => bars,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_intensity_dominates_2022() {
        let bars = tornado(&SensitivityInputs::paper());
        assert_eq!(bars[0].input, "carbon intensity");
        // CI's bar dwarfs every other bar.
        for bar in &bars[1..] {
            assert!(
                bars[0].span.kilograms() > 2.0 * bar.span.kilograms(),
                "CI should dominate {}: {} vs {}",
                bar.input,
                bars[0].span,
                bar.span
            );
        }
    }

    #[test]
    fn bars_are_sorted_and_ordered() {
        let bars = tornado(&SensitivityInputs::paper());
        assert_eq!(bars.len(), 5);
        for w in bars.windows(2) {
            assert!(w[0].span >= w[1].span);
        }
        for bar in &bars {
            assert!(bar.range.lo <= bar.range.hi, "{}", bar.input);
            assert!((bar.span.grams() - (bar.range.hi - bar.range.lo).grams()).abs() < 1e-9);
        }
    }

    #[test]
    fn central_total_matches_paper_medium() {
        // Central: 19,380 kWh × 1.3 × 175 g + 750 kg/5 y × 2,398
        // ≈ 4,409 + 986 ≈ 5,395 kg.
        let total = SensitivityInputs::paper().central_total();
        assert!((total.kilograms() - 5_395.0).abs() < 15.0, "{total}");
    }

    #[test]
    fn lifespan_bar_inverts_correctly() {
        // Short lifespans mean higher totals: the bar must still come out
        // ordered lo ≤ hi.
        let bars = tornado(&SensitivityInputs::paper());
        let lifespan = bars.iter().find(|b| b.input == "lifespan").unwrap();
        assert!(lifespan.range.lo < lifespan.range.hi);
        let central = SensitivityInputs::paper().central_total();
        assert!(lifespan.range.lo < central && central < lifespan.range.hi);
    }

    #[test]
    fn invalid_pue_is_a_typed_error() {
        let mut inputs = SensitivityInputs::paper();
        inputs.pue = (0.8, 1.3, 1.6);
        let err = try_tornado(&inputs).unwrap_err();
        assert!(matches!(err, crate::error::Error::Units(_)), "{err}");
        assert!(SensitivityInputs::paper().try_central_total().is_ok());
    }

    #[test]
    fn decarbonised_grid_flips_the_ranking() {
        // Once CI collapses, the embodied inputs take over the tornado —
        // the §6 prediction again, now at the sensitivity level. (At
        // 10–50 g/kWh the CI bar still spans ~1 t because the PUE'd energy
        // is ~25 MWh; a mid-2030s 5–30 g range is needed to dethrone it.)
        let mut inputs = SensitivityInputs::paper();
        inputs.ci_g_per_kwh = (5.0, 15.0, 30.0);
        let bars = tornado(&inputs);
        assert!(
            bars[0].input == "embodied per server" || bars[0].input == "lifespan",
            "expected an embodied input on top, got {}",
            bars[0].input
        );
    }
}
