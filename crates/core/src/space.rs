//! First-class scenario spaces: named axes and their cartesian product.
//!
//! The paper evaluates `total = active + embodied` over *ranges* — but only
//! ever three hand-picked values per input (Tables 3 and 4). This module
//! generalises that idiom: a [`ScenarioAxis`] is any ordered sample list
//! over a unit type, and a [`ScenarioSpace`] is the cartesian product of
//! the model's four swept inputs (carbon intensity × PUE × embodied carbon
//! × lifespan), indexable and iterable at any cardinality. The paper's
//! 3 × 3 grid and 5-row sweep are just small spaces (see the adapters in
//! [`crate::scenario`]).
//!
//! Points are ordered row-major with carbon intensity outermost and
//! lifespan innermost; this ordering is part of the API contract (the
//! Table 3/4 adapters rely on it) and is stable.

use crate::error::{Error, Result};
use iriscast_units::sample::Lerp;
use iriscast_units::{Bounds, CarbonIntensity, CarbonMass, Pue, TriEstimate};

/// A named, ordered list of scenario samples for one model input.
///
/// An axis is never empty — construction rejects empty sample lists with
/// [`Error::EmptyAxis`], which is what makes downstream envelope queries
/// total (the `expect("sweep has rows")` panic of the old API is
/// unrepresentable).
#[derive(Debug, PartialEq)]
pub struct ScenarioAxis<T> {
    name: String,
    samples: Vec<T>,
}

// Hand-written so `clone_from` reuses the existing name/sample
// allocations — the buffer-reuse evaluation paths
// (`Assessment::evaluate_space_into`) clone spaces into long-lived
// results on every sweep, and the derived impl would reallocate both
// fields each time.
impl<T: Clone> Clone for ScenarioAxis<T> {
    fn clone(&self) -> Self {
        ScenarioAxis {
            name: self.name.clone(),
            samples: self.samples.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.samples.clone_from(&source.samples);
    }
}

impl<T> ScenarioAxis<T> {
    /// Builds an axis from a sample list, rejecting an empty one.
    pub fn new(name: impl Into<String>, samples: Vec<T>) -> Result<Self> {
        let name = name.into();
        if samples.is_empty() {
            return Err(Error::EmptyAxis { axis: name });
        }
        Ok(ScenarioAxis { name, samples })
    }

    /// A one-sample axis: the input is held fixed rather than swept.
    pub fn singleton(name: impl Into<String>, value: T) -> Self {
        ScenarioAxis {
            name: name.into(),
            samples: vec![value],
        }
    }

    /// The axis's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples (always ≥ 1).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always `false` — axes reject empty sample lists at construction.
    /// Present for API completeness (clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ordered samples.
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// Appends another axis's samples to this one (the incremental-fold
    /// growth path; see [`ScenarioSpace::extend_ci`]). The name is
    /// kept — growth changes *where* the axis has been sampled, not
    /// what it is.
    pub(crate) fn extend_from(&mut self, other: &Self)
    where
        T: Clone,
    {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Removes the **oldest** `k` samples — the front of the list, the
    /// exact inverse of `k` samples appended by
    /// [`ScenarioAxis::extend_from`]. The caller
    /// ([`ScenarioSpace::retract_ci`]) guarantees `k < len()`, so the
    /// never-empty invariant survives.
    pub(crate) fn retract_front(&mut self, k: usize) {
        debug_assert!(k < self.samples.len(), "an axis must stay non-empty");
        self.samples.drain(..k);
    }

    /// Borrowing iterator over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.samples.iter()
    }
}

impl<T: Copy> ScenarioAxis<T> {
    /// An axis from the paper's low/mid/high triple — the compatibility
    /// bridge: every `TriEstimate` is a 3-sample axis.
    pub fn from_tri(name: impl Into<String>, tri: TriEstimate<T>) -> Self {
        ScenarioAxis {
            name: name.into(),
            samples: tri.to_vec(),
        }
    }

    /// The sample at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<T> {
        self.samples.get(i).copied()
    }
}

impl<T: Lerp> ScenarioAxis<T> {
    /// An axis of `n` evenly spaced samples across `bounds` (inclusive).
    pub fn linspace(name: impl Into<String>, bounds: Bounds<T>, n: usize) -> Result<Self> {
        ScenarioAxis::new(name, bounds.linspace(n))
    }
}

impl<'a, T> IntoIterator for &'a ScenarioAxis<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Identifies one of the four swept axes (for marginal queries and
/// coordinate decoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxisId {
    /// Grid carbon intensity.
    Ci,
    /// Power usage effectiveness.
    Pue,
    /// Embodied carbon per server.
    Embodied,
    /// Hardware lifespan in years.
    Lifespan,
}

impl AxisId {
    /// Every axis, in the space's canonical (outermost-first) order.
    pub const ALL: [AxisId; 4] = [AxisId::Ci, AxisId::Pue, AxisId::Embodied, AxisId::Lifespan];

    /// Position of this axis in the canonical order.
    pub const fn position(self) -> usize {
        match self {
            AxisId::Ci => 0,
            AxisId::Pue => 1,
            AxisId::Embodied => 2,
            AxisId::Lifespan => 3,
        }
    }
}

/// The cartesian product of the model's four swept inputs.
///
/// Cardinality is the product of the axis lengths; a point's flat index
/// decodes row-major with [`AxisId::Ci`] outermost and
/// [`AxisId::Lifespan`] innermost.
#[derive(Debug, PartialEq)]
pub struct ScenarioSpace {
    ci: ScenarioAxis<CarbonIntensity>,
    pue: ScenarioAxis<Pue>,
    embodied: ScenarioAxis<CarbonMass>,
    lifespan_years: ScenarioAxis<f64>,
}

// Hand-written so `clone_from` reuses the axes' allocations (see
// `ScenarioAxis`'s `Clone` impl).
impl Clone for ScenarioSpace {
    fn clone(&self) -> Self {
        ScenarioSpace {
            ci: self.ci.clone(),
            pue: self.pue.clone(),
            embodied: self.embodied.clone(),
            lifespan_years: self.lifespan_years.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.ci.clone_from(&source.ci);
        self.pue.clone_from(&source.pue);
        self.embodied.clone_from(&source.embodied);
        self.lifespan_years.clone_from(&source.lifespan_years);
    }
}

/// One resolved parameter set: a single scenario drawn from a space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioPoint {
    /// Flat index within the owning space.
    pub index: usize,
    /// Per-axis sample indices, in [`AxisId::ALL`] order.
    pub coords: [usize; 4],
    /// Grid carbon intensity for this scenario.
    pub ci: CarbonIntensity,
    /// PUE for this scenario.
    pub pue: Pue,
    /// Embodied carbon per server for this scenario.
    pub embodied_per_server: CarbonMass,
    /// Hardware lifespan in years for this scenario.
    pub lifespan_years: f64,
}

impl ScenarioSpace {
    /// Builds a space from four axes, validating the lifespan samples
    /// (amortisation requires positive, finite lifespans).
    pub fn new(
        ci: ScenarioAxis<CarbonIntensity>,
        pue: ScenarioAxis<Pue>,
        embodied: ScenarioAxis<CarbonMass>,
        lifespan_years: ScenarioAxis<f64>,
    ) -> Result<Self> {
        for &years in lifespan_years.samples() {
            if !(years.is_finite() && years > 0.0) {
                return Err(Error::InvalidLifespan { years });
            }
        }
        Ok(ScenarioSpace {
            ci,
            pue,
            embodied,
            lifespan_years,
        })
    }

    /// The carbon-intensity axis.
    pub fn ci(&self) -> &ScenarioAxis<CarbonIntensity> {
        &self.ci
    }

    /// The PUE axis.
    pub fn pue(&self) -> &ScenarioAxis<Pue> {
        &self.pue
    }

    /// The embodied-carbon axis.
    pub fn embodied(&self) -> &ScenarioAxis<CarbonMass> {
        &self.embodied
    }

    /// The lifespan axis (years).
    pub fn lifespan_years(&self) -> &ScenarioAxis<f64> {
        &self.lifespan_years
    }

    /// Axis lengths in [`AxisId::ALL`] order.
    pub fn shape(&self) -> [usize; 4] {
        [
            self.ci.len(),
            self.pue.len(),
            self.embodied.len(),
            self.lifespan_years.len(),
        ]
    }

    /// The length of one axis.
    pub fn axis_len(&self, axis: AxisId) -> usize {
        self.shape()[axis.position()]
    }

    /// The display name of one axis.
    pub fn axis_name(&self, axis: AxisId) -> &str {
        match axis {
            AxisId::Ci => self.ci.name(),
            AxisId::Pue => self.pue.name(),
            AxisId::Embodied => self.embodied.name(),
            AxisId::Lifespan => self.lifespan_years.name(),
        }
    }

    /// Cardinality: the number of scenario points (product of axis
    /// lengths, always ≥ 1).
    pub fn len(&self) -> usize {
        self.shape().iter().product()
    }

    /// Always `false`: every axis has at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The stride of one axis in the flat row-major index: a point's
    /// coordinate along `axis` is `(index / stride) % axis_len(axis)`.
    /// This is the cheap single-axis form of [`ScenarioSpace::coords`],
    /// used by grouped-marginal scans.
    pub fn stride_of(&self, axis: AxisId) -> usize {
        self.shape()[axis.position() + 1..].iter().product()
    }

    /// Decodes a flat index into per-axis coordinates.
    pub fn coords(&self, index: usize) -> Result<[usize; 4]> {
        let len = self.len();
        if index >= len {
            return Err(Error::PointOutOfRange { index, len });
        }
        let [_, n_pue, n_emb, n_life] = self.shape();
        let life_i = index % n_life;
        let rest = index / n_life;
        let emb_i = rest % n_emb;
        let rest = rest / n_emb;
        let pue_i = rest % n_pue;
        let ci_i = rest / n_pue;
        Ok([ci_i, pue_i, emb_i, life_i])
    }

    /// Encodes per-axis coordinates into a flat index (the inverse of
    /// [`ScenarioSpace::coords`]).
    pub fn index_of(&self, coords: [usize; 4]) -> Result<usize> {
        let shape = self.shape();
        for (c, n) in coords.iter().zip(shape.iter()) {
            if c >= n {
                return Err(Error::PointOutOfRange { index: *c, len: *n });
            }
        }
        let [ci_i, pue_i, emb_i, life_i] = coords;
        let [_, n_pue, n_emb, n_life] = shape;
        Ok(((ci_i * n_pue + pue_i) * n_emb + emb_i) * n_life + life_i)
    }

    /// Resolves the scenario at a flat index.
    pub fn point(&self, index: usize) -> Result<ScenarioPoint> {
        let coords = self.coords(index)?;
        let [ci_i, pue_i, emb_i, life_i] = coords;
        Ok(ScenarioPoint {
            index,
            coords,
            ci: self.ci.samples()[ci_i],
            pue: self.pue.samples()[pue_i],
            embodied_per_server: self.embodied.samples()[emb_i],
            lifespan_years: self.lifespan_years.samples()[life_i],
        })
    }

    /// Appends another CI axis's samples to this space's carbon-intensity
    /// axis. CI is the **outermost** axis of the row-major point order,
    /// so growing it appends whole blocks of `len() / ci.len()` points at
    /// the end of the flat index — existing indices, coordinates and
    /// every inner-axis stride are untouched. This is what makes
    /// [`crate::engine::SpaceResults::extend_rows`] a plain column
    /// append; growing any *inner* axis would interleave instead, which
    /// is why no such path exists.
    pub(crate) fn extend_ci(&mut self, other: &ScenarioAxis<CarbonIntensity>) {
        self.ci.extend_from(other);
    }

    /// Removes the **oldest** `k` carbon-intensity samples — the front
    /// of the CI axis, the inverse of [`ScenarioSpace::extend_ci`].
    /// Because CI is outermost in the row-major point order, dropping
    /// its leading samples drops whole leading blocks of
    /// `len() / ci.len()` points; surviving points keep their relative
    /// order and every inner-axis stride is untouched (indices shift
    /// down by the evicted block count, exactly as if the evicted
    /// samples had never been part of the space). The caller
    /// ([`crate::engine::SpaceResults::retract_rows`]) validates
    /// `k < ci.len()`.
    pub(crate) fn retract_ci(&mut self, k: usize) {
        self.ci.retract_front(k);
    }

    /// Iterates every scenario point in index order.
    pub fn points(&self) -> impl Iterator<Item = ScenarioPoint> + '_ {
        (0..self.len()).map(|i| {
            self.point(i)
                .expect("index < len is in range by construction")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ScenarioSpace {
        ScenarioSpace::new(
            ScenarioAxis::new(
                "ci",
                vec![
                    CarbonIntensity::from_grams_per_kwh(50.0),
                    CarbonIntensity::from_grams_per_kwh(175.0),
                ],
            )
            .unwrap(),
            ScenarioAxis::new("pue", vec![Pue::new(1.1).unwrap(), Pue::new(1.3).unwrap()]).unwrap(),
            ScenarioAxis::new(
                "embodied",
                vec![
                    CarbonMass::from_kilograms(400.0),
                    CarbonMass::from_kilograms(750.0),
                    CarbonMass::from_kilograms(1_100.0),
                ],
            )
            .unwrap(),
            ScenarioAxis::new("lifespan", vec![3.0, 5.0, 7.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn empty_axis_rejected() {
        let err = ScenarioAxis::<f64>::new("lifespan", vec![]).unwrap_err();
        assert_eq!(
            err,
            Error::EmptyAxis {
                axis: "lifespan".into()
            }
        );
    }

    #[test]
    fn invalid_lifespans_rejected() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = ScenarioSpace::new(
                ScenarioAxis::singleton("ci", CarbonIntensity::from_grams_per_kwh(175.0)),
                ScenarioAxis::singleton("pue", Pue::new(1.3).unwrap()),
                ScenarioAxis::singleton("embodied", CarbonMass::from_kilograms(750.0)),
                ScenarioAxis::new("lifespan", vec![5.0, bad]).unwrap(),
            )
            .unwrap_err();
            assert!(matches!(err, Error::InvalidLifespan { .. }), "{bad}");
        }
    }

    #[test]
    fn cardinality_and_shape() {
        let s = small_space();
        assert_eq!(s.shape(), [2, 2, 3, 3]);
        assert_eq!(s.len(), 36);
        assert!(!s.is_empty());
        assert_eq!(s.axis_len(AxisId::Embodied), 3);
        assert_eq!(s.axis_name(AxisId::Lifespan), "lifespan");
    }

    #[test]
    fn index_coords_round_trip() {
        let s = small_space();
        for i in 0..s.len() {
            let coords = s.coords(i).unwrap();
            assert_eq!(s.index_of(coords).unwrap(), i);
        }
        assert!(s.coords(s.len()).is_err());
        assert!(s.index_of([0, 0, 0, 3]).is_err());
    }

    #[test]
    fn stride_agrees_with_coords() {
        let s = small_space();
        for axis in AxisId::ALL {
            let stride = s.stride_of(axis);
            let n = s.axis_len(axis);
            for i in 0..s.len() {
                assert_eq!(
                    (i / stride) % n,
                    s.coords(i).unwrap()[axis.position()],
                    "{axis:?} at {i}"
                );
            }
        }
        assert_eq!(s.stride_of(AxisId::Lifespan), 1);
        assert_eq!(s.stride_of(AxisId::Ci), 2 * 3 * 3);
    }

    #[test]
    fn iteration_order_is_lifespan_innermost() {
        let s = small_space();
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts.len(), 36);
        // First three points differ only in lifespan.
        assert_eq!(pts[0].lifespan_years, 3.0);
        assert_eq!(pts[1].lifespan_years, 5.0);
        assert_eq!(pts[2].lifespan_years, 7.0);
        assert_eq!(pts[0].ci, pts[1].ci);
        // The outermost axis flips halfway through.
        assert_eq!(pts[0].ci.grams_per_kwh(), 50.0);
        assert_eq!(pts[18].ci.grams_per_kwh(), 175.0);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn tri_and_linspace_constructors() {
        let tri = TriEstimate::new(1.0, 2.0, 3.0);
        let axis = ScenarioAxis::from_tri("x", tri);
        assert_eq!(axis.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(axis.get(1), Some(2.0));
        assert_eq!(axis.get(3), None);
        let lin = ScenarioAxis::linspace("y", Bounds::new(0.0, 10.0), 5).unwrap();
        assert_eq!(lin.samples(), &[0.0, 2.5, 5.0, 7.5, 10.0]);
        assert!(ScenarioAxis::linspace("z", Bounds::new(0.0, 1.0), 0).is_err());
        let collected: Vec<f64> = lin.iter().copied().collect();
        assert_eq!(collected.len(), 5);
        assert!(!lin.is_empty());
    }
}
