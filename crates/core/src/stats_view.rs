//! Statistics and query surface of [`SpaceResults`]: envelopes,
//! quantiles, grouped marginals, and the cached sorted view behind them.
//!
//! The paper's §6 methodology — and the screening workflows built on it —
//! ask the same batch many questions: an envelope, a handful of
//! quantiles, a marginal per axis. A [`SpaceResults`] is immutable once
//! evaluated, so the expensive part of a quantile query (sorting the
//! total column) is done **once**, lazily, and cached; every subsequent
//! quantile is an O(1) interpolation on the sorted view. Three query
//! shapes share that machinery:
//!
//! * [`SpaceResults::percentile`] — builds (or reuses) the cached sorted
//!   view; the right default, and what makes repeated queries
//!   allocation-free after the first;
//! * [`SpaceResults::percentiles`] — batch form over one sort, for
//!   answering a whole quantile grid at once;
//! * [`SpaceResults::percentile_oneshot`] — `select_nth`-based O(n)
//!   form for a single quantile of a batch that will not be queried
//!   again (it neither builds nor warms the cache).
//!
//! Totality: quantile queries validate `q ∈ [0, 1]`
//! ([`Error::InvalidFraction`]) and refuse NaN-bearing totals
//! ([`Error::NonFiniteData`]) instead of interpolating garbage; the
//! empty-input case is *unrepresentable* because every [`SpaceResults`]
//! constructor fills exactly `space.len() ≥ 1` rows (see the invariant
//! note on [`SpaceResults`]) — the `expect("results are non-empty")`
//! calls of the previous revision are gone, not hidden.
//!
//! # Incremental operation
//!
//! A result batch is no longer immutable: [`SpaceResults::extend_rows`]
//! folds a second batch (same inner axes, new carbon-intensity samples)
//! into this one in place, and a **warm** cached view is *updated* by
//! `StatsAccumulator::fold`'s galloping merge — O(new·log old)
//! comparisons, each old element moved at most once — instead of being
//! dropped and re-sorted. Quantile queries between folds therefore stay
//! O(1) and allocation-free, and every query answers bit-identically to
//! a from-scratch batch evaluation over the concatenated CI axis (the
//! property suites pin this at arbitrary split points).

use crate::engine::SpaceResults;
use crate::error::{Error, Result};
use crate::model::CarbonAssessment;
use crate::space::AxisId;
use iriscast_grid::stats;
use iriscast_units::{Bounds, CarbonMass};

/// The updatable sorted view of a result batch's total column:
/// kilograms, ascending (`total_cmp` order). Built lazily by the
/// quantile queries; **folded into** (not rebuilt) when the owning
/// [`SpaceResults`] grows through [`SpaceResults::extend_rows`]; dropped
/// when the batch is re-filled wholesale through
/// [`crate::engine::Assessment::evaluate_space_into`].
#[derive(Clone, Debug)]
pub(crate) struct StatsAccumulator {
    /// Totals in kilograms, ascending.
    kg: Vec<f64>,
    /// Whether any total is NaN (poisons quantile queries with a typed
    /// error; checked once here instead of per query).
    has_nan: bool,
}

impl StatsAccumulator {
    fn build(total: &[CarbonMass]) -> Self {
        let mut kg: Vec<f64> = total.iter().map(|t| t.kilograms()).collect();
        let has_nan = kg.iter().any(|v| v.is_nan());
        kg.sort_by(f64::total_cmp);
        StatsAccumulator { kg, has_nan }
    }

    /// Folds a batch of new totals into the sorted view by galloping
    /// merge: sort the (small) incoming batch, then walk it largest
    /// first, locating each value's rank among the remaining old values
    /// with one `partition_point` and sliding the old run above it into
    /// place with one `copy_within`. O(new·log old) comparisons and
    /// each old element moved at most once — not a full re-sort.
    ///
    /// Bit-identity: `total_cmp` is a total order in which equal values
    /// have identical bit patterns, so wherever ties land, the merged
    /// sequence is byte-for-byte the one a from-scratch
    /// [`StatsAccumulator::build`] of the concatenated column produces.
    fn fold(&mut self, new_total: &[CarbonMass]) {
        if new_total.is_empty() {
            return;
        }
        let mut incoming: Vec<f64> = new_total.iter().map(|t| t.kilograms()).collect();
        self.has_nan |= incoming.iter().any(|v| v.is_nan());
        incoming.sort_by(f64::total_cmp);
        let old_len = self.kg.len();
        self.kg.resize(old_len + incoming.len(), 0.0);
        // Merge back to front. Old values live in kg[..old_end]; the
        // next placed block ends (exclusively) at write_end. The loop
        // keeps `write_end - old_end == number of unplaced new values`,
        // so writes always land strictly above the unread old region.
        let mut old_end = old_len;
        let mut write_end = self.kg.len();
        for &v in incoming.iter().rev() {
            let p = self.kg[..old_end].partition_point(|x| x.total_cmp(&v).is_le());
            let run = old_end - p;
            self.kg.copy_within(p..old_end, write_end - run);
            write_end -= run + 1;
            self.kg[write_end] = v;
            old_end = p;
        }
        // Everything below the smallest new value was already in place.
        debug_assert_eq!(write_end, old_end);
    }

    /// Removes an exact multiset of totals from the sorted view — the
    /// inverse of [`StatsAccumulator::fold`], used by
    /// [`SpaceResults::retract_rows`] to evict the oldest
    /// carbon-intensity blocks without dropping the warm cache.
    ///
    /// Why exact retraction is safe here (the design the retention
    /// story rests on): the accumulator holds the **raw sorted
    /// values**, not merged running aggregates — there is no
    /// mean/variance to "un-merge" and therefore no numerical
    /// fragility. Under `total_cmp`, values that compare equal have
    /// identical bit patterns, so subtracting the retracted multiset by
    /// one ascending two-pointer sweep leaves byte-for-byte the view a
    /// from-scratch [`StatsAccumulator::build`] of the surviving column
    /// produces. Every retracted value must be present in the view
    /// (guaranteed by the caller, which retracts a prefix of its own
    /// total column; debug-asserted here).
    fn retract(&mut self, removed: &[CarbonMass]) {
        if removed.is_empty() {
            return;
        }
        let mut gone: Vec<f64> = removed.iter().map(|t| t.kilograms()).collect();
        gone.sort_by(f64::total_cmp);
        let mut write = 0usize;
        let mut g = 0usize;
        for read in 0..self.kg.len() {
            let v = self.kg[read];
            if g < gone.len() && v.total_cmp(&gone[g]).is_eq() {
                g += 1;
                continue;
            }
            self.kg[write] = v;
            write += 1;
        }
        debug_assert_eq!(g, gone.len(), "retracted totals must exist in the view");
        self.kg.truncate(write);
        // Recheck the NaN flag: under `total_cmp` NaNs sort to the
        // extremes (negative NaN below -inf, positive NaN above +inf),
        // so the two ends decide the flag exactly.
        self.has_nan = self.kg.first().is_some_and(|v| v.is_nan())
            || self.kg.last().is_some_and(|v| v.is_nan());
    }

    /// O(1) linear-interpolated quantile on the sorted view, delegating
    /// the interpolation rule to [`stats::percentile_sorted`] so every
    /// quantile path in the workspace shares one definition.
    fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidFraction { value: q });
        }
        if self.has_nan {
            return Err(Error::NonFiniteData { column: "total" });
        }
        Ok(stats::percentile_sorted(&self.kg, q)
            .expect("q validated above and the view is non-empty by the SpaceResults invariant"))
    }
}

/// Marginal statistics of the total along one sample of one axis: what the
/// batch looks like with that input pinned and everything else swept.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Marginal {
    /// The axis being conditioned on.
    pub axis: AxisId,
    /// The sample index along that axis.
    pub sample_index: usize,
    /// Total-carbon envelope over all other axes.
    pub total: Bounds<CarbonMass>,
    /// Mean total over all other axes.
    pub mean_total: CarbonMass,
}

impl Marginal {
    /// The spread this sample leaves unexplained (envelope width).
    pub fn span(&self) -> CarbonMass {
        self.total.hi - self.total.lo
    }
}

/// Joint active/embodied/total envelope of a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Envelope {
    /// Active-carbon envelope.
    pub active: Bounds<CarbonMass>,
    /// Embodied-carbon envelope.
    pub embodied: Bounds<CarbonMass>,
    /// Total-carbon envelope.
    pub total: Bounds<CarbonMass>,
}

/// Five-number-plus-mean summary of the total column, in carbon-mass
/// units — the model-layer face of [`iriscast_grid::stats::Summary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotalsSummary {
    /// Minimum total.
    pub min: CarbonMass,
    /// 25th percentile.
    pub p25: CarbonMass,
    /// Median.
    pub median: CarbonMass,
    /// 75th percentile.
    pub p75: CarbonMass,
    /// Maximum total.
    pub max: CarbonMass,
    /// Arithmetic mean.
    pub mean: CarbonMass,
}

impl SpaceResults {
    /// The cached sorted totals, built on first use.
    fn sorted_totals(&self) -> &StatsAccumulator {
        self.debug_assert_invariant();
        self.sorted
            .get_or_init(|| StatsAccumulator::build(&self.total))
    }

    /// Folds another result batch into this one in place: `other`'s
    /// carbon-intensity samples are appended to this space's CI
    /// (outermost) axis and its columns appended row for row, so the
    /// grown batch is **bit-identical** — columns, envelope, quantiles,
    /// marginals — to a from-scratch evaluation over the concatenated CI
    /// axis. A warm cached-sort view is updated by galloping merge
    /// (`StatsAccumulator::fold`) rather than dropped, so quantile
    /// queries between folds stay O(1) and allocation-free; a cold view
    /// stays cold (nothing to keep warm).
    ///
    /// Only the CI axis may grow because it is outermost in the
    /// row-major point order: appending its samples appends whole
    /// contiguous blocks of points, leaving every existing index,
    /// coordinate and inner-axis stride untouched. The three inner axes
    /// must therefore be identical (name and samples), or the appended
    /// rows would land at the wrong coordinates —
    /// [`Error::ShapeMismatch`] names the first offender.
    pub fn extend_rows(&mut self, other: &SpaceResults) -> Result<()> {
        self.debug_assert_invariant();
        other.debug_assert_invariant();
        if self.space.pue() != other.space.pue() {
            return Err(Error::ShapeMismatch { axis: "pue" });
        }
        if self.space.embodied() != other.space.embodied() {
            return Err(Error::ShapeMismatch { axis: "embodied" });
        }
        if self.space.lifespan_years() != other.space.lifespan_years() {
            return Err(Error::ShapeMismatch { axis: "lifespan" });
        }
        self.active.extend_from_slice(&other.active);
        self.embodied.extend_from_slice(&other.embodied);
        self.total.extend_from_slice(&other.total);
        self.space.extend_ci(other.space.ci());
        if let Some(view) = self.sorted.get_mut() {
            view.fold(&other.total);
        }
        self.debug_assert_invariant();
        Ok(())
    }

    /// Evicts the **oldest** `ci_samples` carbon-intensity samples and
    /// their rows — the exact inverse of [`SpaceResults::extend_rows`].
    ///
    /// CI is outermost in the row-major point order, so the oldest
    /// samples own the leading `ci_samples · (len / ci_len)` rows of
    /// every column: retraction is a plain front drain, and the
    /// surviving batch is **bit-identical** — columns, envelope,
    /// quantiles, marginals — to one into which the evicted blocks were
    /// *never folded at all* (the retention property suites pin this).
    /// A warm cached-sort view has the evicted totals subtracted in
    /// place (`StatsAccumulator::retract`) rather than being dropped,
    /// so quantile queries across an eviction stay O(1) and
    /// allocation-free; a cold view stays cold.
    ///
    /// `ci_samples == 0` is a no-op. At least one CI sample must
    /// survive (results are non-empty by invariant):
    /// [`Error::RetractOutOfRange`] when `ci_samples ≥ ci_len`.
    pub fn retract_rows(&mut self, ci_samples: usize) -> Result<()> {
        self.debug_assert_invariant();
        if ci_samples == 0 {
            return Ok(());
        }
        let available = self.space.ci().len();
        if ci_samples >= available {
            return Err(Error::RetractOutOfRange {
                requested: ci_samples,
                available,
            });
        }
        let rows = ci_samples * (self.total.len() / available);
        // Subtract from the warm view first — it needs the evicted
        // totals, which the drains below destroy.
        if let Some(view) = self.sorted.get_mut() {
            view.retract(&self.total[..rows]);
        }
        self.active.drain(..rows);
        self.embodied.drain(..rows);
        self.total.drain(..rows);
        self.space.retract_ci(ci_samples);
        self.debug_assert_invariant();
        Ok(())
    }

    fn column_bounds(col: &[CarbonMass]) -> Bounds<CarbonMass> {
        let mut lo = col[0];
        let mut hi = col[0];
        for &v in &col[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Bounds::new(lo, hi)
    }

    /// The batch's joint envelope: min/max of each column.
    pub fn envelope(&self) -> Envelope {
        self.debug_assert_invariant();
        Envelope {
            active: Self::column_bounds(&self.active),
            embodied: Self::column_bounds(&self.embodied),
            total: Self::column_bounds(&self.total),
        }
    }

    /// The envelope packaged as a [`CarbonAssessment`] — how §6 of the
    /// paper combines its table extremes.
    pub fn assessment(&self) -> CarbonAssessment {
        let env = self.envelope();
        CarbonAssessment::new(env.active, env.embodied)
    }

    /// Linear-interpolated percentile of the total column; `q` in
    /// `[0, 1]`.
    ///
    /// The first quantile query sorts the column once into a cached
    /// view; this and every later quantile query on the same results
    /// then costs O(1) and allocates nothing. For a single quantile of
    /// a batch that will never be queried again, see
    /// [`SpaceResults::percentile_oneshot`].
    pub fn percentile(&self, q: f64) -> Result<CarbonMass> {
        self.sorted_totals()
            .quantile(q)
            .map(CarbonMass::from_kilograms)
    }

    /// Batch percentiles over one shared sort: every `q` answered
    /// against the cached sorted view. All-or-nothing — an out-of-range
    /// `q` anywhere in the batch fails the whole call, so a partial
    /// answer can't be mistaken for a full one.
    pub fn percentiles(&self, qs: &[f64]) -> Result<Vec<CarbonMass>> {
        let view = self.sorted_totals();
        qs.iter()
            .map(|&q| view.quantile(q).map(CarbonMass::from_kilograms))
            .collect()
    }

    /// One-shot percentile via `select_nth` — O(n) expected instead of
    /// the O(n log n) sort, for a single quantile of a batch that will
    /// not be queried again. Does not build the cached view (that is
    /// the point); if the view already exists it is used directly.
    pub fn percentile_oneshot(&self, q: f64) -> Result<CarbonMass> {
        if !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidFraction { value: q });
        }
        if let Some(view) = self.sorted.get() {
            return view.quantile(q).map(CarbonMass::from_kilograms);
        }
        self.debug_assert_invariant();
        let mut kg: Vec<f64> = self.total.iter().map(|t| t.kilograms()).collect();
        match stats::percentile_select(&mut kg, q) {
            Some(v) => Ok(CarbonMass::from_kilograms(v)),
            // `q` is validated and the column is non-empty by invariant,
            // so the only remaining refusal is NaN-bearing input.
            None => Err(Error::NonFiniteData { column: "total" }),
        }
    }

    /// Mean of the total column. Single pass, no allocation.
    ///
    /// Unlike the quantile queries, this follows plain IEEE semantics
    /// for non-finite data: a `NaN` total yields a `NaN` mean (visible
    /// in the result, unlike a `NaN` silently *ranked* into a quantile,
    /// which would masquerade as a real order statistic).
    pub fn mean_total(&self) -> CarbonMass {
        self.debug_assert_invariant();
        let sum: f64 = self.total.iter().map(|t| t.kilograms()).sum();
        CarbonMass::from_kilograms(sum / self.total.len() as f64)
    }

    /// Five-number-plus-mean summary of the totals, read off the cached
    /// sorted view (one sort amortised across this and every quantile
    /// query).
    pub fn summary(&self) -> Result<TotalsSummary> {
        let view = self.sorted_totals();
        let q = |q: f64| view.quantile(q).map(CarbonMass::from_kilograms);
        Ok(TotalsSummary {
            min: q(0.0)?,
            p25: q(0.25)?,
            median: q(0.5)?,
            p75: q(0.75)?,
            max: q(1.0)?,
            mean: self.mean_total(),
        })
    }

    /// Grouped marginals along one axis: for each of its samples, the
    /// envelope and mean of the total over every other axis. Sorting the
    /// output by [`Marginal::span`] ranks how much uncertainty each
    /// sample of the input leaves unresolved — the batch analogue of the
    /// one-at-a-time tornado in [`crate::sensitivity`].
    pub fn marginals(&self, axis: AxisId) -> Vec<Marginal> {
        self.debug_assert_invariant();
        let n_samples = self.space.axis_len(axis);
        let stride = self.space.stride_of(axis);
        // The space is a cartesian product, so every sample of every
        // axis owns exactly `len / n_samples ≥ 1` points — empty groups
        // are impossible by construction and the mean below never needs
        // the masking `count.max(1)` guard an earlier revision carried
        // (which would have silently reported zero bounds for a group
        // that can't exist).
        let per_sample = self.total.len() / n_samples;
        // Seed each group's bounds from its first point (flat index
        // `s · stride`), then fold the whole column once.
        let mut lo: Vec<CarbonMass> = (0..n_samples).map(|s| self.total[s * stride]).collect();
        let mut hi = lo.clone();
        let mut sum = vec![0.0f64; n_samples];
        for (idx, &t) in self.total.iter().enumerate() {
            let s = (idx / stride) % n_samples;
            lo[s] = lo[s].min(t);
            hi[s] = hi[s].max(t);
            sum[s] += t.kilograms();
        }
        (0..n_samples)
            .map(|s| Marginal {
                axis,
                sample_index: s,
                total: Bounds::new(lo[s], hi[s]),
                mean_total: CarbonMass::from_kilograms(sum[s] / per_sample as f64),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Assessment;
    use crate::paper;
    use iriscast_units::Energy;

    fn naive_percentile(results: &SpaceResults, q: f64) -> CarbonMass {
        // The pre-cache definition: clone the column, sort, interpolate.
        let kg: Vec<f64> = results.totals().iter().map(|t| t.kilograms()).collect();
        CarbonMass::from_kilograms(stats::percentile(&kg, q).expect("non-empty, valid q"))
    }

    #[test]
    fn percentiles_and_mean_are_ordered() {
        let results = Assessment::paper().evaluate_space();
        let p5 = results.percentile(0.05).unwrap();
        let p50 = results.percentile(0.50).unwrap();
        let p95 = results.percentile(0.95).unwrap();
        assert!(p5 < p50 && p50 < p95);
        let env = results.envelope();
        assert!(p5 >= env.total.lo && p95 <= env.total.hi);
        let mean = results.mean_total();
        assert!(mean > env.total.lo && mean < env.total.hi);
        assert!(results.percentile(1.5).is_err());
        assert!(results.percentile(-0.1).is_err());
        assert!(results.percentile_oneshot(1.5).is_err());
        assert!(results.percentiles(&[0.5, -0.1]).is_err());
    }

    #[test]
    fn cached_batched_and_oneshot_agree_with_naive_sort_per_call() {
        let results = Assessment::paper().evaluate_space();
        let qs = [0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];
        let batch = results.percentiles(&qs).unwrap();
        for (&q, &b) in qs.iter().zip(&batch) {
            let naive = naive_percentile(&results, q);
            assert_eq!(results.percentile(q).unwrap(), naive, "cached, q = {q}");
            assert_eq!(b, naive, "batch, q = {q}");
            assert_eq!(
                results.percentile_oneshot(q).unwrap(),
                naive,
                "oneshot, q = {q}"
            );
        }
        // Oneshot on a fresh (cache-less) result takes the select path.
        let fresh = Assessment::paper().evaluate_space();
        for q in qs {
            assert_eq!(
                fresh.percentile_oneshot(q).unwrap(),
                naive_percentile(&fresh, q),
                "select path, q = {q}"
            );
        }
    }

    #[test]
    fn summary_is_consistent_with_envelope_and_quantiles() {
        let results = Assessment::paper().evaluate_space();
        let s = results.summary().unwrap();
        let env = results.envelope();
        assert_eq!(s.min, env.total.lo);
        assert_eq!(s.max, env.total.hi);
        assert_eq!(s.median, results.percentile(0.5).unwrap());
        assert_eq!(s.mean, results.mean_total());
        assert!(s.min <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.max);
    }

    #[test]
    fn nan_totals_surface_as_typed_errors_not_interpolation() {
        // A NaN energy figure propagates NaN into every total; quantile
        // queries must refuse it, not rank it.
        let results = Assessment::builder()
            .energy(Energy::from_kilowatt_hours(f64::NAN))
            .ci_grams_per_kwh(&[100.0, 200.0])
            .pue_values(&[1.2, 1.4])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[3, 5])
            .servers(100)
            .build()
            .unwrap()
            .evaluate_space();
        assert_eq!(
            results.percentile(0.5).unwrap_err(),
            Error::NonFiniteData { column: "total" }
        );
        assert_eq!(
            results.percentile_oneshot(0.5).unwrap_err(),
            Error::NonFiniteData { column: "total" }
        );
        assert_eq!(
            results.percentiles(&[0.5]).unwrap_err(),
            Error::NonFiniteData { column: "total" }
        );
        assert!(results.summary().is_err());
        // Range validation still wins over data validation.
        assert_eq!(
            results.percentile(2.0).unwrap_err(),
            Error::InvalidFraction { value: 2.0 }
        );
    }

    fn eval_ci(ci: &[f64]) -> SpaceResults {
        Assessment::builder()
            .energy(paper::effective_energy())
            .ci_grams_per_kwh(ci)
            .pue_values(&[1.1, 1.3, 1.58])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[3, 5, 7])
            .servers(100)
            .build()
            .unwrap()
            .evaluate_space()
    }

    #[test]
    fn gallop_fold_equals_full_rebuild_on_awkward_values() {
        let vals = |xs: &[f64]| -> Vec<CarbonMass> {
            xs.iter().copied().map(CarbonMass::from_kilograms).collect()
        };
        let old = vals(&[5.0, 1.0, 3.0, 3.0, -0.0, 2.5]);
        let cases: &[&[f64]] = &[
            &[],
            &[4.0],
            &[-1.0, 10.0, 3.0, 3.0, 0.0],
            &[f64::NAN, 2.0],
            &[0.5, 0.5, 0.5, 0.5],
            &[-2.0, -0.0, 0.0, 100.0, f64::INFINITY],
        ];
        for new in cases {
            let mut acc = StatsAccumulator::build(&old);
            acc.fold(&vals(new));
            let mut all = old.clone();
            all.extend(vals(new));
            let rebuilt = StatsAccumulator::build(&all);
            // Bitwise, not `==`: NaN and signed-zero placement are part
            // of the total_cmp contract being pinned.
            assert!(
                acc.kg
                    .iter()
                    .map(|v| v.to_bits())
                    .eq(rebuilt.kg.iter().map(|v| v.to_bits())),
                "fold of {new:?} diverged from rebuild"
            );
            assert_eq!(acc.has_nan, rebuilt.has_nan, "{new:?}");
        }
        // Folding into an empty view is the degenerate all-new merge.
        let mut acc = StatsAccumulator::build(&[]);
        acc.fold(&vals(&[2.0, 1.0]));
        assert_eq!(acc.kg, vec![1.0, 2.0]);
    }

    #[test]
    fn extend_rows_matches_batch_bit_for_bit() {
        let batch = eval_ci(&[50.0, 175.0, 900.0]);
        let mut live = eval_ci(&[50.0]);
        // Warm the cache before the first fold so the galloping-merge
        // path (not a lazy rebuild) is what answers below.
        assert!(live.percentile(0.95).unwrap().kilograms() > 0.0);
        live.extend_rows(&eval_ci(&[175.0])).unwrap();
        live.extend_rows(&eval_ci(&[900.0])).unwrap();
        // Space and columns are the batch's, bit for bit …
        assert_eq!(live, batch);
        assert_eq!(live.space().shape(), batch.space().shape());
        // … and so is every query surface: quantiles off the folded
        // warm view, envelope, marginals, mean.
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(
                live.percentile(q).unwrap(),
                batch.percentile(q).unwrap(),
                "q = {q}"
            );
        }
        assert_eq!(live.envelope(), batch.envelope());
        assert_eq!(live.mean_total(), batch.mean_total());
        for axis in AxisId::ALL {
            assert_eq!(live.marginals(axis), batch.marginals(axis), "{axis:?}");
        }
        assert_eq!(live.summary().unwrap(), batch.summary().unwrap());
    }

    #[test]
    fn extend_rows_after_warm_query_never_serves_the_stale_sort() {
        let mut live = eval_ci(&[175.0]);
        let before_max = live.percentile(1.0).unwrap();
        // Fold a block whose totals dwarf everything cached; a stale
        // sort would keep reporting `before_max`.
        live.extend_rows(&eval_ci(&[9_000.0])).unwrap();
        let after_max = live.percentile(1.0).unwrap();
        assert!(after_max > before_max);
        assert_eq!(
            after_max,
            eval_ci(&[175.0, 9_000.0]).percentile(1.0).unwrap()
        );
        // The oneshot path reuses the same (updated) cache when warm.
        assert_eq!(live.percentile_oneshot(1.0).unwrap(), after_max);
        // A cold view stays cold across a fold and still answers right.
        let mut cold = eval_ci(&[175.0]);
        cold.extend_rows(&eval_ci(&[9_000.0])).unwrap();
        assert_eq!(cold.percentile(1.0).unwrap(), after_max);
    }

    #[test]
    fn retract_subtracts_an_exact_multiset_from_the_warm_view() {
        let vals = |xs: &[f64]| -> Vec<CarbonMass> {
            xs.iter().copied().map(CarbonMass::from_kilograms).collect()
        };
        // (survivors, retracted) pairs exercising duplicates, signed
        // zero, NaN and infinities — the total_cmp corner cases.
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 2.0], &[3.0]),
            (&[3.0, 3.0], &[3.0, 3.0]),
            (&[-0.0, 0.0], &[-0.0, 0.0]),
            (&[2.0], &[f64::NAN, f64::NAN]),
            (&[f64::NAN], &[2.0, f64::INFINITY]),
            (&[5.0, 1.0, 3.0], &[]),
        ];
        for (keep, gone) in cases {
            let mut all = vals(gone);
            all.extend(vals(keep));
            let mut acc = StatsAccumulator::build(&all);
            acc.retract(&vals(gone));
            let survivors = StatsAccumulator::build(&vals(keep));
            assert!(
                acc.kg
                    .iter()
                    .map(|v| v.to_bits())
                    .eq(survivors.kg.iter().map(|v| v.to_bits())),
                "retract of {gone:?} diverged from a rebuild of {keep:?}"
            );
            assert_eq!(acc.has_nan, survivors.has_nan, "{keep:?} - {gone:?}");
        }
    }

    #[test]
    fn retract_rows_is_the_exact_inverse_of_extend_rows() {
        // Fold three CI blocks, evict the oldest two: the survivor must
        // be bit-identical to a batch that never saw the evicted blocks
        // — including the warm cached-sort view that answers quantiles.
        let never_ingested = eval_ci(&[900.0]);
        let mut live = eval_ci(&[50.0]);
        assert!(live.percentile(0.5).unwrap().kilograms() > 0.0); // warm it
        live.extend_rows(&eval_ci(&[175.0])).unwrap();
        live.extend_rows(&eval_ci(&[900.0])).unwrap();
        live.retract_rows(2).unwrap();
        assert_eq!(live, never_ingested);
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(
                live.percentile(q).unwrap().kilograms().to_bits(),
                never_ingested.percentile(q).unwrap().kilograms().to_bits(),
                "q = {q}"
            );
        }
        assert_eq!(live.envelope(), never_ingested.envelope());
        assert_eq!(live.mean_total(), never_ingested.mean_total());
        for axis in AxisId::ALL {
            assert_eq!(
                live.marginals(axis),
                never_ingested.marginals(axis),
                "{axis:?}"
            );
        }
        assert_eq!(live.summary().unwrap(), never_ingested.summary().unwrap());

        // A cold view stays cold across a retraction and still answers.
        let mut cold = eval_ci(&[50.0, 175.0]);
        cold.retract_rows(1).unwrap();
        assert_eq!(cold, eval_ci(&[175.0]));
        assert_eq!(
            cold.percentile(1.0).unwrap(),
            eval_ci(&[175.0]).percentile(1.0).unwrap()
        );
    }

    #[test]
    fn retract_rows_must_leave_at_least_one_ci_sample() {
        let mut live = eval_ci(&[50.0, 175.0, 900.0]);
        assert_eq!(
            live.retract_rows(3).unwrap_err(),
            Error::RetractOutOfRange {
                requested: 3,
                available: 3
            }
        );
        assert_eq!(
            live.retract_rows(7).unwrap_err(),
            Error::RetractOutOfRange {
                requested: 7,
                available: 3
            }
        );
        // A refused retraction leaves the batch untouched; a zero
        // retraction is a no-op.
        assert_eq!(live, eval_ci(&[50.0, 175.0, 900.0]));
        live.retract_rows(0).unwrap();
        assert_eq!(live, eval_ci(&[50.0, 175.0, 900.0]));
    }

    #[test]
    fn extend_rows_rejects_mismatched_inner_axes() {
        let base = || {
            Assessment::builder()
                .energy(paper::effective_energy())
                .ci_grams_per_kwh(&[175.0])
                .embodied_bounds(paper::server_embodied_bounds())
                .servers(100)
        };
        let a = base()
            .pue_values(&[1.3])
            .lifespans_years(&[5])
            .build()
            .unwrap()
            .evaluate_space();
        let other_pue = base()
            .pue_values(&[1.58])
            .lifespans_years(&[5])
            .build()
            .unwrap()
            .evaluate_space();
        let other_life = base()
            .pue_values(&[1.3])
            .lifespans_years(&[3])
            .build()
            .unwrap()
            .evaluate_space();
        let mut live = a.clone();
        assert_eq!(
            live.extend_rows(&other_pue).unwrap_err(),
            Error::ShapeMismatch { axis: "pue" }
        );
        assert_eq!(
            live.extend_rows(&other_life).unwrap_err(),
            Error::ShapeMismatch { axis: "lifespan" }
        );
        // A failed fold leaves the accumulator untouched.
        assert_eq!(live, a);
    }

    #[test]
    fn marginals_rank_ci_as_dominant() {
        let results = Assessment::paper().evaluate_space();
        // With everything else swept, pinning CI should leave the least
        // residual spread relative to its own effect: compare the spread
        // *between* marginal means per axis.
        let spread = |axis: AxisId| {
            let m = results.marginals(axis);
            assert_eq!(m.len(), results.space().axis_len(axis));
            let lo = m
                .iter()
                .map(|x| x.mean_total)
                .min_by(CarbonMass::total_cmp)
                .unwrap();
            let hi = m
                .iter()
                .map(|x| x.mean_total)
                .max_by(CarbonMass::total_cmp)
                .unwrap();
            hi - lo
        };
        let ci = spread(AxisId::Ci);
        for other in [AxisId::Pue, AxisId::Embodied, AxisId::Lifespan] {
            assert!(
                ci.kilograms() > spread(other).kilograms(),
                "CI marginal spread should dominate {other:?}"
            );
        }
        // Marginal bucket counts: each CI sample covers len/3 points.
        let m = results.marginals(AxisId::Ci);
        for bucket in &m {
            assert!(bucket.total.lo <= bucket.mean_total);
            assert!(bucket.mean_total <= bucket.total.hi);
            assert!(bucket.span() > CarbonMass::ZERO);
        }
    }

    #[test]
    fn singleton_axes_have_exact_degenerate_marginals() {
        // One sample per axis: the single marginal group covers the
        // whole (one-point) batch exactly — the configuration where the
        // old `count.max(1)` mask would have been closest to biting.
        let results = Assessment::builder()
            .energy(paper::effective_energy())
            .ci_grams_per_kwh(&[175.0])
            .pue_values(&[1.3])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[5])
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap()
            .evaluate_space();
        for axis in AxisId::ALL {
            let m = results.marginals(axis);
            assert_eq!(m.len(), results.space().axis_len(axis));
            for bucket in &m {
                assert!(bucket.total.lo > CarbonMass::ZERO, "{axis:?}");
                assert!(bucket.mean_total >= bucket.total.lo, "{axis:?}");
                assert!(bucket.mean_total <= bucket.total.hi, "{axis:?}");
            }
        }
        // The CI marginal of the 2-sample embodied axis × 1-sample rest:
        // each group's mean is its own total.
        let m = results.marginals(AxisId::Embodied);
        for (s, bucket) in m.iter().enumerate() {
            assert_eq!(bucket.total.lo, bucket.total.hi);
            assert_eq!(bucket.mean_total, bucket.total.lo, "sample {s}");
        }
    }
}
