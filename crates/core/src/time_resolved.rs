//! Time-resolved assessment: per-interval energy convolved with
//! per-interval grid intensity over a scenario space.
//!
//! The paper's Table 2 telemetry and Figure 1 intensity data are both
//! half-hourly series, but its published evaluation collapses them to
//! scalars (total energy × three reference intensities). This module
//! makes the time-resolved form the engine's native mode: a
//! [`TimeResolvedAssessment`] couples one measured
//! [`EnergySeries`] to an axis of [`IntensitySeries`] — different days,
//! different grid scenarios, forecast vs actual — and evaluates
//!
//! > `Ca = Σᵢ PUE·Eᵢ·CIᵢ`  *(equation 3, per interval)*
//!
//! at every point of the usual CI × PUE × embodied × lifespan scenario
//! space. Series on different grids are aligned through the exactness
//! rules in [`iriscast_units::align`] (whole-multiple steps, matching
//! phase, full coverage) — never silently interpolated.
//!
//! Every batch path of the scalar engine is available unchanged —
//! materialised ([`TimeResolvedAssessment::evaluate_space`]), streamed
//! ([`TimeResolvedAssessment::stream_space`], bounded memory for sweeps
//! past 10M points), chunked ([`TimeResolvedAssessment::chunks`]) and
//! parallel (bit-identical to serial) — because the convolutions are
//! factored into the same per-(CI, PUE) kernel tables the scalar engine
//! uses: per-point cost stays two table reads regardless of series
//! length. Per-interval detail for one scenario comes back as a
//! [`CarbonProfile`].
//!
//! ```
//! use iriscast_model::time_resolved::TimeResolvedAssessment;
//! use iriscast_model::paper;
//! use iriscast_grid::series::IntensitySeries;
//! use iriscast_telemetry::timeseries::EnergySeries;
//! use iriscast_units::{CarbonIntensity, Energy, SimDuration, Timestamp};
//!
//! // A flat 400 kWh/half-hour day against two candidate days of grid data.
//! let energy = EnergySeries::new(
//!     Timestamp::EPOCH,
//!     SimDuration::SETTLEMENT_PERIOD,
//!     vec![Energy::from_kilowatt_hours(400.0); 48],
//! );
//! let day = |base: f64| IntensitySeries::new(
//!     Timestamp::EPOCH,
//!     SimDuration::SETTLEMENT_PERIOD,
//!     (0..48).map(|i| CarbonIntensity::from_grams_per_kwh(
//!         base + 40.0 * f64::from(i % 2),
//!     )).collect(),
//! );
//! let assessment = TimeResolvedAssessment::builder()
//!     .energy_series(energy)
//!     .ci_series(day(60.0))
//!     .ci_series(day(240.0))
//!     .pue_values(&[1.1, 1.3, 1.5])
//!     .embodied_bounds(paper::server_embodied_bounds())
//!     .lifespans_years(&[3, 5, 7])
//!     .servers(paper::AMORTISATION_FLEET_SERVERS)
//!     .build()
//!     .unwrap();
//! let results = assessment.evaluate_space();
//! assert_eq!(results.len(), 2 * 3 * 2 * 3);
//! // The clean day beats the dirty day at every shared setting.
//! assert!(results.totals()[0] < results.totals()[results.len() / 2]);
//! ```

use crate::embodied::fleet_snapshot_daily;
use crate::engine::{
    chunks_over, evaluate_into, materialise, par_materialise, par_stream_points, stream_points,
    AssessmentBuilder, EvalTables, PointOutcome, PointResult, SpaceChunks, SpaceResults,
};
use crate::error::{Error, Result};
use crate::space::{ScenarioAxis, ScenarioPoint, ScenarioSpace};
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::EnergySeries;
use iriscast_units::{
    Bounds, CarbonIntensity, CarbonMass, Period, Pue, SimDuration, Timestamp, TriEstimate,
};
use std::sync::OnceLock;

/// A fully resolved time-resolved assessment: one energy series, one
/// aligned intensity series per carbon-intensity axis sample, and the
/// scenario space they sweep. Built with
/// [`TimeResolvedAssessment::builder`].
///
/// The carbon-intensity axis of [`TimeResolvedAssessment::space`] holds
/// each series' *energy-weighted mean* intensity (`Σ Eᵢ·CIᵢ / Σ Eᵢ`) —
/// the scalar that, applied to the total energy, would reproduce the
/// convolved active carbon. Envelope, percentile and marginal queries on
/// the results therefore read exactly as they do for the scalar engine.
#[derive(Clone, Debug)]
pub struct TimeResolvedAssessment {
    energy: EnergySeries,
    servers: u32,
    window_days: f64,
    space: ScenarioSpace,
    /// Per CI-axis sample: intensity re-expressed on the energy grid
    /// (one value per energy slot).
    aligned: Vec<Vec<CarbonIntensity>>,
    /// Kernel tables — the per-(CI, PUE) convolutions and windowed fleet
    /// charges — built lazily on first evaluation and reused by every
    /// subsequent batch/stream/chunk call. This is the expensive part of
    /// a time-resolved evaluation (O(axes × slots)), so caching it makes
    /// repeated sweeps over the same assessment table-read cheap.
    tables: OnceLock<EvalTables>,
}

/// Equality is over the assessment's inputs; the lazily built kernel
/// -table cache is a derived artefact and deliberately not compared.
impl PartialEq for TimeResolvedAssessment {
    fn eq(&self, other: &Self) -> bool {
        self.energy == other.energy
            && self.servers == other.servers
            && self.window_days == other.window_days
            && self.space == other.space
            && self.aligned == other.aligned
    }
}

impl TimeResolvedAssessment {
    /// Starts a builder with nothing filled in.
    pub fn builder() -> TimeResolvedBuilder {
        TimeResolvedBuilder::default()
    }

    /// The measured per-slot energy being assessed.
    pub fn energy(&self) -> &EnergySeries {
        &self.energy
    }

    /// The fleet size amortised.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// The embodied window in days (the energy series' covered period).
    pub fn window_days(&self) -> f64 {
        self.window_days
    }

    /// The scenario space this assessment sweeps. The CI axis carries
    /// each series' energy-weighted mean intensity (see the type docs).
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// The intensity values of one CI-axis sample, aligned to the energy
    /// grid (one value per energy slot).
    pub fn aligned_intensity(&self, ci_index: usize) -> Result<&[CarbonIntensity]> {
        self.aligned
            .get(ci_index)
            .map(Vec::as_slice)
            .ok_or(Error::PointOutOfRange {
                index: ci_index,
                len: self.aligned.len(),
            })
    }

    /// The interval-by-interval convolution `Σᵢ PUE·Eᵢ·CIᵢ`, folded in
    /// slot order — the arithmetic every evaluation path shares (and the
    /// arithmetic a per-slot scalar summation reproduces bit-for-bit).
    fn convolve(&self, ci: &[CarbonIntensity], pue: Pue) -> CarbonMass {
        let mut acc = CarbonMass::ZERO;
        for (&e, &c) in self.energy.values().iter().zip(ci) {
            acc += pue.apply(e) * c;
        }
        acc
    }

    /// The windowed embodied charge for one (embodied, lifespan) pair.
    fn embodied_charge(&self, embodied_per_server: CarbonMass, lifespan_years: f64) -> CarbonMass {
        fleet_snapshot_daily(embodied_per_server, lifespan_years, self.servers) * self.window_days
    }

    /// Builds the shared kernel tables: one convolved active value per
    /// (CI series, PUE) pair, one windowed fleet charge per
    /// (embodied, lifespan) pair. Per-point evaluation cost downstream is
    /// independent of the series length. Built once, lazily, and cached
    /// (the assessment is immutable, so no invalidation is needed).
    fn tables(&self) -> &EvalTables {
        self.tables.get_or_init(|| {
            let mut active = Vec::with_capacity(self.aligned.len() * self.space.pue().len());
            for ci in &self.aligned {
                for &pue in self.space.pue() {
                    active.push(self.convolve(ci, pue));
                }
            }
            let mut embodied =
                Vec::with_capacity(self.space.embodied().len() * self.space.lifespan_years().len());
            for &e in self.space.embodied() {
                for &years in self.space.lifespan_years() {
                    embodied.push(self.embodied_charge(e, years));
                }
            }
            EvalTables { active, embodied }
        })
    }

    /// Evaluates one scenario point (integrated over the window).
    pub fn evaluate(&self, index: usize) -> Result<PointResult> {
        let point = self.space.point(index)?;
        let ci = &self.aligned[point.coords[0]];
        Ok(PointResult {
            point,
            outcome: PointOutcome {
                active: self.convolve(ci, point.pue),
                embodied: self.embodied_charge(point.embodied_per_server, point.lifespan_years),
            },
        })
    }

    /// The per-interval carbon trajectory of one scenario point.
    pub fn profile(&self, index: usize) -> Result<CarbonProfile> {
        let result = self.evaluate(index)?;
        let point = result.point;
        let ci = &self.aligned[point.coords[0]];
        let step_days = self.energy.step().as_days();
        let embodied_per_slot = fleet_snapshot_daily(
            point.embodied_per_server,
            point.lifespan_years,
            self.servers,
        ) * step_days;
        let active: Vec<CarbonMass> = self
            .energy
            .values()
            .iter()
            .zip(ci)
            .map(|(&e, &c)| point.pue.apply(e) * c)
            .collect();
        Ok(CarbonProfile {
            point,
            start: self.energy.start(),
            step: self.energy.step(),
            active,
            embodied_per_slot,
            integrated: result.outcome,
        })
    }

    /// Evaluates every point in the space, serially, in index order.
    /// Materialises full columns — use the streaming or chunked forms
    /// for spaces too large to hold.
    pub fn evaluate_space(&self) -> SpaceResults {
        materialise(&self.space, self.tables())
    }

    /// Evaluates the space into an existing [`SpaceResults`], reusing
    /// its buffers — the warm path for repeated day-sweeps (evaluate one
    /// day's assessment, recycle the results for the next). Values are
    /// bit-identical to [`TimeResolvedAssessment::evaluate_space`];
    /// after warm-up, same-shape sweeps allocate nothing. Any cached
    /// statistics view on `out` is invalidated and lazily rebuilt.
    pub fn evaluate_space_into(&self, out: &mut SpaceResults) {
        evaluate_into(&self.space, self.tables(), out);
    }

    /// [`TimeResolvedAssessment::evaluate_space`] chunked across
    /// `threads` OS threads, bit-identical to serial (`0` = available
    /// parallelism; small spaces fall back to serial — see
    /// [`crate::engine::PAR_SERIAL_CUTOFF`]).
    pub fn par_evaluate_space(&self, threads: usize) -> SpaceResults {
        par_materialise(&self.space, self.tables(), threads)
    }

    /// Streams every point, in index order, to `sink` without
    /// materialising result columns: memory stays O(axes), not
    /// O(points), so >10M-point day-sweeps run in a bounded footprint.
    pub fn stream_space(&self, sink: impl FnMut(PointResult)) {
        stream_points(&self.space, self.tables(), sink);
    }

    /// Streamed evaluation with the per-point arithmetic chunked across
    /// `threads` OS threads. Delivery order and every value are
    /// bit-identical to [`TimeResolvedAssessment::stream_space`].
    pub fn par_stream_space(&self, threads: usize, sink: impl FnMut(PointResult)) {
        par_stream_points(&self.space, self.tables(), threads, sink);
    }

    /// Iterates the space as materialised chunks of at most
    /// `chunk_points` points (clamped to ≥ 1); only one chunk is alive
    /// at a time.
    pub fn chunks(&self, chunk_points: usize) -> SpaceChunks<'_> {
        chunks_over(&self.space, self.tables().clone(), chunk_points)
    }
}

/// The per-interval carbon trajectory of one evaluated scenario:
/// active carbon per energy slot, the (constant) embodied charge each
/// slot carries, and the integrated outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct CarbonProfile {
    point: ScenarioPoint,
    start: Timestamp,
    step: SimDuration,
    active: Vec<CarbonMass>,
    embodied_per_slot: CarbonMass,
    integrated: PointOutcome,
}

impl CarbonProfile {
    /// The scenario this profile belongs to.
    pub fn point(&self) -> &ScenarioPoint {
        &self.point
    }

    /// First slot start.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Slot width.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of slots (= the energy series' length, ≥ 1).
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Always `false`: profiles inherit the energy series' non-emptiness.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Active carbon per slot, in slot order.
    pub fn active(&self) -> &[CarbonMass] {
        &self.active
    }

    /// The embodied charge apportioned to each slot (amortisation is
    /// uniform in time, so it is the same for every slot).
    pub fn embodied_per_slot(&self) -> CarbonMass {
        self.embodied_per_slot
    }

    /// The integrated outcome — identical to what
    /// [`TimeResolvedAssessment::evaluate`] returns for the same point.
    /// The per-slot values sum to it up to floating-point rounding.
    pub fn integrated(&self) -> PointOutcome {
        self.integrated
    }

    /// Iterates `(slot_period, outcome)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Period, PointOutcome)> + '_ {
        self.active.iter().enumerate().map(move |(i, &a)| {
            (
                Period::starting_at(self.start + self.step * i as i64, self.step),
                PointOutcome {
                    active: a,
                    embodied: self.embodied_per_slot,
                },
            )
        })
    }

    /// The slot with the highest active carbon (ties resolve to the
    /// earliest slot).
    pub fn dirtiest_slot(&self) -> (Period, CarbonMass) {
        self.extreme_slot(|a, b| a > b)
    }

    /// The slot with the lowest active carbon (ties resolve to the
    /// earliest slot).
    pub fn cleanest_slot(&self) -> (Period, CarbonMass) {
        self.extreme_slot(|a, b| a < b)
    }

    fn extreme_slot(
        &self,
        better: impl Fn(CarbonMass, CarbonMass) -> bool,
    ) -> (Period, CarbonMass) {
        let mut best = 0usize;
        for (i, &a) in self.active.iter().enumerate().skip(1) {
            if better(a, self.active[best]) {
                best = i;
            }
        }
        (
            Period::starting_at(self.start + self.step * best as i64, self.step),
            self.active[best],
        )
    }
}

/// Builder for [`TimeResolvedAssessment`]: an energy series, one or more
/// intensity series (the CI axis), and the same PUE/embodied/lifespan
/// axes and fleet parameters as the scalar
/// [`crate::engine::AssessmentBuilder`] (whose validation it reuses).
///
/// The embodied window is always the energy series' covered period —
/// time-resolved assessment charges embodied carbon for exactly the time
/// the telemetry covers.
#[derive(Clone, Debug, Default)]
pub struct TimeResolvedBuilder {
    inner: AssessmentBuilder,
    energy: Option<EnergySeries>,
    ci: Vec<IntensitySeries>,
}

impl TimeResolvedBuilder {
    /// Sets the measured per-slot energy (required).
    pub fn energy_series(mut self, series: EnergySeries) -> Self {
        self.energy = Some(series);
        self
    }

    /// Appends one intensity series to the CI axis (at least one is
    /// required). Series may live on any grid that aligns exactly with
    /// the energy grid — same-step with matching phase, a whole multiple
    /// coarser, or a whole multiple finer — and must cover the energy
    /// series' period; violations surface as
    /// [`Error::Units`]([`iriscast_units::UnitsError::GridMismatch`]) at
    /// [`TimeResolvedBuilder::build`].
    pub fn ci_series(mut self, series: IntensitySeries) -> Self {
        self.ci.push(series);
        self
    }

    /// Appends every series in `all` to the CI axis.
    pub fn ci_series_all(mut self, all: impl IntoIterator<Item = IntensitySeries>) -> Self {
        self.ci.extend(all);
        self
    }

    /// Sets the PUE axis.
    pub fn pue_axis(mut self, axis: ScenarioAxis<Pue>) -> Self {
        self.inner = self.inner.pue_axis(axis);
        self
    }

    /// PUE axis from a low/mid/high triple.
    pub fn pue_tri(mut self, tri: TriEstimate<Pue>) -> Self {
        self.inner = self.inner.pue_tri(tri);
        self
    }

    /// PUE axis from raw ratios (validated at
    /// [`TimeResolvedBuilder::build`]).
    pub fn pue_values(mut self, samples: &[f64]) -> Self {
        self.inner = self.inner.pue_values(samples);
        self
    }

    /// Sets the embodied-carbon axis (per-server).
    pub fn embodied_axis(mut self, axis: ScenarioAxis<CarbonMass>) -> Self {
        self.inner = self.inner.embodied_axis(axis);
        self
    }

    /// Embodied axis from published per-server bounds.
    pub fn embodied_bounds(mut self, bounds: Bounds<CarbonMass>) -> Self {
        self.inner = self.inner.embodied_bounds(bounds);
        self
    }

    /// Embodied axis of `n` evenly spaced samples across per-server
    /// bounds.
    pub fn embodied_linspace(mut self, bounds: Bounds<CarbonMass>, n: usize) -> Self {
        self.inner = self.inner.embodied_linspace(bounds, n);
        self
    }

    /// Sets the lifespan axis (years).
    pub fn lifespan_axis(mut self, axis: ScenarioAxis<f64>) -> Self {
        self.inner = self.inner.lifespan_axis(axis);
        self
    }

    /// Lifespan axis from whole-year samples.
    pub fn lifespans_years(mut self, years: &[u32]) -> Self {
        self.inner = self.inner.lifespans_years(years);
        self
    }

    /// Lifespan axis of `n` evenly spaced samples between `lo` and `hi`
    /// years.
    pub fn lifespan_linspace(mut self, lo: f64, hi: f64, n: usize) -> Self {
        self.inner = self.inner.lifespan_linspace(lo, hi, n);
        self
    }

    /// Sets the fleet size amortised (required).
    pub fn servers(mut self, servers: u32) -> Self {
        self.inner = self.inner.servers(servers);
        self
    }

    /// Validates, aligns every intensity series to the energy grid, and
    /// builds the [`TimeResolvedAssessment`].
    pub fn build(self) -> Result<TimeResolvedAssessment> {
        let energy = self.energy.ok_or(Error::MissingParameter {
            what: "energy series",
        })?;
        if self.ci.is_empty() {
            return Err(Error::EmptyAxis {
                axis: "carbon-intensity series".into(),
            });
        }
        let grid = energy.grid();
        let aligned = self
            .ci
            .iter()
            .map(|s| s.project_onto(&grid))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        // Each series' energy-weighted mean intensity becomes its scalar
        // CI-axis sample (a zero-energy window falls back to the plain
        // mean: any weighting of zero energy is equivalent).
        let total_energy = energy.total();
        let means: Vec<f64> = aligned
            .iter()
            .map(|ci| {
                if total_energy.joules() > 0.0 {
                    let mass: CarbonMass =
                        energy.values().iter().zip(ci).map(|(&e, &c)| e * c).sum();
                    mass.grams() / total_energy.kilowatt_hours()
                } else {
                    ci.iter().map(|c| c.grams_per_kwh()).sum::<f64>() / ci.len() as f64
                }
            })
            .collect();
        let scalar = self
            .inner
            .energy(total_energy)
            .ci_grams_per_kwh(&means)
            .window(grid.period().duration())
            .build()?;
        Ok(TimeResolvedAssessment {
            window_days: scalar.window_days(),
            servers: scalar.servers(),
            space: scalar.space().clone(),
            aligned,
            energy,
            tables: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use iriscast_units::Energy;

    fn flat_energy(slots: usize, kwh_per_slot: f64) -> EnergySeries {
        EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![Energy::from_kilowatt_hours(kwh_per_slot); slots],
        )
    }

    fn ramp_ci(slots: usize, base: f64, slope: f64) -> IntensitySeries {
        IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            (0..slots)
                .map(|i| CarbonIntensity::from_grams_per_kwh(base + slope * i as f64))
                .collect(),
        )
    }

    fn paper_shaped(energy: EnergySeries, ci: Vec<IntensitySeries>) -> TimeResolvedAssessment {
        TimeResolvedAssessment::builder()
            .energy_series(energy)
            .ci_series_all(ci)
            .pue_values(&[1.1, 1.3, 1.5])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[3, 5, 7])
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_energy_and_ci_series() {
        let err = TimeResolvedAssessment::builder().build().unwrap_err();
        assert_eq!(
            err,
            Error::MissingParameter {
                what: "energy series"
            }
        );
        let err = TimeResolvedAssessment::builder()
            .energy_series(flat_energy(4, 10.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::EmptyAxis { .. }), "{err}");
        // Inner-builder validation still applies (missing PUE axis…).
        let err = TimeResolvedAssessment::builder()
            .energy_series(flat_energy(4, 10.0))
            .ci_series(ramp_ci(4, 100.0, 0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::MissingParameter { .. }), "{err}");
    }

    #[test]
    fn misaligned_series_is_a_typed_error() {
        // CI covers only half the energy window.
        let err = TimeResolvedAssessment::builder()
            .energy_series(flat_energy(48, 10.0))
            .ci_series(ramp_ci(24, 100.0, 1.0))
            .pue_values(&[1.3])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[5])
            .servers(100)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Units(_)), "{err}");
    }

    #[test]
    fn constant_intensity_matches_scalar_engine() {
        let energy = flat_energy(48, 403.75); // 19,380 kWh total
        let a = paper_shaped(energy.clone(), vec![ramp_ci(48, 175.0, 0.0)]);
        assert!((a.window_days() - 1.0).abs() < 1e-12);
        let scalar = crate::engine::Assessment::builder()
            .energy(energy.total())
            .ci_grams_per_kwh(&[175.0])
            .pue_values(&[1.1, 1.3, 1.5])
            .embodied_bounds(paper::server_embodied_bounds())
            .lifespans_years(&[3, 5, 7])
            .servers(paper::AMORTISATION_FLEET_SERVERS)
            .build()
            .unwrap();
        let tr = a.evaluate_space();
        let sc = scalar.evaluate_space();
        assert_eq!(tr.len(), sc.len());
        for (t, s) in tr.totals().iter().zip(sc.totals()) {
            assert!((t.grams() - s.grams()).abs() < 1e-6 * s.grams().max(1.0));
        }
        // Embodied columns are exactly equal (same arithmetic).
        assert_eq!(tr.embodied(), sc.embodied());
    }

    #[test]
    fn weighted_mean_ci_lands_on_the_axis() {
        // Energy all in the second half; CI 100 then 300 → weighted 300.
        let mut slots = vec![Energy::ZERO; 24];
        slots.extend(vec![Energy::from_kilowatt_hours(10.0); 24]);
        let energy = EnergySeries::new(Timestamp::EPOCH, SimDuration::SETTLEMENT_PERIOD, slots);
        let mut ci = vec![CarbonIntensity::from_grams_per_kwh(100.0); 24];
        ci.extend(vec![CarbonIntensity::from_grams_per_kwh(300.0); 24]);
        let series = IntensitySeries::new(Timestamp::EPOCH, SimDuration::SETTLEMENT_PERIOD, ci);
        let a = paper_shaped(energy, vec![series]);
        let axis_ci = a.space().ci().samples()[0];
        assert!((axis_ci.grams_per_kwh() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn coarser_and_finer_ci_grids_align_exactly() {
        let energy = flat_energy(48, 10.0);
        // Hourly CI (coarser, repeated) and 10-minute CI (finer, averaged).
        let hourly = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::HOUR,
            (0..24)
                .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + f64::from(i)))
                .collect(),
        );
        let fine = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::from_minutes(10),
            (0..144)
                .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + f64::from(i % 3)))
                .collect(),
        );
        let a = paper_shaped(energy, vec![hourly, fine]);
        let first = a.aligned_intensity(0).unwrap();
        assert_eq!(first.len(), 48);
        assert_eq!(first[0].grams_per_kwh(), 100.0);
        assert_eq!(first[1].grams_per_kwh(), 100.0); // repeated hour value
        assert_eq!(first[2].grams_per_kwh(), 101.0);
        let second = a.aligned_intensity(1).unwrap();
        assert_eq!(second.len(), 48);
        assert_eq!(second[0].grams_per_kwh(), 101.0); // mean of 100/101/102
        assert!(a.aligned_intensity(2).is_err());
    }

    #[test]
    fn every_batch_path_is_bit_identical() {
        let energy = flat_energy(48, 12.5);
        let a = paper_shaped(
            energy,
            vec![
                ramp_ci(48, 60.0, 1.0),
                ramp_ci(48, 280.0, -2.0),
                ramp_ci(48, 175.0, 0.0),
            ],
        );
        let results = a.evaluate_space();
        assert_eq!(results.len(), 3 * 3 * 2 * 3);
        let par = a.par_evaluate_space(4);
        assert_eq!(results, par);

        let mut streamed = Vec::new();
        a.stream_space(|p| streamed.push(p));
        let mut par_streamed = Vec::new();
        a.par_stream_space(3, |p| par_streamed.push(p));
        assert_eq!(streamed, par_streamed);
        for (i, p) in streamed.iter().enumerate() {
            assert_eq!(*p, results.get(i).unwrap(), "point {i}");
            assert_eq!(*p, a.evaluate(i).unwrap(), "point {i}");
        }
        let mut idx = 0;
        for chunk in a.chunks(11) {
            for k in 0..chunk.len() {
                assert_eq!(chunk.total[k], results.totals()[idx + k]);
            }
            idx += chunk.len();
        }
        assert_eq!(idx, results.len());
        assert!(a.evaluate(results.len()).is_err());
    }

    #[test]
    fn profile_slots_sum_to_integrated() {
        let energy = flat_energy(48, 10.0);
        let a = paper_shaped(energy, vec![ramp_ci(48, 50.0, 5.0)]);
        let profile = a.profile(7).unwrap();
        assert_eq!(profile.len(), 48);
        assert!(!profile.is_empty());
        assert_eq!(profile.step(), SimDuration::SETTLEMENT_PERIOD);
        let integrated = profile.integrated();
        assert_eq!(integrated, a.evaluate(7).unwrap().outcome);
        let active_sum: CarbonMass = profile.active().iter().copied().sum();
        assert!((active_sum.grams() - integrated.active.grams()).abs() < 1e-6);
        let embodied_sum = profile.embodied_per_slot() * profile.len() as f64;
        assert!(
            (embodied_sum.grams() - integrated.embodied.grams()).abs()
                < 1e-9 * integrated.embodied.grams()
        );
        // Slot iteration tiles the window.
        let slots: Vec<Period> = profile.iter().map(|(p, _)| p).collect();
        assert_eq!(slots.len(), 48);
        for w in slots.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
        // Ramp: cleanest first slot, dirtiest last slot.
        let (clean, c_val) = profile.cleanest_slot();
        let (dirty, d_val) = profile.dirtiest_slot();
        assert_eq!(clean.start(), Timestamp::EPOCH);
        assert_eq!(dirty.end(), Timestamp::from_days(1));
        assert!(c_val < d_val);
        assert!(a.profile(a.space().len()).is_err());
    }

    #[test]
    fn dst_length_days_are_first_class() {
        // A 23-hour (spring-forward) and a 25-hour (fall-back) "day":
        // nothing assumes 48 settlement periods.
        for slots in [46usize, 50] {
            let energy = flat_energy(slots, 10.0);
            let a = paper_shaped(energy, vec![ramp_ci(slots, 100.0, 1.0)]);
            assert_eq!(a.energy().len(), slots);
            let expected_days = slots as f64 / 48.0;
            assert!((a.window_days() - expected_days).abs() < 1e-12);
            let results = a.evaluate_space();
            let mut streamed = Vec::new();
            a.stream_space(|p| streamed.push(p.outcome.total()));
            assert_eq!(streamed.as_slice(), results.totals());
        }
    }

    #[test]
    fn zero_energy_windows_fall_back_to_plain_mean() {
        let energy = EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![Energy::ZERO; 4],
        );
        let a = paper_shaped(energy, vec![ramp_ci(4, 100.0, 100.0)]);
        // Plain mean of 100/200/300/400.
        assert!((a.space().ci().samples()[0].grams_per_kwh() - 250.0).abs() < 1e-9);
        let results = a.evaluate_space();
        for &active in results.active() {
            assert_eq!(active, CarbonMass::ZERO);
        }
    }
}
