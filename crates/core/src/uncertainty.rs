//! Monte-Carlo propagation of the model's parameter uncertainty.
//!
//! The paper propagates uncertainty by hand: three CI values × three PUEs
//! × two embodied bounds × five lifespans. Sampling the same parameter
//! space instead yields a *distribution* of totals — and shows that the
//! table extremes are genuinely extreme (the corner scenarios require
//! every parameter to be simultaneously at its bound).
//!
//! Each sample is one scenario point evaluated through
//! [`crate::engine::evaluate_one`] — the same kernel the deterministic
//! scenario-space sweeps use, so Monte-Carlo totals and grid totals are
//! directly comparable.

use crate::engine::evaluate_one;
use crate::paper;
use iriscast_grid::stats;
use iriscast_grid::IntensitySeries;
use iriscast_units::{CarbonMass, Energy, Pue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameter distributions for the Monte-Carlo assessment.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// IT energy for the window (treated as exact; measurement error is
    /// negligible next to parameter uncertainty).
    pub it_energy: Energy,
    /// Carbon-intensity sample source: draws a random interval from a
    /// simulated grid month, capturing real temporal correlation.
    pub intensity: IntensitySeries,
    /// PUE triangular distribution `(min, mode, max)`.
    pub pue: (f64, f64, f64),
    /// Per-server embodied uniform bounds, kg.
    pub embodied_kg: (f64, f64),
    /// Lifespan uniform bounds, years.
    pub lifespan_years: (f64, f64),
    /// Fleet size.
    pub servers: u32,
}

impl McConfig {
    /// The paper's parameter space over a given intensity series.
    pub fn paper(intensity: IntensitySeries) -> Self {
        McConfig {
            it_energy: paper::effective_energy(),
            intensity,
            pue: (1.1, 1.3, 1.6),
            embodied_kg: (400.0, 1_100.0),
            lifespan_years: (3.0, 7.0),
            servers: paper::AMORTISATION_FLEET_SERVERS,
        }
    }
}

/// Summary of the sampled total-carbon distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// Samples drawn.
    pub samples: usize,
    /// Mean total.
    pub mean: CarbonMass,
    /// 5th percentile.
    pub p5: CarbonMass,
    /// Median.
    pub p50: CarbonMass,
    /// 95th percentile.
    pub p95: CarbonMass,
    /// Mean embodied share of the total.
    pub mean_embodied_share: f64,
}

/// Triangular sample on `(min, mode, max)` by inverse CDF.
fn triangular(rng: &mut impl Rng, min: f64, mode: f64, max: f64) -> f64 {
    assert!(min <= mode && mode <= max && min < max, "bad triangle");
    let u: f64 = rng.gen();
    let fc = (mode - min) / (max - min);
    if u < fc {
        min + (u * (max - min) * (mode - min)).sqrt()
    } else {
        max - ((1.0 - u) * (max - min) * (max - mode)).sqrt()
    }
}

/// Runs the Monte-Carlo assessment.
///
/// # Panics
/// If the sampled totals contain `NaN` — only possible when `config`
/// carries non-finite inputs (e.g. a `NaN` energy or PUE corner), since
/// the quantile summary refuses to rank `NaN`s. (An earlier revision
/// silently sorted them into the high quantiles instead.)
pub fn run(config: &McConfig, samples: usize, seed: u64) -> McResult {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut totals = Vec::with_capacity(samples);
    let mut shares = 0.0;
    let values = config.intensity.values();
    for _ in 0..samples {
        // CI: a random day's mean from the series (a snapshot lands on
        // one day, not on the monthly percentile extremes).
        let day_slots = 48.min(values.len());
        let start = rng.gen_range(0..=values.len() - day_slots);
        let ci_mean: f64 = values[start..start + day_slots]
            .iter()
            .map(|v| v.grams_per_kwh())
            .sum::<f64>()
            / day_slots as f64;
        let ci = iriscast_units::CarbonIntensity::from_grams_per_kwh(ci_mean);

        let pue = Pue::new(triangular(
            &mut rng,
            config.pue.0,
            config.pue.1,
            config.pue.2,
        ))
        .expect("triangle within valid PUE range");
        let embodied_per_server =
            CarbonMass::from_kilograms(rng.gen_range(config.embodied_kg.0..=config.embodied_kg.1));
        let lifespan = rng.gen_range(config.lifespan_years.0..=config.lifespan_years.1);

        let outcome = evaluate_one(
            config.it_energy,
            config.servers,
            1.0,
            ci,
            pue,
            embodied_per_server,
            lifespan,
        );
        shares += outcome.embodied_share();
        totals.push(outcome.total().kilograms());
    }
    let mean = stats::mean(&totals).expect("non-empty");
    // One sort answers all three quantiles (an earlier revision sorted
    // the sample three times).
    let ps =
        stats::percentiles(&totals, &[0.05, 0.50, 0.95]).expect("sample is non-empty and NaN-free");
    McResult {
        samples,
        mean: CarbonMass::from_kilograms(mean),
        p5: CarbonMass::from_kilograms(ps[0]),
        p50: CarbonMass::from_kilograms(ps[1]),
        p95: CarbonMass::from_kilograms(ps[2]),
        mean_embodied_share: shares / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_grid::scenario::uk_november_2022;

    fn config() -> McConfig {
        McConfig::paper(uk_november_2022(11).simulate().intensity().clone())
    }

    #[test]
    fn distribution_sits_inside_paper_envelope() {
        let r = run(&config(), 4_000, 7);
        // §6 envelope: 1,441–11,711 kg. The MC p5/p95 must be interior.
        assert!(r.p5.kilograms() > 1_441.0, "p5 {}", r.p5.kilograms());
        assert!(r.p95.kilograms() < 11_711.0, "p95 {}", r.p95.kilograms());
        assert!(r.p5 < r.p50 && r.p50 < r.p95);
        // Central mass around the paper's medium scenario (4,409 + ~700).
        assert!(
            (2_500.0..=8_000.0).contains(&r.p50.kilograms()),
            "median {}",
            r.p50.kilograms()
        );
    }

    #[test]
    fn embodied_share_is_minor_today() {
        let r = run(&config(), 2_000, 3);
        assert!(
            r.mean_embodied_share > 0.05 && r.mean_embodied_share < 0.5,
            "share {}",
            r.mean_embodied_share
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&config(), 500, 42);
        let b = run(&config(), 500, 42);
        assert_eq!(a, b);
        let c = run(&config(), 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn triangular_respects_bounds_and_mode() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let x = triangular(&mut rng, 1.1, 1.3, 1.6);
            assert!((1.1..=1.6).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        // Triangle mean = (a+b+c)/3 = 1.3333.
        assert!((mean - 4.0 / 3.0).abs() < 0.005, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = run(&config(), 0, 1);
    }
}
