//! Property-based tests for the carbon model's invariants.

use iriscast_grid::IntensitySeries;
use iriscast_model::embodied::{fleet_snapshot_daily, AmortizationPolicy};
use iriscast_model::engine::evaluate_one;
use iriscast_model::netzero::{project, DecarbonisationPathway, SteadyStateDri};
use iriscast_model::{
    ActiveCarbonGrid, Assessment, EmbodiedSweep, FleetScenario, TimeResolvedAssessment,
};
use iriscast_telemetry::{EnergySeries, SiteCollector, TelemetryError};
use iriscast_units::{
    Bounds, CarbonIntensity, CarbonMass, Energy, Pue, SimDuration, Timestamp, TriEstimate,
};
use proptest::prelude::*;

/// A time-resolved assessment over `slots` settlement periods of varying
/// energy, with `n_ci` intensity series sampled `fine`× finer than the
/// energy grid (fine = 1 means same-step).
#[allow(clippy::too_many_arguments)] // one knob per generated axis
fn time_resolved_fixture(
    slots: usize,
    kwh: f64,
    fine: usize,
    n_ci: usize,
    n_pue: usize,
    n_emb: usize,
    n_life: usize,
    servers: u32,
) -> TimeResolvedAssessment {
    let energy = EnergySeries::new(
        Timestamp::EPOCH,
        SimDuration::SETTLEMENT_PERIOD,
        (0..slots)
            .map(|i| Energy::from_kilowatt_hours(kwh * (1.0 + (i % 7) as f64)))
            .collect(),
    );
    let ci_step = SimDuration::from_secs(SimDuration::SETTLEMENT_PERIOD.as_secs() / fine as i64);
    let ci_series = (0..n_ci).map(|k| {
        IntensitySeries::new(
            Timestamp::EPOCH,
            ci_step,
            (0..slots * fine)
                .map(|i| {
                    CarbonIntensity::from_grams_per_kwh(
                        40.0 + 60.0 * k as f64 + 3.0 * (i % 11) as f64,
                    )
                })
                .collect(),
        )
    });
    TimeResolvedAssessment::builder()
        .energy_series(energy)
        .ci_series_all(ci_series)
        .pue_values(&[1.1, 1.2, 1.35, 1.5][..n_pue])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            n_emb,
        )
        .lifespan_linspace(2.0, 8.0, n_life)
        .servers(servers)
        .build()
        .expect("fixture axes are valid and aligned")
}

fn ordered_triple(lo: f64, hi: f64) -> impl Strategy<Value = (f64, f64, f64)> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort_by(f64::total_cmp);
        (v[0], v[1], v[2])
    })
}

proptest! {
    /// Every amortisation policy conserves the embodied total over the
    /// lifetime, for arbitrary lifespans and partitions.
    #[test]
    fn amortisation_conserves(
        total_kg in 1.0..5_000.0f64,
        lifespan_years in 0.5..15.0f64,
        parts in 1usize..40,
        rate in 0.05..0.9f64,
        usage in 0.1..3.0f64,
    ) {
        let total = CarbonMass::from_kilograms(total_kg);
        let life = SimDuration::from_years(lifespan_years);
        let window = SimDuration::from_secs(life.as_secs() / parts as i64);
        prop_assume!(window.as_secs() > 0);
        for policy in [
            AmortizationPolicy::Linear,
            AmortizationPolicy::DecliningBalance { rate },
        ] {
            let mut sum = CarbonMass::ZERO;
            for p in 0..parts {
                sum += policy.charge(total, life, window * p as i64, window);
            }
            // The final window may undershoot end-of-life by division
            // remainder; add the tail.
            let covered = window * parts as i64;
            if covered < life {
                sum += policy.charge(total, life, covered, life - covered);
            }
            prop_assert!(
                (sum.kilograms() - total_kg).abs() < total_kg * 1e-9 + 1e-6,
                "{policy:?}: {} vs {total_kg}",
                sum.kilograms()
            );
        }
        // Usage-weighted at constant relative usage u sums to u × total.
        let policy = AmortizationPolicy::UsageWeighted { relative_usage: usage };
        let whole = policy.charge(total, life, SimDuration::ZERO, life);
        prop_assert!((whole.kilograms() - total_kg * usage).abs() < 1e-6);
    }

    /// Charges are additive in the window: charge(a, w1+w2) =
    /// charge(a, w1) + charge(a+w1, w2), for every policy.
    #[test]
    fn amortisation_additive(
        total_kg in 1.0..5_000.0f64,
        lifespan_years in 1.0..15.0f64,
        a_frac in 0.0..1.0f64,
        w1_frac in 0.0..1.0f64,
        w2_frac in 0.0..1.0f64,
        rate in 0.05..0.9f64,
    ) {
        let total = CarbonMass::from_kilograms(total_kg);
        let life = SimDuration::from_years(lifespan_years);
        let age = SimDuration::from_secs((life.as_secs() as f64 * a_frac) as i64);
        let w1 = SimDuration::from_secs((life.as_secs() as f64 * w1_frac * 0.5) as i64);
        let w2 = SimDuration::from_secs((life.as_secs() as f64 * w2_frac * 0.5) as i64);
        for policy in [
            AmortizationPolicy::Linear,
            AmortizationPolicy::DecliningBalance { rate },
        ] {
            let joined = policy.charge(total, life, age, w1 + w2);
            let split = policy.charge(total, life, age, w1)
                + policy.charge(total, life, age + w1, w2);
            prop_assert!(
                (joined.grams() - split.grams()).abs() < total_kg * 1e-6 + 1e-6,
                "{policy:?}"
            );
        }
    }

    /// Table 3-style grids are monotone in energy, CI and PUE.
    #[test]
    fn active_grid_monotone(
        kwh1 in 100.0..1e6f64,
        kwh2 in 100.0..1e6f64,
        (ci_lo, ci_mid, ci_hi) in ordered_triple(1.0, 900.0),
        (pue_lo, pue_mid, pue_hi) in ordered_triple(1.0, 2.5),
    ) {
        let ci = TriEstimate::new(
            CarbonIntensity::from_grams_per_kwh(ci_lo),
            CarbonIntensity::from_grams_per_kwh(ci_mid),
            CarbonIntensity::from_grams_per_kwh(ci_hi),
        );
        let pue = TriEstimate::new(
            Pue::new(pue_lo).unwrap(),
            Pue::new(pue_mid).unwrap(),
            Pue::new(pue_hi).unwrap(),
        );
        let (e_lo, e_hi) = if kwh1 <= kwh2 { (kwh1, kwh2) } else { (kwh2, kwh1) };
        let g_small = ActiveCarbonGrid::compute(Energy::from_kilowatt_hours(e_lo), ci, pue);
        let g_big = ActiveCarbonGrid::compute(Energy::from_kilowatt_hours(e_hi), ci, pue);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!(g_small.cells[i][j] <= g_big.cells[i][j]);
                if j < 2 {
                    prop_assert!(g_small.cells[i][j] <= g_small.cells[i][j + 1]);
                }
                if i < 2 {
                    prop_assert!(g_small.cells[i][j] <= g_small.cells[i + 1][j]);
                }
            }
        }
        // Envelope really brackets all cells.
        let env = g_big.envelope();
        for row in &g_big.cells {
            for c in row {
                prop_assert!(*c >= env.lo && *c <= env.hi);
            }
        }
    }

    /// Embodied sweeps scale linearly in fleet size and inversely in
    /// lifespan.
    #[test]
    fn embodied_sweep_scaling(
        lo_kg in 50.0..800.0f64,
        hi_extra in 0.0..1_000.0f64,
        servers in 1u32..10_000,
    ) {
        let bounds = Bounds::new(
            CarbonMass::from_kilograms(lo_kg),
            CarbonMass::from_kilograms(lo_kg + hi_extra),
        );
        let sweep1 = EmbodiedSweep::compute(bounds, &[3, 4, 5, 6, 7], servers);
        let sweep2 = EmbodiedSweep::compute(bounds, &[3, 4, 5, 6, 7], servers * 2);
        for (a, b) in sweep1.rows.iter().zip(sweep2.rows.iter()) {
            prop_assert!(
                (b.fleet_snapshot.lo.grams() - 2.0 * a.fleet_snapshot.lo.grams()).abs()
                    < a.fleet_snapshot.lo.grams() * 1e-12 + 1e-6
            );
        }
        // Inverse in lifespan: year y row × y == year 1 charge.
        for row in &sweep1.rows {
            let daily_y1 = bounds.lo.grams() / 365.0;
            let scaled = row.per_server_daily.lo.grams() * f64::from(row.lifespan_years);
            prop_assert!((scaled - daily_y1).abs() < daily_y1 * 1e-9 + 1e-9);
        }
    }

    /// The engine on 3-sample axes reproduces the Table 3 adapter
    /// cell-for-cell — and both match the paper's formula
    /// `(E × PUE) × CI` computed independently — for arbitrary valid
    /// inputs.
    #[test]
    fn engine_reproduces_active_grid_cell_for_cell(
        kwh in 100.0..1e6f64,
        (ci_lo, ci_mid, ci_hi) in ordered_triple(1.0, 900.0),
        (pue_lo, pue_mid, pue_hi) in ordered_triple(1.0, 2.5),
    ) {
        let energy = Energy::from_kilowatt_hours(kwh);
        let ci = TriEstimate::new(
            CarbonIntensity::from_grams_per_kwh(ci_lo),
            CarbonIntensity::from_grams_per_kwh(ci_mid),
            CarbonIntensity::from_grams_per_kwh(ci_hi),
        );
        let pue = TriEstimate::new(
            Pue::new(pue_lo).unwrap(),
            Pue::new(pue_mid).unwrap(),
            Pue::new(pue_hi).unwrap(),
        );
        let grid = ActiveCarbonGrid::compute(energy, ci, pue);
        let results = Assessment::builder()
            .energy(energy)
            .ci_tri(ci)
            .pue_tri(pue)
            .embodied_bounds(Bounds::new(CarbonMass::ZERO, CarbonMass::ZERO))
            .lifespans_years(&[1])
            .servers(0)
            .build()
            .unwrap()
            .evaluate_space();
        prop_assert_eq!(results.len(), 18);
        let cis = [ci.low, ci.mid, ci.high];
        let pues = [pue.low, pue.mid, pue.high];
        for (i, &ci_val) in cis.iter().enumerate() {
            for (j, &pue_val) in pues.iter().enumerate() {
                // Two embodied samples per (ci, pue): both carry the
                // same active value.
                let idx = (i * 3 + j) * 2;
                prop_assert_eq!(grid.cells[i][j], results.active()[idx]);
                prop_assert_eq!(results.active()[idx], results.active()[idx + 1]);
                // The paper's formula, computed outside the engine.
                let direct = pue_val.apply(energy) * ci_val;
                prop_assert_eq!(grid.cells[i][j], direct);
            }
        }
    }

    /// The engine on a 2 × n embodied/lifespan space reproduces the
    /// Table 4 adapter cell-for-cell, and both match the amortisation
    /// formula directly.
    #[test]
    fn engine_reproduces_embodied_sweep_cell_for_cell(
        lo_kg in 50.0..800.0f64,
        hi_extra in 0.0..1_000.0f64,
        servers in 1u32..10_000,
        lifespans in prop::collection::vec(1u32..15, 1..8),
    ) {
        let bounds = Bounds::new(
            CarbonMass::from_kilograms(lo_kg),
            CarbonMass::from_kilograms(lo_kg + hi_extra),
        );
        let sweep = EmbodiedSweep::try_compute(bounds, &lifespans, servers).unwrap();
        prop_assert_eq!(sweep.rows.len(), lifespans.len());
        for (row, &years) in sweep.rows.iter().zip(&lifespans) {
            let y = f64::from(years);
            prop_assert_eq!(row.lifespan_years, years);
            prop_assert_eq!(
                row.fleet_snapshot.lo,
                fleet_snapshot_daily(bounds.lo, y, servers)
            );
            prop_assert_eq!(
                row.fleet_snapshot.hi,
                fleet_snapshot_daily(bounds.hi, y, servers)
            );
        }
        // The envelope is total (no panic) and brackets every cell.
        let env = sweep.try_envelope().unwrap();
        for row in &sweep.rows {
            prop_assert!(env.lo <= row.fleet_snapshot.lo);
            prop_assert!(env.hi >= row.fleet_snapshot.hi);
        }
    }

    /// `par_evaluate_space` is bit-identical to `evaluate_space` for any
    /// space shape and thread count.
    #[test]
    fn parallel_evaluation_matches_serial(
        kwh in 100.0..1e6f64,
        n_ci in 1usize..6,
        n_pue in 1usize..5,
        n_emb in 1usize..5,
        n_life in 1usize..6,
        threads in 0usize..9,
        servers in 0u32..5_000,
    ) {
        let a = Assessment::builder()
            .energy(Energy::from_kilowatt_hours(kwh))
            .ci_axis(iriscast_model::ScenarioAxis::linspace(
                "ci",
                Bounds::new(
                    CarbonIntensity::from_grams_per_kwh(10.0),
                    CarbonIntensity::from_grams_per_kwh(500.0),
                ),
                n_ci,
            ).unwrap())
            .pue_axis(iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.05).unwrap(), Pue::new(2.2).unwrap()),
                n_pue,
            ).unwrap())
            .embodied_linspace(
                Bounds::new(
                    CarbonMass::from_kilograms(100.0),
                    CarbonMass::from_kilograms(1_500.0),
                ),
                n_emb,
            )
            .lifespan_linspace(1.0, 12.0, n_life)
            .servers(servers)
            .build()
            .unwrap();
        let serial = a.evaluate_space();
        prop_assert_eq!(serial.len(), n_ci * n_pue * n_emb * n_life);
        let par = a.par_evaluate_space(threads);
        prop_assert_eq!(&serial, &par);
        // Exactness, not tolerance: every column, every point.
        prop_assert_eq!(serial.totals(), par.totals());
        prop_assert_eq!(serial.active(), par.active());
        prop_assert_eq!(serial.embodied(), par.embodied());
    }

    /// Time-resolved evaluation: the streamed, materialised, chunked and
    /// parallel paths agree bit-for-bit, and each point equals the
    /// per-slot scalar summation through `evaluate_one` — the property
    /// that makes the time-resolved engine a strict generalisation of
    /// the scalar one.
    #[test]
    fn time_resolved_streamed_materialised_scalar_summed_agree(
        slots in 1usize..80,
        kwh in 0.01..50.0f64,
        fine in 1usize..4,
        n_ci in 1usize..4,
        n_pue in 1usize..5,
        n_emb in 1usize..3,
        n_life in 1usize..4,
        threads in 0usize..5,
        servers in 1u32..5_000,
    ) {
        let a = time_resolved_fixture(slots, kwh, fine, n_ci, n_pue, n_emb, n_life, servers);
        let results = a.evaluate_space();
        prop_assert_eq!(results.len(), n_ci * n_pue * n_emb * n_life);

        // Materialised ≡ parallel-materialised.
        let par = a.par_evaluate_space(threads);
        prop_assert_eq!(&results, &par);

        // Materialised ≡ streamed ≡ parallel-streamed, point for point.
        let mut streamed = Vec::with_capacity(results.len());
        a.stream_space(|p| streamed.push(p));
        let mut par_streamed = Vec::with_capacity(results.len());
        a.par_stream_space(threads, |p| par_streamed.push(p));
        prop_assert_eq!(&streamed, &par_streamed);
        for (i, p) in streamed.iter().enumerate() {
            prop_assert_eq!(*p, results.get(i).unwrap());
            prop_assert_eq!(*p, a.evaluate(i).unwrap());
        }

        // Materialised ≡ chunked (uneven chunk size on purpose).
        let mut idx = 0;
        for chunk in a.chunks(13) {
            prop_assert_eq!(chunk.start, idx);
            for k in 0..chunk.len() {
                prop_assert_eq!(chunk.active[k], results.active()[idx + k]);
                prop_assert_eq!(chunk.embodied[k], results.embodied()[idx + k]);
                prop_assert_eq!(chunk.total[k], results.totals()[idx + k]);
            }
            idx += chunk.len();
        }
        prop_assert_eq!(idx, results.len());

        // Every point ≡ the scalar kernel summed slot by slot.
        for index in [0, results.len() / 2, results.len() - 1] {
            let p = results.get(index).unwrap();
            let aligned = a.aligned_intensity(p.point.coords[0]).unwrap();
            let mut active = CarbonMass::ZERO;
            for (&e, &c) in a.energy().values().iter().zip(aligned) {
                active += evaluate_one(
                    e,
                    servers,
                    1.0,
                    c,
                    p.point.pue,
                    p.point.embodied_per_server,
                    p.point.lifespan_years,
                )
                .active;
            }
            prop_assert_eq!(active, p.outcome.active);
            let embodied = evaluate_one(
                Energy::ZERO,
                servers,
                a.window_days(),
                CarbonIntensity::ZERO,
                p.point.pue,
                p.point.embodied_per_server,
                p.point.lifespan_years,
            )
            .embodied;
            prop_assert_eq!(embodied, p.outcome.embodied);

            // The per-interval profile integrates to the same outcome.
            let profile = a.profile(index).unwrap();
            prop_assert_eq!(profile.integrated(), p.outcome);
            let slot_sum: CarbonMass = profile.active().iter().copied().sum();
            prop_assert!(
                (slot_sum.grams() - p.outcome.active.grams()).abs()
                    <= 1e-9 * p.outcome.active.grams() + 1e-9
            );
        }

        // The energy-weighted mean CI on the axis reproduces the
        // convolution through the scalar formula (to float tolerance).
        for (ci_i, &mean_ci) in a.space().ci().samples().iter().enumerate() {
            let coords = [ci_i, 0, 0, 0];
            let index = a.space().index_of(coords).unwrap();
            let p = results.get(index).unwrap();
            let scalar = p.point.pue.apply(a.energy().total()) * mean_ci;
            prop_assert!(
                (scalar.grams() - p.outcome.active.grams()).abs()
                    <= 1e-6 * p.outcome.active.grams() + 1e-9,
                "{} vs {}",
                scalar.grams(),
                p.outcome.active.grams()
            );
        }
    }

    /// Series that cannot be aligned exactly — too short, phase-skewed,
    /// or on a non-multiple step — surface as typed errors at build,
    /// never as silent interpolation.
    #[test]
    fn time_resolved_misalignment_is_always_a_typed_error(
        slots in 2usize..60,
        skew in 1i64..1_800,
    ) {
        let energy = EnergySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            vec![Energy::from_kilowatt_hours(10.0); slots],
        );
        let ci_values = |n: usize| -> Vec<CarbonIntensity> {
            (0..n)
                .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + i as f64))
                .collect()
        };
        let build = |series: IntensitySeries| {
            TimeResolvedAssessment::builder()
                .energy_series(energy.clone())
                .ci_series(series)
                .pue_values(&[1.3])
                .embodied_linspace(
                    Bounds::new(
                        CarbonMass::from_kilograms(400.0),
                        CarbonMass::from_kilograms(1_100.0),
                    ),
                    2,
                )
                .lifespan_linspace(3.0, 7.0, 2)
                .servers(100)
                .build()
        };
        // Mismatched length: one slot short of covering the window.
        let short = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            ci_values(slots - 1),
        );
        prop_assert!(matches!(
            build(short),
            Err(iriscast_model::Error::Units(_))
        ));
        // Phase skew: same step, start offset by a fraction of a slot.
        let skewed = IntensitySeries::new(
            Timestamp::from_secs(-skew),
            SimDuration::SETTLEMENT_PERIOD,
            ci_values(slots + 1),
        );
        prop_assert!(matches!(
            build(skewed),
            Err(iriscast_model::Error::Units(_))
        ));
        // Non-multiple step: 25 minutes vs 30-minute energy slots.
        let odd = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::from_minutes(25),
            ci_values(slots * 2),
        );
        prop_assert!(matches!(build(odd), Err(iriscast_model::Error::Units(_))));
        // A same-grid series still builds (control).
        let ok = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            ci_values(slots),
        );
        prop_assert!(build(ok).is_ok());
    }

    /// Every quantile path — cached sorted view, batch-over-one-sort,
    /// `select_nth` one-shot — agrees exactly with the naive
    /// sort-per-call definition, for arbitrary spaces and quantiles.
    #[test]
    fn quantile_paths_agree_with_naive_sort_per_call(
        kwh in 100.0..1e6f64,
        n_ci in 1usize..6,
        n_pue in 1usize..5,
        n_emb in 1usize..5,
        n_life in 1usize..6,
        qs in prop::collection::vec(0.0..=1.0f64, 1..8),
        servers in 0u32..5_000,
    ) {
        let a = Assessment::builder()
            .energy(Energy::from_kilowatt_hours(kwh))
            .ci_axis(iriscast_model::ScenarioAxis::linspace(
                "ci",
                Bounds::new(
                    CarbonIntensity::from_grams_per_kwh(10.0),
                    CarbonIntensity::from_grams_per_kwh(500.0),
                ),
                n_ci,
            ).unwrap())
            .pue_axis(iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.05).unwrap(), Pue::new(2.2).unwrap()),
                n_pue,
            ).unwrap())
            .embodied_linspace(
                Bounds::new(
                    CarbonMass::from_kilograms(100.0),
                    CarbonMass::from_kilograms(1_500.0),
                ),
                n_emb,
            )
            .lifespan_linspace(1.0, 12.0, n_life)
            .servers(servers)
            .build()
            .unwrap();
        let results = a.evaluate_space();
        // `fresh` exercises the select path (no cache built yet).
        let fresh = a.evaluate_space();
        let kg: Vec<f64> = results.totals().iter().map(|t| t.kilograms()).collect();
        let batch = results.percentiles(&qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            let naive = CarbonMass::from_kilograms(
                iriscast_grid::stats::percentile(&kg, q).unwrap(),
            );
            prop_assert_eq!(results.percentile(q).unwrap(), naive, "cached q={}", q);
            prop_assert_eq!(batch[i], naive, "batch q={}", q);
            prop_assert_eq!(fresh.percentile_oneshot(q).unwrap(), naive, "select q={}", q);
            prop_assert_eq!(results.percentile_oneshot(q).unwrap(), naive, "cache-hit q={}", q);
        }
        let naive_mean =
            CarbonMass::from_kilograms(iriscast_grid::stats::mean(&kg).unwrap());
        prop_assert_eq!(results.mean_total(), naive_mean);
    }

    /// `evaluate_space_into` is bit-identical to `evaluate_space`
    /// whatever state the reused buffer arrives in, for both the scalar
    /// and time-resolved engines.
    #[test]
    fn evaluate_into_matches_evaluate(
        kwh in 100.0..1e6f64,
        n_ci in 1usize..5,
        n_pue in 1usize..4,
        n_emb in 1usize..4,
        n_life in 1usize..5,
        prev_ci in 1usize..5,
        slots in 1usize..40,
        servers in 1u32..5_000,
    ) {
        let space_of = |n: usize| Assessment::builder()
            .energy(Energy::from_kilowatt_hours(kwh))
            .ci_axis(iriscast_model::ScenarioAxis::linspace(
                "ci",
                Bounds::new(
                    CarbonIntensity::from_grams_per_kwh(10.0),
                    CarbonIntensity::from_grams_per_kwh(500.0),
                ),
                n,
            ).unwrap())
            .pue_axis(iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.05).unwrap(), Pue::new(2.2).unwrap()),
                n_pue,
            ).unwrap())
            .embodied_linspace(
                Bounds::new(
                    CarbonMass::from_kilograms(100.0),
                    CarbonMass::from_kilograms(1_500.0),
                ),
                n_emb,
            )
            .lifespan_linspace(1.0, 12.0, n_life)
            .servers(servers)
            .build()
            .unwrap();
        let a = space_of(n_ci);
        let fresh = a.evaluate_space();
        // Reuse a result of a (usually different) shape, cache warmed.
        let mut reused = space_of(prev_ci).evaluate_space();
        let _ = reused.percentile(0.5).unwrap();
        a.evaluate_space_into(&mut reused);
        prop_assert_eq!(&reused, &fresh);
        prop_assert_eq!(reused.percentile(0.5).unwrap(), fresh.percentile(0.5).unwrap());
        // Same-shape warm re-sweep.
        a.evaluate_space_into(&mut reused);
        prop_assert_eq!(&reused, &fresh);

        // Time-resolved engine shares the same path.
        let tr = time_resolved_fixture(slots, 5.0, 1, n_ci, n_pue, n_emb, n_life, servers);
        let tr_fresh = tr.evaluate_space();
        let mut tr_reused = space_of(prev_ci).evaluate_space();
        tr.evaluate_space_into(&mut tr_reused);
        prop_assert_eq!(&tr_reused, &tr_fresh);
    }

    /// Incremental fold ≡ batch recompute, bit for bit, at arbitrary
    /// CI-axis split points: growing a [`iriscast_model::engine::SpaceResults`]
    /// through `extend_rows` segment by segment — with the cached sort
    /// warmed (or not) between folds — answers every query surface
    /// (columns, quantiles, envelope, marginals, summary) identically to
    /// one evaluation over the whole axis.
    #[test]
    fn space_fold_equals_batch_at_any_split(
        kwh in 100.0..1e6f64,
        n_ci in 2usize..8,
        n_pue in 1usize..4,
        n_emb in 1usize..4,
        n_life in 1usize..4,
        cuts in prop::collection::vec(1usize..100, 0..4),
        warm in 0u32..2,
        servers in 1u32..5_000,
    ) {
        let full_axis = iriscast_model::ScenarioAxis::linspace(
            "ci",
            Bounds::new(
                CarbonIntensity::from_grams_per_kwh(10.0),
                CarbonIntensity::from_grams_per_kwh(500.0),
            ),
            n_ci,
        ).unwrap();
        let build = |samples: Vec<CarbonIntensity>| Assessment::builder()
            .energy(Energy::from_kilowatt_hours(kwh))
            .ci_axis(iriscast_model::ScenarioAxis::new("ci", samples).unwrap())
            .pue_axis(iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.05).unwrap(), Pue::new(2.2).unwrap()),
                n_pue,
            ).unwrap())
            .embodied_linspace(
                Bounds::new(
                    CarbonMass::from_kilograms(100.0),
                    CarbonMass::from_kilograms(1_500.0),
                ),
                n_emb,
            )
            .lifespan_linspace(1.0, 12.0, n_life)
            .servers(servers)
            .build()
            .unwrap();
        let batch = build(full_axis.samples().to_vec()).evaluate_space();

        // Arbitrary split points along the CI axis.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| 1 + c % (n_ci - 1).max(1)).collect();
        bounds.push(0);
        bounds.push(n_ci);
        bounds.sort_unstable();
        bounds.dedup();
        let segments: Vec<&[CarbonIntensity]> = bounds
            .windows(2)
            .map(|w| &full_axis.samples()[w[0]..w[1]])
            .collect();

        let mut live = build(segments[0].to_vec()).evaluate_space();
        for seg in &segments[1..] {
            if warm == 1 {
                // Keep the cached sort warm between folds: the gallop
                // path, not a lazy rebuild, must answer below.
                let _ = live.percentile(0.5).unwrap();
            }
            live.extend_rows(&build(seg.to_vec()).evaluate_space()).unwrap();
        }

        prop_assert_eq!(&live, &batch);
        prop_assert_eq!(live.totals(), batch.totals());
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(
                live.percentile(q).unwrap(),
                batch.percentile(q).unwrap(),
                "q = {}", q
            );
        }
        prop_assert_eq!(live.envelope(), batch.envelope());
        prop_assert_eq!(live.mean_total(), batch.mean_total());
        prop_assert_eq!(live.summary().unwrap(), batch.summary().unwrap());
        for axis in iriscast_model::AxisId::ALL {
            prop_assert_eq!(live.marginals(axis), batch.marginals(axis), "{:?}", axis);
        }
    }

    /// `retract_rows` is the exact inverse of `extend_rows`: fold the
    /// whole CI axis one sample at a time, evict the oldest `k`, and
    /// the survivor answers every query surface bit-identically to a
    /// batch into which those samples were **never ingested** — with
    /// the cached sort warmed (or not) across folds and eviction.
    #[test]
    fn space_retract_equals_never_ingested(
        kwh in 100.0..1e6f64,
        n_ci in 2usize..8,
        n_pue in 1usize..4,
        n_emb in 1usize..4,
        n_life in 1usize..4,
        evict in 1usize..8,
        warm in 0u32..2,
        servers in 1u32..5_000,
    ) {
        let evict = evict.min(n_ci - 1);
        let full_axis = iriscast_model::ScenarioAxis::linspace(
            "ci",
            Bounds::new(
                CarbonIntensity::from_grams_per_kwh(10.0),
                CarbonIntensity::from_grams_per_kwh(500.0),
            ),
            n_ci,
        ).unwrap();
        let build = |samples: Vec<CarbonIntensity>| Assessment::builder()
            .energy(Energy::from_kilowatt_hours(kwh))
            .ci_axis(iriscast_model::ScenarioAxis::new("ci", samples).unwrap())
            .pue_axis(iriscast_model::ScenarioAxis::linspace(
                "pue",
                Bounds::new(Pue::new(1.05).unwrap(), Pue::new(2.2).unwrap()),
                n_pue,
            ).unwrap())
            .embodied_linspace(
                Bounds::new(
                    CarbonMass::from_kilograms(100.0),
                    CarbonMass::from_kilograms(1_500.0),
                ),
                n_emb,
            )
            .lifespan_linspace(1.0, 12.0, n_life)
            .servers(servers)
            .build()
            .unwrap();

        // The reference: only the surviving CI samples, folded in the
        // same one-sample-at-a-time rhythm the live path uses.
        let survivors = &full_axis.samples()[evict..];
        let mut never = build(vec![survivors[0]]).evaluate_space();
        for &ci in &survivors[1..] {
            never.extend_rows(&build(vec![ci]).evaluate_space()).unwrap();
        }

        let mut live = build(vec![full_axis.samples()[0]]).evaluate_space();
        for &ci in &full_axis.samples()[1..] {
            if warm == 1 {
                let _ = live.percentile(0.5).unwrap();
            }
            live.extend_rows(&build(vec![ci]).evaluate_space()).unwrap();
        }
        if warm == 1 {
            let _ = live.percentile(0.5).unwrap();
        }
        live.retract_rows(evict).unwrap();

        prop_assert_eq!(&live, &never);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(
                live.percentile(q).unwrap().kilograms().to_bits(),
                never.percentile(q).unwrap().kilograms().to_bits(),
                "q = {}", q
            );
        }
        prop_assert_eq!(live.envelope(), never.envelope());
        prop_assert_eq!(live.mean_total(), never.mean_total());
        prop_assert_eq!(live.summary().unwrap(), never.summary().unwrap());
        for axis in iriscast_model::AxisId::ALL {
            prop_assert_eq!(live.marginals(axis), never.marginals(axis), "{:?}", axis);
        }
    }

    /// Net-zero projections: embodied share is monotone non-decreasing
    /// along any declining pathway, and intensity stays above the floor.
    #[test]
    fn netzero_share_monotone(
        start_g in 50.0..500.0f64,
        floor_g in 0.0..40.0f64,
        decline in 0.01..0.5f64,
        lifespan in 2.0..10.0f64,
    ) {
        let pathway = DecarbonisationPathway {
            start_year: 2022,
            start: CarbonIntensity::from_grams_per_kwh(start_g),
            floor: CarbonIntensity::from_grams_per_kwh(floor_g),
            annual_decline: decline,
        };
        let mut dri = SteadyStateDri::iris_central();
        dri.lifespan_years = lifespan;
        let projection = project(&dri, &pathway, 30);
        for w in projection.windows(2) {
            prop_assert!(w[1].embodied_share >= w[0].embodied_share - 1e-12);
            prop_assert!(w[1].intensity <= w[0].intensity);
        }
        for y in &projection {
            prop_assert!(y.intensity >= pathway.floor);
            prop_assert!((0.0..=1.0).contains(&y.embodied_share));
        }
    }
}

/// DST-boundary days (23 h spring-forward, 25 h fall-back) are ordinary
/// windows: 46 or 50 half-hours stream, materialise and scalar-sum to
/// the same numbers, and the embodied window follows the true length.
#[test]
fn dst_boundary_half_hours_are_first_class() {
    for slots in [46usize, 48, 50] {
        let a = time_resolved_fixture(slots, 5.0, 2, 2, 2, 2, 2, 500);
        assert!((a.window_days() - slots as f64 / 48.0).abs() < 1e-12);
        let results = a.evaluate_space();
        let mut streamed = Vec::new();
        a.stream_space(|p| streamed.push(p.outcome));
        for (i, o) in streamed.iter().enumerate() {
            assert_eq!(
                *o,
                results.get(i).unwrap().outcome,
                "{slots} slots, point {i}"
            );
            let p = results.get(i).unwrap().point;
            let aligned = a.aligned_intensity(p.coords[0]).unwrap();
            let mut active = CarbonMass::ZERO;
            for (&e, &c) in a.energy().values().iter().zip(aligned) {
                active += evaluate_one(
                    e,
                    a.servers(),
                    1.0,
                    c,
                    p.pue,
                    p.embodied_per_server,
                    p.lifespan_years,
                )
                .active;
            }
            assert_eq!(active, o.active, "{slots} slots, point {i}");
        }
        // A 25-hour day charges more embodied than a 23-hour day at the
        // same settings; check the monotonicity across the loop.
        let daily = fleet_snapshot_daily(
            a.space().embodied().samples()[0],
            a.space().lifespan_years().samples()[0],
            a.servers(),
        );
        assert_eq!(results.embodied()[0], daily * a.window_days());
    }
}

// ---------------------------------------------------------------------------
// Fleet federation: the sharded roll-up path must be indistinguishable from
// collecting every site independently, at any worker count.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fleet totals are the sum of independent per-site collects, column
    /// by column and bit for bit: sharding sites across the pool is an
    /// execution detail, not a numerical one.
    #[test]
    fn fleet_rollup_equals_independent_site_collects(
        regions in 1u32..4,
        sites_per_region in 1u32..4,
        nodes in 1u32..4,
        seed in 0u64..1_000_000,
    ) {
        let fleet = FleetScenario::synthetic(regions, sites_per_region, nodes, seed)
            .with_sample_step(SimDuration::from_secs(21_600));
        let rollup = fleet.try_simulate(16).unwrap();
        prop_assert_eq!(rollup.site_count(), fleet.site_count());

        let mut total_kwh = 0.0f64;
        for (i, site) in fleet.sites.iter().enumerate() {
            // A completely independent collect: fresh collector, fresh
            // scratch, default backend, one worker.
            let result = SiteCollector::new(site.config.clone())
                .collect(fleet.period, &site.utilization, 1)
                .unwrap();
            let want = result.best_estimate().unwrap().kilowatt_hours();
            prop_assert_eq!(
                rollup.best_estimate_kwh()[i], want,
                "site {} best estimate drifted", i
            );
            prop_assert_eq!(
                rollup.truth_kwh()[i],
                result.true_energy().kilowatt_hours(),
                "site {} truth drifted", i
            );
            total_kwh += want;
        }
        // The fleet total folds in site order, so it matches the naive
        // per-site sum exactly, not just approximately.
        prop_assert_eq!(rollup.total_best_estimate().kilowatt_hours(), total_kwh);
    }

    /// One worker and sixteen workers produce identical bits in every
    /// column and every tier of the roll-up.
    #[test]
    fn fleet_sharding_bit_invariant(
        regions in 1u32..4,
        sites_per_region in 1u32..5,
        nodes in 1u32..4,
        seed in 0u64..1_000_000,
    ) {
        let fleet = FleetScenario::synthetic(regions, sites_per_region, nodes, seed)
            .with_sample_step(SimDuration::from_secs(21_600));
        let a = fleet.try_simulate(1).unwrap();
        let b = fleet.try_simulate(16).unwrap();
        prop_assert_eq!(a.best_estimate_kwh(), b.best_estimate_kwh());
        prop_assert_eq!(a.truth_kwh(), b.truth_kwh());
        prop_assert_eq!(
            a.total_best_estimate().kilowatt_hours(),
            b.total_best_estimate().kilowatt_hours()
        );
        prop_assert_eq!(a.region_rollups(), b.region_rollups());
        let q = 0.25;
        prop_assert_eq!(a.percentile(q).unwrap(), b.percentile(q).unwrap());
    }

    /// Folding per-site collects into a [`FleetRollup`] one at a time —
    /// with quantile queries warming the cached sort *between* folds —
    /// is bit-identical to the batch `try_simulate` roll-up: columns,
    /// quantiles, totals and region tiers.
    #[test]
    fn fleet_fold_equals_batch_with_interleaved_queries(
        regions in 1u32..3,
        sites_per_region in 1u32..4,
        nodes in 1u32..3,
        seed in 0u64..1_000_000,
        warm_every in 1usize..4,
    ) {
        let fleet = FleetScenario::synthetic(regions, sites_per_region, nodes, seed)
            .with_sample_step(SimDuration::from_secs(21_600));
        let batch = fleet.try_simulate(4).unwrap();
        let mut live = iriscast_model::FleetRollup::new(
            fleet.region_codes.clone(),
            fleet.period,
        );
        for (i, site) in fleet.sites.iter().enumerate() {
            let result = SiteCollector::new(site.config.clone())
                .collect(fleet.period, &site.utilization, 1)
                .unwrap();
            live.fold_site(iriscast_model::SiteRollup::from_result(&result, site.region));
            if i % warm_every == 0 {
                // Warm (or re-warm) the cached sort mid-stream; the next
                // fold must keep it honest, not serve it stale.
                let _ = live.percentile(0.5).unwrap();
            }
        }
        prop_assert_eq!(live.best_estimate_kwh(), batch.best_estimate_kwh());
        prop_assert_eq!(live.truth_kwh(), batch.truth_kwh());
        prop_assert_eq!(live.total_nodes(), batch.total_nodes());
        for q in [0.0, 0.3, 0.5, 0.9, 1.0] {
            prop_assert_eq!(
                live.percentile(q).unwrap(),
                batch.percentile(q).unwrap(),
                "q = {}", q
            );
        }
        prop_assert_eq!(live.region_rollups(), batch.region_rollups());
        prop_assert_eq!(
            live.total_best_estimate().kilowatt_hours(),
            batch.total_best_estimate().kilowatt_hours()
        );
    }

    /// A degenerate zero-rack/zero-node site surfaces as the typed
    /// `NoNodes` error naming the earliest such site — never a panic,
    /// at any worker count.
    #[test]
    fn fleet_degenerate_site_is_a_typed_error(
        sites in 2u32..7,
        victim in 0u32..7,
        flip in 0u32..2,
        workers in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let victim = victim % sites;
        let empty_group = flip == 0;
        let mut fleet = FleetScenario::synthetic(1, sites, 2, seed)
            .with_sample_step(SimDuration::from_secs(21_600));
        if empty_group {
            // Zero racks: no groups at all.
            fleet.sites[victim as usize].config.groups.clear();
        } else {
            // A rack with zero nodes in it.
            for g in &mut fleet.sites[victim as usize].config.groups {
                g.count = 0;
            }
        }
        let err = fleet.try_simulate(workers).unwrap_err();
        let TelemetryError::NoNodes { site } = err else {
            panic!("expected NoNodes, got {err}");
        };
        prop_assert_eq!(site, fleet.sites[victim as usize].config.site_code.clone());
    }
}
