//! Record and index types mirroring the public GB Carbon Intensity API.
//!
//! The paper's pipeline consumed carbonintensity.org.uk exports; modelling
//! the same record shape (half-hour window, forecast + actual, banded
//! index) keeps our data-collection path structurally faithful and gives
//! downstream consumers (e.g. carbon-aware schedulers acting on a
//! *forecast*) the interface they would have in production.

use crate::IntensitySeries;
use iriscast_units::{CarbonIntensity, Period, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The API's qualitative intensity band.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IntensityIndex {
    /// < 50 gCO₂/kWh.
    VeryLow,
    /// 50–129 gCO₂/kWh.
    Low,
    /// 130–209 gCO₂/kWh.
    Moderate,
    /// 210–309 gCO₂/kWh.
    High,
    /// ≥ 310 gCO₂/kWh.
    VeryHigh,
}

impl IntensityIndex {
    /// Bands a numeric intensity following the official 2022 thresholds.
    pub fn from_intensity(ci: CarbonIntensity) -> Self {
        let g = ci.grams_per_kwh();
        if g < 50.0 {
            IntensityIndex::VeryLow
        } else if g < 130.0 {
            IntensityIndex::Low
        } else if g < 210.0 {
            IntensityIndex::Moderate
        } else if g < 310.0 {
            IntensityIndex::High
        } else {
            IntensityIndex::VeryHigh
        }
    }
}

impl fmt::Display for IntensityIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntensityIndex::VeryLow => "very low",
            IntensityIndex::Low => "low",
            IntensityIndex::Moderate => "moderate",
            IntensityIndex::High => "high",
            IntensityIndex::VeryHigh => "very high",
        };
        f.write_str(s)
    }
}

/// One half-hour record as the public API returns it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntensityRecord {
    /// Window start.
    pub from: Timestamp,
    /// Window end.
    pub to: Timestamp,
    /// Day-ahead forecast intensity.
    pub forecast: CarbonIntensity,
    /// Settled actual intensity.
    pub actual: CarbonIntensity,
    /// Qualitative band of the actual value.
    pub index: IntensityIndex,
}

/// Converts a simulated series into API-shaped records, synthesising a
/// forecast by perturbing the actual with a seeded error (the public
/// forecast's day-ahead RMSE is on the order of 10 g/kWh).
pub fn to_records(series: &IntensitySeries, forecast_rmse: f64, seed: u64) -> Vec<IntensityRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    series
        .iter()
        .map(|(interval, actual)| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let noise = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let forecast = CarbonIntensity::from_grams_per_kwh(
                (actual.grams_per_kwh() + forecast_rmse * noise).max(0.0),
            );
            IntensityRecord {
                from: interval.start(),
                to: interval.end(),
                forecast,
                actual,
                index: IntensityIndex::from_intensity(actual),
            }
        })
        .collect()
}

/// Reassembles an [`IntensitySeries`] of *actual* values from records
/// (the inverse of [`to_records`]), validating contiguity.
pub fn from_records(records: &[IntensityRecord]) -> Option<IntensitySeries> {
    let first = records.first()?;
    let step = first.to - first.from;
    for w in records.windows(2) {
        if w[1].from != w[0].to || (w[1].to - w[1].from) != step {
            return None;
        }
    }
    Some(IntensitySeries::new(
        first.from,
        step,
        records.iter().map(|r| r.actual).collect(),
    ))
}

/// Serialises records as JSON (the transport format of the real API).
pub fn records_to_json(records: &[IntensityRecord]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(records)
}

/// Parses records from JSON.
pub fn records_from_json(json: &str) -> serde_json::Result<Vec<IntensityRecord>> {
    serde_json::from_str(json)
}

/// Returns the sub-period of `within` (a settlement-period-aligned window
/// of length `k` slots) with the lowest *forecast* mean — what a
/// carbon-aware operator would book against. `None` if fewer than `k`
/// records fall inside `within`.
pub fn best_forecast_window(
    records: &[IntensityRecord],
    within: Period,
    k: usize,
) -> Option<(Timestamp, CarbonIntensity)> {
    let inside: Vec<&IntensityRecord> = records
        .iter()
        .filter(|r| r.from >= within.start() && r.to <= within.end())
        .collect();
    if k == 0 || inside.len() < k {
        return None;
    }
    let values: Vec<f64> = inside.iter().map(|r| r.forecast.grams_per_kwh()).collect();
    let mut sum: f64 = values[..k].iter().sum();
    let mut best = (0usize, sum);
    for i in k..values.len() {
        sum += values[i] - values[i - k];
        if sum < best.1 {
            best = (i - k + 1, sum);
        }
    }
    Some((
        inside[best.0].from,
        CarbonIntensity::from_grams_per_kwh(best.1 / k as f64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use iriscast_units::SimDuration;

    #[test]
    fn banding_thresholds() {
        let b = |g: f64| IntensityIndex::from_intensity(CarbonIntensity::from_grams_per_kwh(g));
        assert_eq!(b(10.0), IntensityIndex::VeryLow);
        assert_eq!(b(50.0), IntensityIndex::Low);
        assert_eq!(b(129.9), IntensityIndex::Low);
        assert_eq!(b(130.0), IntensityIndex::Moderate);
        assert_eq!(b(210.0), IntensityIndex::High);
        assert_eq!(b(310.0), IntensityIndex::VeryHigh);
        assert_eq!(b(175.0).to_string(), "moderate");
    }

    #[test]
    fn records_round_trip_series() {
        let sim = scenario::uk_november_2022(9).simulate();
        let records = to_records(sim.intensity(), 10.0, 1);
        assert_eq!(records.len(), sim.intensity().len());
        let back = from_records(&records).unwrap();
        assert_eq!(back.values(), sim.intensity().values());
    }

    #[test]
    fn forecast_tracks_actual() {
        let sim = scenario::uk_november_2022(9).simulate();
        let records = to_records(sim.intensity(), 10.0, 1);
        let rmse = (records
            .iter()
            .map(|r| {
                let d = r.forecast.grams_per_kwh() - r.actual.grams_per_kwh();
                d * d
            })
            .sum::<f64>()
            / records.len() as f64)
            .sqrt();
        assert!((5.0..=15.0).contains(&rmse), "forecast RMSE {rmse:.1}");
    }

    #[test]
    fn json_round_trip() {
        let sim = scenario::uk_november_2022(2).simulate();
        let records = to_records(sim.intensity(), 10.0, 3);
        let json = records_to_json(&records[..4]).unwrap();
        let back = records_from_json(&json).unwrap();
        assert_eq!(back.len(), 4);
        // JSON float formatting may lose the last ulp; compare to 1e-9.
        for (a, b) in records[..4].iter().zip(back.iter()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.index, b.index);
            assert!((a.actual.grams_per_kwh() - b.actual.grams_per_kwh()).abs() < 1e-9);
            assert!((a.forecast.grams_per_kwh() - b.forecast.grams_per_kwh()).abs() < 1e-9);
        }
    }

    #[test]
    fn from_records_rejects_gaps() {
        let sim = scenario::uk_november_2022(2).simulate();
        let mut records = to_records(sim.intensity(), 10.0, 3);
        records.remove(5);
        assert!(from_records(&records).is_none());
    }

    #[test]
    fn best_forecast_window_stays_inside_period() {
        let sim = scenario::uk_november_2022(4).simulate();
        let records = to_records(sim.intensity(), 8.0, 5);
        let day2 = Period::day(2);
        let (start, mean) = best_forecast_window(&records, day2, 8).unwrap();
        assert!(start >= day2.start());
        assert!(start + SimDuration::SETTLEMENT_PERIOD * 8 <= day2.end() + SimDuration::ZERO);
        assert!(mean.grams_per_kwh() > 0.0);
        // Too-large window.
        assert!(best_forecast_window(&records, day2, 49).is_none());
    }
}
