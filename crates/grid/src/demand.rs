//! National electricity demand model.

use iriscast_units::{Power, Timestamp};
use serde::{Deserialize, Serialize};

/// Deterministic GB demand envelope with diurnal and weekly structure.
///
/// Demand is modelled as a base level plus two harmonics of the daily
/// cycle (capturing the characteristic overnight trough at ~04:00, morning
/// ramp, and early-evening peak at ~17:30 in winter), scaled down at
/// weekends. Stochastic residuals are added by the caller so the envelope
/// itself stays reproducible and testable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Daily mean demand.
    pub base: Power,
    /// Amplitude of the primary diurnal harmonic.
    pub diurnal_amplitude: Power,
    /// Amplitude of the secondary (12-hour) harmonic shaping the
    /// double-shoulder profile.
    pub secondary_amplitude: Power,
    /// Multiplier applied on Saturdays/Sundays (≈ 0.92 for GB).
    pub weekend_factor: f64,
}

impl DemandModel {
    /// GB-calibrated November envelope: ~31 GW mean, ~22 GW overnight
    /// trough, ~38 GW evening peak, 8% weekend reduction.
    pub fn gb_november() -> Self {
        DemandModel {
            base: Power::from_gigawatts(31.0),
            diurnal_amplitude: Power::from_gigawatts(6.5),
            secondary_amplitude: Power::from_gigawatts(1.8),
            weekend_factor: 0.92,
        }
    }

    /// Demand at instant `t`.
    pub fn demand_at(&self, t: Timestamp) -> Power {
        use std::f64::consts::TAU;
        let h = t.hour_of_day();
        // Primary harmonic: trough at 04:00, peak at 16:00 (plus the
        // secondary harmonic shifts the effective peak to ~17:30).
        let primary = -((h - 4.0) / 24.0 * TAU).cos();
        // Secondary 12-hour harmonic adds the 06:00 morning shoulder and
        // shifts the combined peak towards 17:00–18:00.
        let secondary = ((h - 18.0) / 12.0 * TAU).cos();
        let mut d =
            self.base + self.diurnal_amplitude * primary + self.secondary_amplitude * secondary;
        if t.is_weekend() {
            d = d * self.weekend_factor;
        }
        d.max(Power::ZERO)
    }

    /// Mean demand over one full (weekday) day, evaluated on the 48
    /// settlement periods. Useful for capacity planning in scenarios.
    pub fn weekday_mean(&self) -> Power {
        let day = iriscast_units::Period::snapshot_24h();
        let step = iriscast_units::SimDuration::SETTLEMENT_PERIOD;
        let n = day.step_count(step) as f64;
        let sum: Power = day.iter_steps(step).map(|t| self.demand_at(t)).sum();
        sum / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::{SimDuration, Timestamp};

    #[test]
    fn trough_is_overnight_and_peak_is_evening() {
        let m = DemandModel::gb_november();
        // Epoch is a Tuesday, so day 0 is a weekday.
        let mut min_h = 0.0;
        let mut max_h = 0.0;
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        for half_hour in 0..48 {
            let t = Timestamp::EPOCH + SimDuration::SETTLEMENT_PERIOD * half_hour;
            let d = m.demand_at(t).gigawatts();
            if d < min_v {
                min_v = d;
                min_h = t.hour_of_day();
            }
            if d > max_v {
                max_v = d;
                max_h = t.hour_of_day();
            }
        }
        assert!(
            (2.0..=6.5).contains(&min_h),
            "trough at {min_h}h ({min_v:.1} GW)"
        );
        assert!(
            (15.0..=20.0).contains(&max_h),
            "peak at {max_h}h ({max_v:.1} GW)"
        );
        // Winter GB spread.
        assert!(min_v > 18.0 && min_v < 27.0, "trough {min_v:.1} GW");
        assert!(max_v > 33.0 && max_v < 42.0, "peak {max_v:.1} GW");
    }

    #[test]
    fn weekends_are_lighter() {
        let m = DemandModel::gb_november();
        // Day 4 of the simulation = Saturday (epoch is Tuesday).
        let weekday_noon = Timestamp::from_days(1) + SimDuration::from_hours(12.0);
        let weekend_noon = Timestamp::from_days(4) + SimDuration::from_hours(12.0);
        let wd = m.demand_at(weekday_noon);
        let we = m.demand_at(weekend_noon);
        assert!((we / wd - m.weekend_factor).abs() < 1e-9);
    }

    #[test]
    fn mean_close_to_base() {
        let m = DemandModel::gb_november();
        let mean = m.weekday_mean().gigawatts();
        // Harmonics nearly cancel over a full day.
        assert!(
            (mean - m.base.gigawatts()).abs() < 0.5,
            "mean {mean:.2} vs base {}",
            m.base.gigawatts()
        );
    }

    #[test]
    fn demand_never_negative() {
        let extreme = DemandModel {
            base: Power::from_gigawatts(1.0),
            diurnal_amplitude: Power::from_gigawatts(10.0),
            secondary_amplitude: Power::from_gigawatts(5.0),
            weekend_factor: 0.9,
        };
        for h in 0..48 {
            let t = Timestamp::EPOCH + SimDuration::SETTLEMENT_PERIOD * h;
            assert!(extreme.demand_at(t) >= Power::ZERO);
        }
    }
}
