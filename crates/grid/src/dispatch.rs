//! Merit-order dispatch: matching generation to demand.

use crate::{FuelType, GenerationMix};
use iriscast_units::Power;
use serde::{Deserialize, Serialize};

/// Installed/available capacity per technology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationCapacity {
    /// Installed wind capacity (scaled by the weather capacity factor).
    pub wind: Power,
    /// Installed solar capacity (scaled by the daylight capacity factor).
    pub solar: Power,
    /// Available nuclear (must-run at availability).
    pub nuclear: Power,
    /// Run-of-river hydro (treated as must-run).
    pub hydro: Power,
    /// Biomass thermal (dispatched early: contracted baseload).
    pub biomass: Power,
    /// Gas fleet capacity (the marginal fuel).
    pub gas: Power,
    /// Interconnector import limit.
    pub imports: Power,
    /// Coal reserve capacity (last resort in 2022).
    pub coal: Power,
    /// Pumped storage / battery discharge limit.
    pub storage: Power,
    /// Gas kept running regardless of renewables, for system inertia and
    /// voltage stability. This floor is why GB carbon intensity never
    /// reached zero in 2022 even on the windiest nights.
    pub min_gas: Power,
}

impl GenerationCapacity {
    /// GB fleet as of November 2022 (approximate nameplate/availability).
    pub fn gb_2022() -> Self {
        GenerationCapacity {
            wind: Power::from_gigawatts(27.0),
            solar: Power::from_gigawatts(14.0),
            nuclear: Power::from_gigawatts(5.5),
            hydro: Power::from_gigawatts(1.0),
            biomass: Power::from_gigawatts(3.0),
            gas: Power::from_gigawatts(30.0),
            // Net import capability was unusually tight in late 2022
            // (French nuclear outages had GB exporting much of the year).
            imports: Power::from_gigawatts(3.0),
            coal: Power::from_gigawatts(2.0),
            storage: Power::from_gigawatts(2.8),
            min_gas: Power::from_gigawatts(1.8),
        }
    }

    /// A decarbonised what-if fleet (illustrating the paper's observation
    /// that grid decarbonisation will shrink active carbon over time):
    /// tripled wind/solar, new nuclear, gas relegated to peaking.
    pub fn gb_2035_decarbonised() -> Self {
        GenerationCapacity {
            wind: Power::from_gigawatts(80.0),
            solar: Power::from_gigawatts(45.0),
            nuclear: Power::from_gigawatts(9.0),
            hydro: Power::from_gigawatts(1.2),
            biomass: Power::from_gigawatts(3.0),
            gas: Power::from_gigawatts(25.0),
            imports: Power::from_gigawatts(10.0),
            coal: Power::ZERO,
            // Grid-forming inverters remove the stability floor by 2035.
            storage: Power::from_gigawatts(12.0),
            min_gas: Power::ZERO,
        }
    }
}

/// Result of dispatching one settlement period.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DispatchResult {
    /// The generation mix serving demand.
    pub mix: GenerationMix,
    /// Renewable generation curtailed because supply exceeded demand.
    pub curtailed: Power,
    /// Demand left unserved after exhausting every technology (should be
    /// zero in calibrated scenarios; non-zero signals a capacity shortfall).
    pub unserved: Power,
}

/// Merit-order dispatcher.
///
/// Dispatch order reflects short-run marginal cost: must-run renewables and
/// nuclear first, then contracted biomass, then the marginal stack of gas →
/// imports → storage → coal until demand is met. Excess must-run generation
/// is curtailed (wind first).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dispatcher {
    /// Available capacity per technology.
    pub capacity: GenerationCapacity,
}

impl Dispatcher {
    /// Creates a dispatcher over the given fleet.
    pub fn new(capacity: GenerationCapacity) -> Self {
        Dispatcher { capacity }
    }

    /// Dispatches one settlement period.
    ///
    /// * `demand` — national demand to serve;
    /// * `wind_cf`, `solar_cf` — weather capacity factors in `[0, 1]`.
    pub fn dispatch(&self, demand: Power, wind_cf: f64, solar_cf: f64) -> DispatchResult {
        assert!(
            (0.0..=1.0).contains(&wind_cf) && (0.0..=1.0).contains(&solar_cf),
            "capacity factors must lie in [0, 1]"
        );
        let cap = &self.capacity;
        let mut mix = GenerationMix::new();
        let mut curtailed = Power::ZERO;

        // Must-run block, including the gas stability floor.
        let wind = cap.wind * wind_cf;
        let solar = cap.solar * solar_cf;
        let gas_floor = cap.min_gas.min(cap.gas).min(demand);
        let must_run = wind + solar + cap.nuclear + cap.hydro + gas_floor;

        if must_run >= demand {
            // Oversupply: curtail wind (the cheapest to shed), keep the
            // rest running.
            let excess = must_run - demand;
            let kept_wind = (wind - excess).max(Power::ZERO);
            curtailed = wind - kept_wind;
            mix.set(FuelType::Wind, kept_wind);
            mix.set(FuelType::Solar, solar);
            mix.set(FuelType::Nuclear, cap.nuclear);
            mix.set(FuelType::Hydro, cap.hydro);
            mix.set(FuelType::Gas, gas_floor);
            // If even wind fully curtailed leaves excess, trim the rest
            // proportionally (rare; degenerate demand).
            let total = mix.total();
            if total > demand {
                let scale = demand / total;
                let scaled = mix;
                let mut rescaled = GenerationMix::new();
                for (fuel, p) in scaled.iter() {
                    rescaled.set(fuel, p * scale);
                }
                curtailed += total - demand;
                mix = rescaled;
            }
            return DispatchResult {
                mix,
                curtailed,
                unserved: Power::ZERO,
            };
        }

        mix.set(FuelType::Wind, wind);
        mix.set(FuelType::Solar, solar);
        mix.set(FuelType::Nuclear, cap.nuclear);
        mix.set(FuelType::Hydro, cap.hydro);
        mix.set(FuelType::Gas, gas_floor);
        let mut residual = demand - must_run;

        // Merit order for the residual (gas capacity above the floor).
        for (fuel, available) in [
            (FuelType::Biomass, cap.biomass),
            (FuelType::Gas, cap.gas - gas_floor),
            (FuelType::Imports, cap.imports),
            (FuelType::Storage, cap.storage),
            (FuelType::Coal, cap.coal),
        ] {
            if residual <= Power::ZERO {
                break;
            }
            let dispatched = available.min(residual);
            if dispatched > Power::ZERO {
                mix.add(fuel, dispatched);
                residual -= dispatched;
            }
        }

        DispatchResult {
            mix,
            curtailed,
            unserved: residual.max(Power::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatcher() -> Dispatcher {
        Dispatcher::new(GenerationCapacity::gb_2022())
    }

    #[test]
    fn generation_balances_demand() {
        let d = dispatcher();
        for (demand_gw, wind_cf, solar_cf) in [(30.0, 0.4, 0.1), (38.0, 0.1, 0.0), (22.0, 0.9, 0.2)]
        {
            let r = d.dispatch(Power::from_gigawatts(demand_gw), wind_cf, solar_cf);
            let supplied = r.mix.total();
            assert!(
                (supplied.gigawatts() + r.unserved.gigawatts() - demand_gw).abs() < 1e-9,
                "balance violated at demand {demand_gw}"
            );
            assert_eq!(r.unserved, Power::ZERO, "capacity shortfall unexpected");
        }
    }

    #[test]
    fn low_wind_is_dirty_high_wind_is_clean() {
        let d = dispatcher();
        let calm = d.dispatch(Power::from_gigawatts(32.0), 0.05, 0.0);
        let storm = d.dispatch(Power::from_gigawatts(32.0), 0.85, 0.0);
        let ci_calm = calm.mix.intensity().grams_per_kwh();
        let ci_storm = storm.mix.intensity().grams_per_kwh();
        assert!(
            ci_calm > 250.0,
            "calm night should be gas-heavy, got {ci_calm:.0}"
        );
        assert!(
            ci_storm < 110.0,
            "stormy day should be clean, got {ci_storm:.0}"
        );
    }

    #[test]
    fn coal_only_comes_on_under_stress() {
        let d = dispatcher();
        let normal = d.dispatch(Power::from_gigawatts(33.0), 0.4, 0.1);
        assert_eq!(normal.mix.get(FuelType::Coal), Power::ZERO);
        // Coal sits behind biomass + gas + imports + storage in the merit
        // order, so it only runs once those ~42 GW are exhausted.
        let stressed = d.dispatch(Power::from_gigawatts(50.0), 0.02, 0.0);
        assert!(stressed.mix.get(FuelType::Coal) > Power::ZERO);
    }

    #[test]
    fn oversupply_curtails_wind_first() {
        let d = dispatcher();
        let r = d.dispatch(Power::from_gigawatts(15.0), 0.9, 0.3);
        assert!(r.curtailed > Power::ZERO);
        // Nuclear and solar keep running.
        assert_eq!(r.mix.get(FuelType::Nuclear), d.capacity.nuclear);
        assert_eq!(r.mix.get(FuelType::Solar), d.capacity.solar * 0.3);
        assert!((r.mix.total().gigawatts() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_oversupply_rescales_must_run() {
        let d = dispatcher();
        // Demand below nuclear+hydro: even zero wind cannot balance.
        let r = d.dispatch(Power::from_gigawatts(3.0), 0.5, 0.2);
        assert!((r.mix.total().gigawatts() - 3.0).abs() < 1e-9);
        assert!(r.curtailed > Power::ZERO);
    }

    #[test]
    fn unserved_demand_reported() {
        let d = dispatcher();
        // Far beyond total system capability.
        let r = d.dispatch(Power::from_gigawatts(120.0), 0.0, 0.0);
        assert!(r.unserved > Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity factors")]
    fn rejects_invalid_capacity_factor() {
        let _ = dispatcher().dispatch(Power::from_gigawatts(30.0), 1.5, 0.0);
    }

    #[test]
    fn stability_floor_keeps_gas_on_windy_nights() {
        let d = dispatcher();
        // A storm at night: renewables alone could cover demand.
        let r = d.dispatch(Power::from_gigawatts(24.0), 0.95, 0.0);
        assert_eq!(
            r.mix.get(FuelType::Gas),
            d.capacity.min_gas,
            "the inertia floor must stay on"
        );
        // Consequence: intensity never reaches zero in the 2022 fleet.
        assert!(r.mix.intensity().grams_per_kwh() > 20.0);
        // The 2035 fleet has no floor and can hit zero operational carbon.
        let future = Dispatcher::new(GenerationCapacity::gb_2035_decarbonised());
        let rf = future.dispatch(Power::from_gigawatts(24.0), 0.95, 0.0);
        assert_eq!(rf.mix.get(FuelType::Gas), Power::ZERO);
    }

    #[test]
    fn gas_floor_counts_toward_balance() {
        let d = dispatcher();
        // Moderate conditions: floor + merit-order gas must not double
        // count (total still equals demand).
        let r = d.dispatch(Power::from_gigawatts(35.0), 0.2, 0.05);
        assert!((r.mix.total().gigawatts() - 35.0).abs() < 1e-9);
        assert!(r.mix.get(FuelType::Gas) >= d.capacity.min_gas);
        assert!(r.mix.get(FuelType::Gas) <= d.capacity.gas);
    }

    #[test]
    fn decarbonised_fleet_is_cleaner() {
        let now = Dispatcher::new(GenerationCapacity::gb_2022());
        let future = Dispatcher::new(GenerationCapacity::gb_2035_decarbonised());
        let demand = Power::from_gigawatts(34.0);
        let ci_now = now.dispatch(demand, 0.4, 0.1).mix.intensity();
        let ci_future = future.dispatch(demand, 0.4, 0.1).mix.intensity();
        assert!(ci_future.grams_per_kwh() < ci_now.grams_per_kwh() * 0.5);
    }
}
