//! Grid stress episodes read off an intensity series.
//!
//! Curtailment requests and demand-response windows in the scenario
//! library are not scripted by hand — they are *derived* from the
//! intensity trace: a stress episode is a maximal run of settlement
//! slots whose carbon intensity exceeds a threshold, exactly the
//! condition under which a grid operator asks large loads to shed. The
//! property suites use the same derivation to state their invariants
//! ("no job starts inside a stress episode"), so the scenario and its
//! checks can never drift apart.

use crate::IntensitySeries;
use iriscast_units::{CarbonIntensity, Period};

/// One contiguous run of above-threshold settlement slots.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GridEvent {
    /// The slots covered, `[first slot start, last slot end)`.
    pub window: Period,
    /// Highest slot intensity inside the episode.
    pub peak: CarbonIntensity,
    /// Mean slot intensity over the episode.
    pub mean: CarbonIntensity,
}

impl GridEvent {
    /// Whether `t` falls inside the episode's window.
    pub fn contains(&self, t: iriscast_units::Timestamp) -> bool {
        self.window.contains(t)
    }
}

/// The maximal runs of slots in `series` with intensity strictly above
/// `threshold`, in chronological order. An empty result means the grid
/// never stressed; a single episode spanning the whole series means it
/// never relaxed.
pub fn stress_episodes(series: &IntensitySeries, threshold: CarbonIntensity) -> Vec<GridEvent> {
    let mut episodes = Vec::new();
    let mut run: Option<(usize, usize)> = None; // [first, last] slot index
    for (i, &ci) in series.values().iter().enumerate() {
        if ci > threshold {
            run = Some(match run {
                Some((first, _)) => (first, i),
                None => (i, i),
            });
        } else if let Some((first, last)) = run.take() {
            episodes.push(episode_from(series, first, last));
        }
    }
    if let Some((first, last)) = run {
        episodes.push(episode_from(series, first, last));
    }
    episodes
}

fn episode_from(series: &IntensitySeries, first: usize, last: usize) -> GridEvent {
    let step = series.step();
    let start = series.start() + step * first as i64;
    let end = series.start() + step * (last + 1) as i64;
    let slots = &series.values()[first..=last];
    let peak = slots
        .iter()
        .copied()
        .fold(CarbonIntensity::ZERO, |a, b| if b > a { b } else { a });
    let mean = CarbonIntensity::from_grams_per_kwh(
        slots.iter().map(|ci| ci.grams_per_kwh()).sum::<f64>() / slots.len() as f64,
    );
    GridEvent {
        window: Period::new(start, end),
        peak,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::{SimDuration, Timestamp};

    fn series(values: &[f64]) -> IntensitySeries {
        IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values
                .iter()
                .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
                .collect(),
        )
    }

    #[test]
    fn quiet_series_has_no_episodes() {
        let s = series(&[100.0, 120.0, 90.0]);
        assert!(stress_episodes(&s, CarbonIntensity::from_grams_per_kwh(200.0)).is_empty());
    }

    #[test]
    fn maximal_runs_with_peaks_and_means() {
        // Slots:        0      1      2      3      4      5
        let s = series(&[100.0, 250.0, 300.0, 100.0, 260.0, 100.0]);
        let eps = stress_episodes(&s, CarbonIntensity::from_grams_per_kwh(200.0));
        assert_eq!(eps.len(), 2);
        let half = SimDuration::SETTLEMENT_PERIOD;
        assert_eq!(
            eps[0].window,
            Period::new(Timestamp::EPOCH + half, Timestamp::EPOCH + half * 3)
        );
        assert_eq!(eps[0].peak, CarbonIntensity::from_grams_per_kwh(300.0));
        assert_eq!(eps[0].mean, CarbonIntensity::from_grams_per_kwh(275.0));
        assert_eq!(eps[1].peak, CarbonIntensity::from_grams_per_kwh(260.0));
        // Episode membership is half-open at the end.
        assert!(eps[0].contains(Timestamp::EPOCH + half));
        assert!(!eps[0].contains(Timestamp::EPOCH + half * 3));
    }

    #[test]
    fn threshold_is_strict_and_tail_runs_close() {
        let s = series(&[200.0, 201.0]);
        let eps = stress_episodes(&s, CarbonIntensity::from_grams_per_kwh(200.0));
        // 200.0 == threshold is not stress; the trailing run still closes.
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].peak, CarbonIntensity::from_grams_per_kwh(201.0));
    }
}
