//! Day-ahead intensity forecasting.
//!
//! Carbon-aware operation acts on *forecasts*, not settled actuals (the
//! actual for a slot is only known after it ends). This module provides a
//! forecaster with the structure of the public service's day-ahead
//! product — persistence anchored on the same slot yesterday, corrected
//! towards the recent level — plus the skill metrics needed to judge
//! whether acting on it beats doing nothing.
//!
//! Forecasts are ordinary [`IntensitySeries`] values on the history's
//! grid, so everything in [`crate::series`] — slicing, resampling,
//! projection onto an energy grid — applies to them unchanged:
//!
//! ```
//! use iriscast_grid::forecast::{score, DayAheadForecaster};
//! use iriscast_grid::series::IntensitySeries;
//! use iriscast_units::{CarbonIntensity, SimDuration, Timestamp};
//!
//! // Two days of a repeating diurnal pattern, one value per hour.
//! let history = IntensitySeries::new(
//!     Timestamp::EPOCH,
//!     SimDuration::HOUR,
//!     (0..48)
//!         .map(|h| CarbonIntensity::from_grams_per_kwh(
//!             180.0 + 60.0 * (h % 24) as f64 / 24.0,
//!         ))
//!         .collect(),
//! );
//! let forecast = DayAheadForecaster::gb_default().forecast_series(&history);
//! assert_eq!(forecast.len(), history.len());
//!
//! // A perfectly repeating day makes day-ahead persistence skilful.
//! let day2 = iriscast_units::Period::day(1);
//! let skill = score(
//!     &forecast.slice(day2).unwrap(),
//!     &history.slice(day2).unwrap(),
//! );
//! assert!(skill.skill > 0.0);
//!
//! // Forecasts resample like any other series (hourly → two-hourly).
//! let coarse = forecast.resample(SimDuration::from_secs(7_200)).unwrap();
//! assert_eq!(coarse.len(), 24);
//! ```

use crate::stats;
use crate::IntensitySeries;
use iriscast_units::{CarbonIntensity, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// A short-horizon forecaster: trailing synoptic level plus yesterday's
/// diurnal anomaly.
///
/// `forecast(t) = mean(last 24 h) + w · (actual(t−24 h) − mean(24 h before t−24 h))`
///
/// The trailing mean estimates the slow synoptic level (which in a real
/// operation would come from a weather forecast); the anomaly term carries
/// the repeating diurnal shape. Slots without a full day of history fall
/// back to the running mean alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DayAheadForecaster {
    /// Weight on the diurnal-anomaly term, `[0, 1]`.
    pub persistence_weight: f64,
}

impl DayAheadForecaster {
    /// A forecaster with the GB-calibrated default weight.
    pub fn gb_default() -> Self {
        DayAheadForecaster {
            persistence_weight: 0.7,
        }
    }

    /// Produces a forecast series aligned with `history` (one forecast per
    /// historical slot, as if issued rolling throughout).
    ///
    /// # Panics
    /// If the weight is outside `[0, 1]`.
    pub fn forecast_series(&self, history: &IntensitySeries) -> IntensitySeries {
        assert!(
            (0.0..=1.0).contains(&self.persistence_weight),
            "persistence weight must lie in [0, 1]"
        );
        let step = history.step();
        let slots_per_day = (SimDuration::DAY.as_secs() / step.as_secs()).max(1) as usize;
        let values = history.values();
        let trailing_mean = |end: usize| -> f64 {
            let start = end.saturating_sub(slots_per_day);
            let window = &values[start..end];
            if window.is_empty() {
                values[0].grams_per_kwh()
            } else {
                window.iter().map(|v| v.grams_per_kwh()).sum::<f64>() / window.len() as f64
            }
        };
        let mut out = Vec::with_capacity(values.len());
        for i in 0..values.len() {
            let level = trailing_mean(i);
            let forecast = match i.checked_sub(slots_per_day) {
                Some(j) => {
                    let anomaly = values[j].grams_per_kwh() - trailing_mean(j);
                    level + self.persistence_weight * anomaly
                }
                None => level,
            };
            out.push(CarbonIntensity::from_grams_per_kwh(forecast.max(0.0)));
        }
        IntensitySeries::new(history.start(), step, out)
    }
}

/// Forecast skill metrics against the actual series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForecastSkill {
    /// Mean absolute error, g/kWh.
    pub mae: f64,
    /// Root-mean-square error, g/kWh.
    pub rmse: f64,
    /// MAE of the trivial climatology forecast (the series mean) — the
    /// baseline a useful forecaster must beat.
    pub climatology_mae: f64,
    /// Skill score: `1 − mae/climatology_mae` (positive = useful).
    pub skill: f64,
}

/// Scores `forecast` against `actual` (aligned series required).
///
/// # Panics
/// If the series lengths differ.
pub fn score(forecast: &IntensitySeries, actual: &IntensitySeries) -> ForecastSkill {
    assert_eq!(
        forecast.len(),
        actual.len(),
        "forecast and actual series must align"
    );
    let f: Vec<f64> = forecast
        .values()
        .iter()
        .map(|v| v.grams_per_kwh())
        .collect();
    let a: Vec<f64> = actual.values().iter().map(|v| v.grams_per_kwh()).collect();
    let abs_errs: Vec<f64> = f.iter().zip(a.iter()).map(|(x, y)| (x - y).abs()).collect();
    let mae = stats::mean(&abs_errs).expect("non-empty");
    let rmse = (f
        .iter()
        .zip(a.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / f.len() as f64)
        .sqrt();
    let mean_a = stats::mean(&a).expect("non-empty");
    let clim_errs: Vec<f64> = a.iter().map(|y| (mean_a - y).abs()).collect();
    let climatology_mae = stats::mean(&clim_errs).expect("non-empty");
    ForecastSkill {
        mae,
        rmse,
        climatology_mae,
        skill: 1.0 - mae / climatology_mae,
    }
}

/// A day-ahead forecast with a *known* error level: each slot of
/// `actual` perturbed by Gaussian noise of standard deviation `rmse`
/// (gCO₂/kWh), deterministically from `seed`. `rmse = 0.0` returns the
/// outturn itself — the oracle forecast the forecast-vs-outturn
/// scenario's properties pin against.
///
/// This is the series form of [`crate::api::to_records`]'s forecast
/// column (same noise stream, same clamping at zero), for hosts that
/// want a forecast [`IntensitySeries`] to publish rather than API
/// records.
pub fn synthetic_day_ahead(actual: &IntensitySeries, rmse: f64, seed: u64) -> IntensitySeries {
    let records = crate::api::to_records(actual, rmse, seed);
    IntensitySeries::new(
        actual.start(),
        actual.step(),
        records.iter().map(|r| r.forecast).collect(),
    )
}

/// Convenience: the greenest `k`-slot window inside `[from, from + horizon)`
/// according to a forecast — what a day-ahead job placement would book.
pub fn best_forecast_window(
    forecast: &IntensitySeries,
    from: Timestamp,
    horizon: SimDuration,
    k: usize,
) -> Option<(Timestamp, CarbonIntensity)> {
    let window = iriscast_units::Period::starting_at(from, horizon);
    let sliced = forecast.slice(window)?;
    sliced.greenest_window(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::uk_november_2022;

    fn history() -> IntensitySeries {
        uk_november_2022(13).simulate().intensity().clone()
    }

    #[test]
    fn forecast_aligns_with_history() {
        let h = history();
        let f = DayAheadForecaster::gb_default().forecast_series(&h);
        assert_eq!(f.len(), h.len());
        assert_eq!(f.start(), h.start());
        assert!(f.values().iter().all(|v| v.grams_per_kwh() >= 0.0));
    }

    #[test]
    fn forecaster_beats_climatology() {
        let h = history();
        let f = DayAheadForecaster::gb_default().forecast_series(&h);
        // Score from day 2 onward (day 1 has no persistence anchor).
        let later = iriscast_units::Period::new(Timestamp::from_days(2), Timestamp::from_days(30));
        let fs = f.slice(later).unwrap();
        let hs = h.slice(later).unwrap();
        let skill = score(&fs, &hs);
        assert!(
            skill.skill > 0.1,
            "day-ahead persistence should beat climatology: {skill:?}"
        );
        assert!(skill.rmse >= skill.mae);
    }

    #[test]
    fn pure_climatology_weight_zero_near_recent_mean() {
        let h = history();
        let f = DayAheadForecaster {
            persistence_weight: 0.0,
        }
        .forecast_series(&h);
        // With zero anomaly weight, forecasts are smoothed running means:
        // the diurnal + noise variance is filtered out. (The synoptic
        // component survives smoothing, so the reduction is modest.)
        let var = |s: &IntensitySeries| {
            let v: Vec<f64> = s.values().iter().map(|x| x.grams_per_kwh()).collect();
            crate::stats::std_dev(&v).unwrap()
        };
        assert!(var(&f) < var(&h) * 0.95, "{} vs {}", var(&f), var(&h));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn score_rejects_misaligned() {
        let h = history();
        let short = h.slice(iriscast_units::Period::day(1)).unwrap();
        let _ = score(&short, &h);
    }

    #[test]
    fn synthetic_day_ahead_matches_api_records() {
        let h = history();
        let f = synthetic_day_ahead(&h, 25.0, 11);
        assert_eq!(f.len(), h.len());
        assert_eq!(f.start(), h.start());
        assert_eq!(f.step(), h.step());
        // Same noise stream as the API record synthesis.
        let records = crate::api::to_records(&h, 25.0, 11);
        for (v, r) in f.values().iter().zip(&records) {
            assert_eq!(*v, r.forecast);
        }
        // Zero RMSE is the oracle: the forecast *is* the outturn.
        assert_eq!(synthetic_day_ahead(&h, 0.0, 11), h);
        let skill = score(&f, &h);
        assert!(skill.rmse > 0.0);
    }

    #[test]
    fn best_window_is_inside_horizon() {
        let h = history();
        let f = DayAheadForecaster::gb_default().forecast_series(&h);
        let (start, mean) =
            best_forecast_window(&f, Timestamp::from_days(3), SimDuration::DAY, 8).unwrap();
        assert!(start >= Timestamp::from_days(3));
        assert!(start + SimDuration::SETTLEMENT_PERIOD * 8 <= Timestamp::from_days(4));
        assert!(mean.grams_per_kwh() > 0.0);
    }
}
