//! Generation technologies and per-fuel emission factors.

use iriscast_units::CarbonIntensity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A generation technology category, following the fuel breakdown the GB
/// Carbon Intensity API publishes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuelType {
    /// Combined-cycle and open-cycle gas turbines.
    Gas,
    /// Coal-fired steam plant (residual capacity in 2022).
    Coal,
    /// Nuclear fission.
    Nuclear,
    /// Onshore and offshore wind.
    Wind,
    /// Utility and embedded solar PV.
    Solar,
    /// Run-of-river and reservoir hydro.
    Hydro,
    /// Biomass thermal plant (Drax-style).
    Biomass,
    /// Net interconnector imports (France, Belgium, Netherlands, Norway).
    Imports,
    /// Pumped storage and batteries (discharge).
    Storage,
    /// Miscellaneous/other recorded generation.
    Other,
}

impl FuelType {
    /// All fuels in display order.
    pub const ALL: [FuelType; 10] = [
        FuelType::Gas,
        FuelType::Coal,
        FuelType::Nuclear,
        FuelType::Wind,
        FuelType::Solar,
        FuelType::Hydro,
        FuelType::Biomass,
        FuelType::Imports,
        FuelType::Storage,
        FuelType::Other,
    ];

    /// Operational (generation-phase) emission factor.
    ///
    /// Values follow the factors used by the GB Carbon Intensity
    /// methodology: combustion fuels carry their stack emissions; nuclear
    /// and renewables are counted as zero *operational* carbon (their
    /// embodied emissions are out of scope here, a caveat the paper's
    /// summary discusses explicitly); imports carry the average intensity
    /// of the exporting mix.
    pub const fn intensity(self) -> CarbonIntensity {
        let g_per_kwh = match self {
            FuelType::Gas => 394.0,
            FuelType::Coal => 937.0,
            FuelType::Nuclear => 0.0,
            FuelType::Wind => 0.0,
            FuelType::Solar => 0.0,
            FuelType::Hydro => 0.0,
            FuelType::Biomass => 120.0,
            FuelType::Imports => 220.0,
            FuelType::Storage => 75.0, // round-trip-charged mix average
            FuelType::Other => 300.0,
        };
        CarbonIntensity::from_grams_per_kwh(g_per_kwh)
    }

    /// `true` for fuels dispatched regardless of price (must-run).
    pub const fn is_must_run(self) -> bool {
        matches!(
            self,
            FuelType::Nuclear | FuelType::Wind | FuelType::Solar | FuelType::Hydro
        )
    }

    /// `true` for zero-operational-carbon fuels.
    pub fn is_zero_carbon(self) -> bool {
        self.intensity().grams_per_kwh() == 0.0
    }
}

impl fmt::Display for FuelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuelType::Gas => "gas",
            FuelType::Coal => "coal",
            FuelType::Nuclear => "nuclear",
            FuelType::Wind => "wind",
            FuelType::Solar => "solar",
            FuelType::Hydro => "hydro",
            FuelType::Biomass => "biomass",
            FuelType::Imports => "imports",
            FuelType::Storage => "storage",
            FuelType::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_ordering_is_physical() {
        assert!(FuelType::Coal.intensity() > FuelType::Gas.intensity());
        assert!(FuelType::Gas.intensity() > FuelType::Biomass.intensity());
        assert_eq!(FuelType::Wind.intensity().grams_per_kwh(), 0.0);
        assert_eq!(FuelType::Nuclear.intensity().grams_per_kwh(), 0.0);
    }

    #[test]
    fn must_run_set() {
        assert!(FuelType::Nuclear.is_must_run());
        assert!(FuelType::Wind.is_must_run());
        assert!(!FuelType::Gas.is_must_run());
        assert!(!FuelType::Biomass.is_must_run());
    }

    #[test]
    fn zero_carbon_set() {
        let zero: Vec<_> = FuelType::ALL
            .iter()
            .filter(|f| f.is_zero_carbon())
            .collect();
        assert_eq!(zero.len(), 4);
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut set = std::collections::HashSet::new();
        for f in FuelType::ALL {
            assert!(set.insert(f), "duplicate fuel {f}");
        }
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn display_names() {
        assert_eq!(FuelType::Gas.to_string(), "gas");
        assert_eq!(FuelType::Imports.to_string(), "imports");
    }
}
