//! Electricity-grid generation-mix and carbon-intensity simulator.
//!
//! The paper converts measured energy into climate impact using the carbon
//! intensity of the GB electricity supply, reading reference values of
//! 50 / 175 / 300 gCO₂/kWh off the national half-hourly data for November
//! 2022 (its Figure 1). The live service behind that figure
//! (carbonintensity.org.uk) is not available to an offline reproduction,
//! so this crate implements the substrate:
//!
//! * [`FuelType`] — generation technologies with per-fuel emission factors;
//! * [`DemandModel`] — GB national demand with diurnal/weekly structure;
//! * [`weather`] — stochastic wind (mean-reverting, synoptic-scale) and
//!   deterministic-envelope solar capacity-factor processes;
//! * [`Dispatcher`] — merit-order dispatch matching generation to demand;
//! * [`IntensitySeries`] — the resulting half-hourly gCO₂/kWh series with
//!   the statistics the paper reads off it (daily means for Figure 1,
//!   percentile-based low/medium/high references);
//! * [`scenario`] — calibrated scenarios, most importantly
//!   [`scenario::uk_november_2022`], plus decarbonisation what-ifs;
//! * [`api`] — record/index types mirroring the shape of the public
//!   Carbon Intensity API, for the data-collection code path.
//!
//! # Example
//!
//! ```
//! use iriscast_grid::scenario;
//!
//! let sim = scenario::uk_november_2022(7).simulate();
//! let series = sim.intensity();
//! // November 2022 was mid-transition: swings between ~50 and ~300.
//! let refs = series.reference_values();
//! assert!(refs.low.grams_per_kwh() < 110.0);
//! assert!(refs.high.grams_per_kwh() > 230.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
mod demand;
mod dispatch;
pub mod events;
pub mod forecast;
mod fuel;
mod mix;
pub mod regions;
pub mod scenario;
pub mod series;
pub mod stats;
pub mod weather;

pub use demand::DemandModel;
pub use dispatch::{DispatchResult, Dispatcher, GenerationCapacity};
pub use events::{stress_episodes, GridEvent};
pub use forecast::{synthetic_day_ahead, DayAheadForecaster, ForecastSkill};
pub use fuel::FuelType;
pub use mix::GenerationMix;
pub use regions::GbRegion;
pub use scenario::{GridScenario, GridSimulation};
pub use series::{IntensitySeries, ReferenceValues};
