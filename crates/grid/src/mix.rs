//! A generation mix at one instant and its blended intensity.

use crate::FuelType;
use iriscast_units::{CarbonIntensity, Power};
use serde::{Deserialize, Serialize};

/// Generation by fuel at one settlement period.
///
/// Stored as a fixed array indexed by [`FuelType::ALL`] order — the mix is
/// built 48 times per simulated day, so avoiding a `HashMap` keeps the
/// dispatch loop allocation-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GenerationMix {
    generation_w: [f64; 10],
}

impl GenerationMix {
    /// An empty (all-zero) mix.
    pub fn new() -> Self {
        GenerationMix::default()
    }

    fn index(fuel: FuelType) -> usize {
        FuelType::ALL
            .iter()
            .position(|&f| f == fuel)
            .expect("FuelType::ALL covers every variant")
    }

    /// Sets generation for `fuel`.
    pub fn set(&mut self, fuel: FuelType, power: Power) {
        self.generation_w[Self::index(fuel)] = power.watts();
    }

    /// Adds generation for `fuel`.
    pub fn add(&mut self, fuel: FuelType, power: Power) {
        self.generation_w[Self::index(fuel)] += power.watts();
    }

    /// Generation currently attributed to `fuel`.
    pub fn get(&self, fuel: FuelType) -> Power {
        Power::from_watts(self.generation_w[Self::index(fuel)])
    }

    /// Total generation across all fuels.
    pub fn total(&self) -> Power {
        Power::from_watts(self.generation_w.iter().sum())
    }

    /// Generation-weighted carbon intensity of the mix.
    ///
    /// Zero total generation yields zero intensity (an empty grid emits
    /// nothing).
    pub fn intensity(&self) -> CarbonIntensity {
        let total = self.generation_w.iter().sum::<f64>();
        if total <= 0.0 {
            return CarbonIntensity::ZERO;
        }
        let weighted: f64 = FuelType::ALL
            .iter()
            .zip(self.generation_w.iter())
            .map(|(fuel, w)| fuel.intensity().grams_per_kwh() * w)
            .sum();
        CarbonIntensity::from_grams_per_kwh(weighted / total)
    }

    /// Share of total generation from `fuel`, in `[0, 1]` (zero when the
    /// grid is empty).
    pub fn share(&self, fuel: FuelType) -> f64 {
        let total = self.generation_w.iter().sum::<f64>();
        if total <= 0.0 {
            return 0.0;
        }
        self.generation_w[Self::index(fuel)] / total
    }

    /// Share of total generation with zero operational carbon.
    pub fn zero_carbon_share(&self) -> f64 {
        FuelType::ALL
            .iter()
            .filter(|f| f.is_zero_carbon())
            .map(|&f| self.share(f))
            .sum()
    }

    /// Iterates `(fuel, generation)` pairs in [`FuelType::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (FuelType, Power)> + '_ {
        FuelType::ALL
            .iter()
            .zip(self.generation_w.iter())
            .map(|(&f, &w)| (f, Power::from_watts(w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GenerationMix {
        let mut m = GenerationMix::new();
        m.set(FuelType::Gas, Power::from_gigawatts(10.0));
        m.set(FuelType::Wind, Power::from_gigawatts(10.0));
        m.set(FuelType::Nuclear, Power::from_gigawatts(5.0));
        m.set(FuelType::Biomass, Power::from_gigawatts(2.0));
        m
    }

    #[test]
    fn totals_and_shares() {
        let m = sample();
        assert_eq!(m.total(), Power::from_gigawatts(27.0));
        assert!((m.share(FuelType::Gas) - 10.0 / 27.0).abs() < 1e-12);
        assert!((m.zero_carbon_share() - 15.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn blended_intensity() {
        let m = sample();
        // (10·394 + 10·0 + 5·0 + 2·120) / 27 = (3940 + 240)/27 ≈ 154.8
        let ci = m.intensity().grams_per_kwh();
        assert!((ci - 154.81).abs() < 0.1, "got {ci}");
    }

    #[test]
    fn empty_mix_is_zero_intensity() {
        let m = GenerationMix::new();
        assert_eq!(m.intensity(), CarbonIntensity::ZERO);
        assert_eq!(m.share(FuelType::Gas), 0.0);
        assert_eq!(m.total(), Power::ZERO);
    }

    #[test]
    fn add_accumulates() {
        let mut m = GenerationMix::new();
        m.add(FuelType::Wind, Power::from_gigawatts(1.0));
        m.add(FuelType::Wind, Power::from_gigawatts(2.0));
        assert_eq!(m.get(FuelType::Wind), Power::from_gigawatts(3.0));
    }

    #[test]
    fn coal_heavy_mix_is_dirtier_than_gas_heavy() {
        let mut coal = GenerationMix::new();
        coal.set(FuelType::Coal, Power::from_gigawatts(10.0));
        let mut gas = GenerationMix::new();
        gas.set(FuelType::Gas, Power::from_gigawatts(10.0));
        assert!(coal.intensity() > gas.intensity());
    }

    #[test]
    fn iter_covers_all_fuels() {
        let m = sample();
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs.len(), 10);
        let total: Power = pairs.iter().map(|(_, p)| *p).sum();
        assert_eq!(total, m.total());
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: GenerationMix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
