//! Regional carbon intensity: the GB distribution regions.
//!
//! The national series (Figure 1) hides large spatial variance: Scotland's
//! wind-dominated grid regularly runs below 30 gCO₂/kWh while the
//! gas-fired South East sits far above the national mean. The Carbon
//! Intensity API publishes per-DNO-region values; the IRIS sites span four
//! of those regions, so a per-site assessment can differ noticeably from
//! the national one. We model each region as an affine transform of the
//! national series — the first-order structure of the published data,
//! where regional series track national weather but with persistent
//! offsets from the local generation fleet.

use crate::IntensitySeries;
use iriscast_units::CarbonIntensity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// GB distribution regions hosting IRIS sites (a subset of the API's 14).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GbRegion {
    /// London — gas-heavy, imports-dependent.
    London,
    /// East England (hosts Cambridge).
    EastEngland,
    /// North East England (hosts Durham).
    NorthEastEngland,
    /// South England (hosts Harwell/RAL).
    SouthEngland,
    /// South Scotland — wind-rich.
    SouthScotland,
    /// National aggregate (what the paper used).
    National,
}

impl GbRegion {
    /// Multiplicative scale relative to the national intensity.
    ///
    /// Values follow the persistent 2022 ordering of the regional data:
    /// Scotland far below national, London/South above.
    pub const fn scale(self) -> f64 {
        match self {
            GbRegion::London => 1.25,
            GbRegion::EastEngland => 1.10,
            GbRegion::NorthEastEngland => 0.85,
            GbRegion::SouthEngland => 1.15,
            GbRegion::SouthScotland => 0.35,
            GbRegion::National => 1.0,
        }
    }

    /// Additive offset (g/kWh) on top of the scaled national value —
    /// captures must-run local plant that doesn't track national weather.
    pub const fn offset_g_per_kwh(self) -> f64 {
        match self {
            GbRegion::London => 15.0,
            GbRegion::EastEngland => 5.0,
            GbRegion::NorthEastEngland => 0.0,
            GbRegion::SouthEngland => 8.0,
            GbRegion::SouthScotland => 5.0,
            GbRegion::National => 0.0,
        }
    }

    /// The region hosting an IRIS site code, `National` for unknown codes.
    pub fn for_iris_site(code: &str) -> GbRegion {
        match code {
            "QMUL" | "IMP" => GbRegion::London,
            "CAM" => GbRegion::EastEngland,
            "DUR" => GbRegion::NorthEastEngland,
            "STFC-CLOUD" | "STFC-SCARF" => GbRegion::SouthEngland,
            _ => GbRegion::National,
        }
    }

    /// Transforms one national value into this region's value.
    pub fn localise(self, national: CarbonIntensity) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(
            (national.grams_per_kwh() * self.scale() + self.offset_g_per_kwh()).max(0.0),
        )
    }

    /// Transforms a whole national series into this region's series.
    pub fn localise_series(self, national: &IntensitySeries) -> IntensitySeries {
        IntensitySeries::new(
            national.start(),
            national.step(),
            national
                .values()
                .iter()
                .map(|&v| self.localise(v))
                .collect(),
        )
    }
}

impl fmt::Display for GbRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GbRegion::London => "London",
            GbRegion::EastEngland => "East England",
            GbRegion::NorthEastEngland => "North East England",
            GbRegion::SouthEngland => "South England",
            GbRegion::SouthScotland => "South Scotland",
            GbRegion::National => "National",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::uk_november_2022;

    #[test]
    fn scotland_is_cleanest_london_dirtiest() {
        let national = CarbonIntensity::from_grams_per_kwh(175.0);
        let scot = GbRegion::SouthScotland.localise(national);
        let london = GbRegion::London.localise(national);
        let nat = GbRegion::National.localise(national);
        assert!(scot < nat && nat < london);
        assert_eq!(nat, national);
    }

    #[test]
    fn localisation_never_negative() {
        for region in [
            GbRegion::London,
            GbRegion::SouthScotland,
            GbRegion::NorthEastEngland,
        ] {
            let v = region.localise(CarbonIntensity::ZERO);
            assert!(v.grams_per_kwh() >= 0.0);
        }
    }

    #[test]
    fn series_localisation_preserves_structure() {
        let sim = uk_november_2022(5).simulate();
        let national = sim.intensity();
        let regional = GbRegion::NorthEastEngland.localise_series(national);
        assert_eq!(regional.len(), national.len());
        assert_eq!(regional.start(), national.start());
        // Affine transform with positive scale preserves the argmin slot.
        let nat_min_idx = national
            .values()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let reg_min_idx = regional
            .values()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(nat_min_idx, reg_min_idx);
        // And the mean scales accordingly.
        let expect = GbRegion::NorthEastEngland.localise(national.mean());
        assert!((regional.mean().grams_per_kwh() - expect.grams_per_kwh()).abs() < 1e-9);
    }

    #[test]
    fn iris_sites_map_to_regions() {
        assert_eq!(GbRegion::for_iris_site("QMUL"), GbRegion::London);
        assert_eq!(GbRegion::for_iris_site("DUR"), GbRegion::NorthEastEngland);
        assert_eq!(GbRegion::for_iris_site("CAM"), GbRegion::EastEngland);
        assert_eq!(
            GbRegion::for_iris_site("STFC-SCARF"),
            GbRegion::SouthEngland
        );
        assert_eq!(GbRegion::for_iris_site("nowhere"), GbRegion::National);
    }

    #[test]
    fn regional_spread_is_material() {
        // The spatial variance the national figure hides: for the same
        // weather, Scotland vs London differ by >3× — the paper's
        // "displacing other activities" caveat in numbers.
        let sim = uk_november_2022(9).simulate();
        let scot = GbRegion::SouthScotland
            .localise_series(sim.intensity())
            .mean();
        let london = GbRegion::London.localise_series(sim.intensity()).mean();
        assert!(london.grams_per_kwh() > scot.grams_per_kwh() * 3.0);
    }
}
