//! Calibrated grid scenarios, most importantly "UK, November 2022".

use crate::weather::{SolarProcess, WindProcess};
use crate::{DemandModel, Dispatcher, GenerationCapacity, GenerationMix, IntensitySeries};
use iriscast_units::{CarbonIntensity, Period, Power, SimDuration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A complete grid simulation configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridScenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Simulated window.
    pub period: Period,
    /// Sampling step (settlement period by default).
    pub step: SimDuration,
    /// Demand envelope.
    pub demand: DemandModel,
    /// Generation fleet.
    pub capacity: GenerationCapacity,
    /// Fractional demand noise (std-dev of a multiplicative factor).
    pub demand_noise: f64,
    /// RNG seed — fixed seed ⇒ bit-identical series.
    pub seed: u64,
}

/// The GB grid for the month containing the paper's snapshot.
///
/// Calibration targets (checked by tests) come from the published November
/// 2022 statistics visible in the paper's Figure 1: a monthly mean around
/// 180 gCO₂/kWh, calm-spell days near 300, and windy days below 80.
pub fn uk_november_2022(seed: u64) -> GridScenario {
    GridScenario {
        name: "UK November 2022".to_string(),
        period: Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(30)),
        step: SimDuration::SETTLEMENT_PERIOD,
        demand: DemandModel::gb_november(),
        capacity: GenerationCapacity::gb_2022(),
        demand_noise: 0.015,
        seed,
    }
}

/// A decarbonised mid-2030s what-if, for the paper's forward-looking
/// discussion (active carbon shrinking, embodied carbon dominating).
pub fn uk_2035_decarbonised(seed: u64) -> GridScenario {
    GridScenario {
        name: "UK 2035 decarbonised".to_string(),
        period: Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(30)),
        step: SimDuration::SETTLEMENT_PERIOD,
        demand: DemandModel::gb_november(),
        capacity: GenerationCapacity::gb_2035_decarbonised(),
        demand_noise: 0.015,
        seed,
    }
}

impl GridScenario {
    /// Runs the simulation: weather → demand → dispatch for every
    /// settlement period of the window.
    pub fn simulate(&self) -> GridSimulation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut wind = WindProcess::gb_november(&mut rng);
        let mut solar = SolarProcess::gb_november(&mut rng);
        let dispatcher = Dispatcher::new(self.capacity.clone());
        let dt_hours = self.step.as_hours();

        let n = self.period.step_count(self.step);
        let mut intensities = Vec::with_capacity(n);
        let mut mixes = Vec::with_capacity(n);
        let mut demands = Vec::with_capacity(n);
        let mut curtailed = Vec::with_capacity(n);

        for t in self.period.iter_steps(self.step) {
            let wind_cf = wind.step(t, dt_hours, &mut rng);
            let solar_cf = solar.step(t, &mut rng);
            let noise = 1.0 + self.demand_noise * gaussian(&mut rng);
            let demand = (self.demand.demand_at(t) * noise).max(Power::ZERO);
            let result = dispatcher.dispatch(demand, wind_cf, solar_cf);
            intensities.push(result.mix.intensity());
            mixes.push(result.mix);
            demands.push(demand);
            curtailed.push(result.curtailed);
        }

        GridSimulation {
            scenario_name: self.name.clone(),
            series: IntensitySeries::new(self.period.start(), self.step, intensities),
            mixes,
            demands,
            curtailed,
        }
    }
}

/// Standard-normal sample via Box–Muller (rand 0.8 has no normal
/// distribution without `rand_distr`).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Output of a grid simulation: the intensity series plus the underlying
/// mixes and demands for inspection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridSimulation {
    /// Name of the scenario that produced this run.
    pub scenario_name: String,
    series: IntensitySeries,
    mixes: Vec<GenerationMix>,
    demands: Vec<Power>,
    curtailed: Vec<Power>,
}

impl GridSimulation {
    /// The half-hourly carbon-intensity series.
    pub fn intensity(&self) -> &IntensitySeries {
        &self.series
    }

    /// Generation mixes aligned with the intensity series.
    pub fn mixes(&self) -> &[GenerationMix] {
        &self.mixes
    }

    /// Demands aligned with the intensity series.
    pub fn demands(&self) -> &[Power] {
        &self.demands
    }

    /// Mean zero-carbon share over the run.
    pub fn mean_zero_carbon_share(&self) -> f64 {
        let sum: f64 = self
            .mixes
            .iter()
            .map(GenerationMix::zero_carbon_share)
            .sum();
        sum / self.mixes.len() as f64
    }

    /// Curtailed power per slot, aligned with the intensity series.
    pub fn curtailed(&self) -> &[Power] {
        &self.curtailed
    }

    /// Total renewable energy curtailed over the run — the "free" energy a
    /// carbon-aware consumer could in principle soak up.
    pub fn total_curtailed_energy(&self) -> iriscast_units::Energy {
        let sum: Power = self.curtailed.iter().sum();
        sum * self.series.step()
    }

    /// Fraction of slots with any curtailment.
    pub fn curtailment_frequency(&self) -> f64 {
        let n = self.curtailed.iter().filter(|p| p.watts() > 0.0).count();
        n as f64 / self.curtailed.len() as f64
    }
}

/// A constant-intensity "scenario" for scalar evaluations (the paper's
/// three reference values applied to a 24-hour snapshot).
pub fn constant_intensity(period: Period, value: CarbonIntensity) -> IntensitySeries {
    IntensitySeries::constant(period, SimDuration::SETTLEMENT_PERIOD, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn november_2022_calibration() {
        // Average over several seeds: the climatology, not one draw.
        let mut means = Vec::new();
        let mut maxima = Vec::new();
        let mut minima = Vec::new();
        for seed in 0..8 {
            let sim = uk_november_2022(seed).simulate();
            let s = sim.intensity();
            means.push(s.mean().grams_per_kwh());
            maxima.push(s.max().grams_per_kwh());
            minima.push(s.min().grams_per_kwh());
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (140.0..=220.0).contains(&mean),
            "monthly mean {mean:.0} g/kWh off November 2022 climatology"
        );
        // Every month should contain both calm (dirty) and windy (clean)
        // spells.
        for (i, (&hi, &lo)) in maxima.iter().zip(minima.iter()).enumerate() {
            assert!(hi > 230.0, "seed {i}: max {hi:.0} too low");
            assert!(lo < 110.0, "seed {i}: min {lo:.0} too high");
        }
    }

    #[test]
    fn reference_values_bracket_paper_choices() {
        // The paper reads 50/175/300 off Figure 1. Our p5/median/p95
        // should land in comparable bands.
        let sim = uk_november_2022(42).simulate();
        let refs = sim.intensity().reference_values();
        assert!(
            refs.low.grams_per_kwh() < 120.0,
            "low ref {} too high",
            refs.low
        );
        assert!(
            (110.0..=260.0).contains(&refs.mid.grams_per_kwh()),
            "mid ref {} off",
            refs.mid
        );
        assert!(
            refs.high.grams_per_kwh() > 230.0,
            "high ref {} too low",
            refs.high
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = uk_november_2022(7).simulate();
        let b = uk_november_2022(7).simulate();
        assert_eq!(a.intensity().values(), b.intensity().values());
        let c = uk_november_2022(8).simulate();
        assert_ne!(a.intensity().values(), c.intensity().values());
    }

    #[test]
    fn series_has_expected_length() {
        let sim = uk_november_2022(1).simulate();
        assert_eq!(sim.intensity().len(), 30 * 48);
        assert_eq!(sim.mixes().len(), 30 * 48);
        assert_eq!(sim.demands().len(), 30 * 48);
    }

    #[test]
    fn daily_means_show_synoptic_variability() {
        let sim = uk_november_2022(3).simulate();
        let daily = sim.intensity().daily_means();
        assert_eq!(daily.len(), 30);
        let values: Vec<f64> = daily.iter().map(|(_, v)| v.grams_per_kwh()).collect();
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 80.0,
            "daily means too flat (spread {spread:.0}); Figure 1 shows >100 g/kWh swings"
        );
    }

    #[test]
    fn decarbonised_scenario_is_cleaner() {
        let now = uk_november_2022(5).simulate();
        let future = uk_2035_decarbonised(5).simulate();
        let ci_now = now.intensity().mean().grams_per_kwh();
        let ci_future = future.intensity().mean().grams_per_kwh();
        assert!(
            ci_future < ci_now * 0.5,
            "2035 mean {ci_future:.0} not well below 2022 mean {ci_now:.0}"
        );
        assert!(future.mean_zero_carbon_share() > now.mean_zero_carbon_share());
    }

    #[test]
    fn demand_is_always_served_in_calibrated_scenarios() {
        let scenario = uk_november_2022(11);
        let dispatcher = Dispatcher::new(scenario.capacity.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let mut wind = WindProcess::gb_november(&mut rng);
        let mut solar = SolarProcess::gb_november(&mut rng);
        for t in scenario.period.iter_steps(scenario.step) {
            let w = wind.step(t, 0.5, &mut rng);
            let s = solar.step(t, &mut rng);
            let r = dispatcher.dispatch(scenario.demand.demand_at(t), w, s);
            assert_eq!(r.unserved, Power::ZERO, "unserved demand at {t}");
        }
    }

    #[test]
    fn curtailment_statistics() {
        // 2022: tight margins, curtailment rare. 2035: renewables triple,
        // curtailment becomes routine.
        let now = uk_november_2022(7).simulate();
        let future = uk_2035_decarbonised(7).simulate();
        assert_eq!(now.curtailed().len(), now.intensity().len());
        assert!(
            future.curtailment_frequency() > now.curtailment_frequency(),
            "2035 {:.2} vs 2022 {:.2}",
            future.curtailment_frequency(),
            now.curtailment_frequency()
        );
        assert!(
            future.total_curtailed_energy() > now.total_curtailed_energy(),
            "curtailed energy must grow with renewable build-out"
        );
    }

    #[test]
    fn constant_intensity_helper() {
        let s = constant_intensity(
            Period::snapshot_24h(),
            CarbonIntensity::from_grams_per_kwh(175.0),
        );
        assert_eq!(s.len(), 48);
        assert_eq!(s.mean().grams_per_kwh(), 175.0);
    }
}
