//! Half-hourly carbon-intensity series: construction, summaries,
//! alignment and resampling.
//!
//! [`IntensitySeries`] is the crate's central data structure — the
//! offline stand-in for the national half-hourly feed behind the paper's
//! Figure 1. Each value is the intensity *for* one interval, so the
//! series composes exactly with interval energy (equation 3) and with the
//! alignment rules in [`iriscast_units::align`]: a series can be
//! [resampled](IntensitySeries::resample) to a coarser or finer grid
//! (time-weighted means / repeated rates), [sliced](IntensitySeries::slice)
//! to a sub-period, [rebased](IntensitySeries::rebased) onto another
//! clock, or [projected](IntensitySeries::project_onto) directly onto an
//! energy grid for convolution.
//!
//! Summaries mirror what the paper reads off the data: daily means
//! (Figure 1), percentile-based low/medium/high
//! [reference values](IntensitySeries::reference_values), and the
//! greenest-window query carbon-aware scheduling builds on.
//!
//! ```
//! use iriscast_grid::series::IntensitySeries;
//! use iriscast_units::{CarbonIntensity, SimDuration, Timestamp};
//!
//! // Four settlement periods of intensity data…
//! let s = IntensitySeries::new(
//!     Timestamp::EPOCH,
//!     SimDuration::SETTLEMENT_PERIOD,
//!     [60.0, 120.0, 300.0, 180.0]
//!         .iter()
//!         .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
//!         .collect(),
//! );
//! assert_eq!(s.mean().grams_per_kwh(), 165.0);
//!
//! // …resampled to hourly (time-weighted mean of each pair)…
//! let hourly = s.resample(SimDuration::HOUR).unwrap();
//! assert_eq!(hourly.len(), 2);
//! assert_eq!(hourly.values()[0].grams_per_kwh(), 90.0);
//!
//! // …and refined back to 15-minute slots (rates repeat).
//! let fine = s.resample(SimDuration::from_minutes(15)).unwrap();
//! assert_eq!(fine.len(), 8);
//! assert_eq!(fine.values()[1], s.values()[0]);
//! ```

use crate::stats;
use iriscast_units::{
    CarbonIntensity, Period, SimDuration, TimeGrid, Timestamp, TriEstimate, UnitsError,
};
use serde::{Deserialize, Serialize};

/// A regularly sampled carbon-intensity series (one value per settlement
/// period by convention, though any positive step is supported).
///
/// Each value is the intensity *for the interval* `[tᵢ, tᵢ + step)` —
/// matching how the national data is published — so multiplying interval
/// energy by the matching value implements equation (3) of the paper
/// exactly, with no interpolation ambiguity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntensitySeries {
    start: Timestamp,
    step: SimDuration,
    values: Vec<CarbonIntensity>,
}

/// The paper's three reference intensities, read off the series.
///
/// The paper picks 50 (low), 175 (medium) and 300 (high) gCO₂/kWh "given
/// the significant variability" of Figure 1; we formalise the reading as
/// the 5th percentile, median, and 95th percentile of the half-hourly
/// values.
pub type ReferenceValues = TriEstimate<CarbonIntensity>;

impl IntensitySeries {
    /// Builds a series starting at `start` with one value per `step`.
    ///
    /// # Panics
    /// If `step` is not positive or `values` is empty.
    pub fn new(start: Timestamp, step: SimDuration, values: Vec<CarbonIntensity>) -> Self {
        assert!(step.as_secs() > 0, "step must be positive");
        assert!(!values.is_empty(), "an intensity series cannot be empty");
        IntensitySeries {
            start,
            step,
            values,
        }
    }

    /// A constant-intensity series covering `period` (used for the paper's
    /// scalar low/medium/high evaluation).
    pub fn constant(period: Period, step: SimDuration, value: CarbonIntensity) -> Self {
        let n = period.step_count(step);
        IntensitySeries::new(period.start(), step, vec![value; n.max(1)])
    }

    /// First instant covered.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Sampling step.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `false` always (construction rejects empty series); present for
    /// clippy-idiomatic pairing with [`IntensitySeries::len`].
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The covered period `[start, start + len·step)`.
    pub fn period(&self) -> Period {
        Period::starting_at(self.start, self.step * self.values.len() as i64)
    }

    /// The series' sampling grid (start, step, slot count) — the handle
    /// the alignment rules in [`iriscast_units::align`] operate on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.start, self.step, self.values.len())
            .expect("series invariants guarantee a valid grid")
    }

    /// The same values re-anchored to start at `start` — used to compare
    /// windows from different days on one clock (e.g. sweeping which day
    /// a fixed 24-hour workload would have been cleanest on).
    pub fn rebased(&self, start: Timestamp) -> IntensitySeries {
        IntensitySeries {
            start,
            step: self.step,
            values: self.values.clone(),
        }
    }

    /// Resamples to `new_step`, exactly: coarsening takes the
    /// time-weighted mean of each whole window, refinement repeats the
    /// interval rate. The covered period must divide evenly into
    /// `new_step` windows and the steps must be whole multiples of each
    /// other; anything else is a [`UnitsError::GridMismatch`].
    pub fn resample(&self, new_step: SimDuration) -> Result<IntensitySeries, UnitsError> {
        let target = self.grid().resampled(new_step)?;
        Ok(IntensitySeries {
            start: self.start,
            step: new_step,
            values: self.project_onto(&target)?,
        })
    }

    /// Projects the interval rates onto an arbitrary aligned grid —
    /// the primitive the time-resolved engine uses to read intensity on
    /// an energy series' grid. Alignment rules (coverage, whole-multiple
    /// steps, matching phase) are enforced by
    /// [`TimeGrid::project_onto`].
    pub fn project_onto(&self, target: &TimeGrid) -> Result<Vec<CarbonIntensity>, UnitsError> {
        let plan = self.grid().project_onto(target)?;
        let raw: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        Ok(plan
            .apply_rate(&raw)?
            .into_iter()
            .map(CarbonIntensity::from_grams_per_kwh)
            .collect())
    }

    /// Raw interval values.
    pub fn values(&self) -> &[CarbonIntensity] {
        &self.values
    }

    /// Intensity of the interval containing `t`, or `None` outside the
    /// series.
    pub fn at(&self, t: Timestamp) -> Option<CarbonIntensity> {
        if t < self.start {
            return None;
        }
        let idx = ((t - self.start).as_secs() / self.step.as_secs()) as usize;
        self.values.get(idx).copied()
    }

    /// Iterates `(interval, intensity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Period, CarbonIntensity)> + '_ {
        self.values.iter().enumerate().map(move |(i, &v)| {
            let start = self.start + self.step * i as i64;
            (Period::starting_at(start, self.step), v)
        })
    }

    /// Restricts the series to the intervals fully inside `period`.
    /// Returns `None` when no interval qualifies.
    pub fn slice(&self, period: Period) -> Option<IntensitySeries> {
        let mut start_idx = None;
        let mut values = Vec::new();
        for (i, (interval, v)) in self.iter().enumerate() {
            if interval.start() >= period.start() && interval.end() <= period.end() {
                if start_idx.is_none() {
                    start_idx = Some(i);
                }
                values.push(v);
            }
        }
        let start_idx = start_idx?;
        Some(IntensitySeries::new(
            self.start + self.step * start_idx as i64,
            self.step,
            values,
        ))
    }

    /// Time-weighted mean intensity (all intervals are equal length, so
    /// this is the arithmetic mean).
    pub fn mean(&self) -> CarbonIntensity {
        let sum: f64 = self.values.iter().map(|v| v.grams_per_kwh()).sum();
        CarbonIntensity::from_grams_per_kwh(sum / self.values.len() as f64)
    }

    /// Minimum interval intensity.
    pub fn min(&self) -> CarbonIntensity {
        self.values
            .iter()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
            .expect("series is never empty")
    }

    /// Maximum interval intensity.
    pub fn max(&self) -> CarbonIntensity {
        self.values
            .iter()
            .copied()
            .max_by(|a, b| a.total_cmp(b))
            .expect("series is never empty")
    }

    /// Linear-interpolated percentile of interval values; `None` when
    /// `q` lies outside `[0, 1]` or the series carries a `NaN` sample.
    pub fn try_percentile(&self, q: f64) -> Option<CarbonIntensity> {
        let raw: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        stats::percentile(&raw, q).map(CarbonIntensity::from_grams_per_kwh)
    }

    /// Linear-interpolated percentile of interval values, `q ∈ [0, 1]`.
    ///
    /// # Panics
    /// If `q` lies outside `[0, 1]` or the series carries a `NaN`
    /// sample; use [`IntensitySeries::try_percentile`] to handle either
    /// as a value instead.
    pub fn percentile(&self, q: f64) -> CarbonIntensity {
        self.try_percentile(q)
            .expect("quantile must lie in [0, 1] and the series must be NaN-free")
    }

    /// The paper's low/medium/high reference reading: p5 / median / p95.
    /// One sort serves all three quantiles (`stats::percentiles`);
    /// `None` when the series carries a `NaN` sample.
    pub fn try_reference_values(&self) -> Option<ReferenceValues> {
        let raw: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        let ps = stats::percentiles(&raw, &[0.05, 0.50, 0.95])?;
        Some(TriEstimate::new(
            CarbonIntensity::from_grams_per_kwh(ps[0]),
            CarbonIntensity::from_grams_per_kwh(ps[1]),
            CarbonIntensity::from_grams_per_kwh(ps[2]),
        ))
    }

    /// The paper's low/medium/high reference reading: p5 / median / p95.
    ///
    /// # Panics
    /// If the series carries a `NaN` sample (the constructor does not
    /// forbid them); use [`IntensitySeries::try_reference_values`] to
    /// handle that as a value. (An earlier revision silently ranked
    /// `NaN`s into the high quantile instead.)
    pub fn reference_values(&self) -> ReferenceValues {
        self.try_reference_values()
            .expect("reference quantiles need a NaN-free series")
    }

    /// Daily mean intensities — the series plotted in the paper's
    /// Figure 1 ("average carbon intensity … over the month").
    ///
    /// Days are simulation days (`[d·86400, (d+1)·86400)`); partial
    /// leading/trailing days are included with the samples they have.
    pub fn daily_means(&self) -> Vec<(i64, CarbonIntensity)> {
        let mut acc: Vec<(i64, f64, u32)> = Vec::new();
        for (interval, v) in self.iter() {
            let day = interval.start().day_index();
            match acc.last_mut() {
                Some((d, sum, n)) if *d == day => {
                    *sum += v.grams_per_kwh();
                    *n += 1;
                }
                _ => acc.push((day, v.grams_per_kwh(), 1)),
            }
        }
        acc.into_iter()
            .map(|(d, sum, n)| (d, CarbonIntensity::from_grams_per_kwh(sum / f64::from(n))))
            .collect()
    }

    /// Serialises as CSV (`seconds,g_per_kwh`) for external plotting —
    /// the format the paper's Figure 1 would be drawn from.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.values.len() * 16 + 24);
        out.push_str("seconds,g_per_kwh\n");
        for (i, v) in self.values.iter().enumerate() {
            let t = self.start.as_secs() + self.step.as_secs() * i as i64;
            out.push_str(&format!("{t},{}\n", v.grams_per_kwh()));
        }
        out
    }

    /// Index of the `k` consecutive-interval window with the lowest mean
    /// intensity, as `(start_timestamp, mean)`. Used by carbon-aware
    /// scheduling. Returns `None` if the series is shorter than `k`.
    pub fn greenest_window(&self, k: usize) -> Option<(Timestamp, CarbonIntensity)> {
        if k == 0 || k > self.values.len() {
            return None;
        }
        let raw: Vec<f64> = self.values.iter().map(|v| v.grams_per_kwh()).collect();
        let mut window_sum: f64 = raw[..k].iter().sum();
        let mut best = (0usize, window_sum);
        for i in k..raw.len() {
            window_sum += raw[i] - raw[i - k];
            if window_sum < best.1 {
                best = (i - k + 1, window_sum);
            }
        }
        Some((
            self.start + self.step * best.0 as i64,
            CarbonIntensity::from_grams_per_kwh(best.1 / k as f64),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(g: f64) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(g)
    }

    fn series(values: &[f64]) -> IntensitySeries {
        IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values.iter().map(|&g| ci(g)).collect(),
        )
    }

    #[test]
    fn construction_validates() {
        let s = series(&[100.0, 200.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.period().duration(), SimDuration::HOUR);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        let _ = IntensitySeries::new(Timestamp::EPOCH, SimDuration::HOUR, vec![]);
    }

    #[test]
    fn lookup_by_time() {
        let s = series(&[100.0, 200.0, 300.0]);
        assert_eq!(s.at(Timestamp::from_secs(0)), Some(ci(100.0)));
        assert_eq!(s.at(Timestamp::from_secs(1_799)), Some(ci(100.0)));
        assert_eq!(s.at(Timestamp::from_secs(1_800)), Some(ci(200.0)));
        assert_eq!(s.at(Timestamp::from_secs(5_400)), None);
        assert_eq!(s.at(Timestamp::from_secs(-1)), None);
    }

    #[test]
    fn statistics() {
        let s = series(&[50.0, 100.0, 150.0, 300.0]);
        assert_eq!(s.mean(), ci(150.0));
        assert_eq!(s.min(), ci(50.0));
        assert_eq!(s.max(), ci(300.0));
        assert_eq!(s.percentile(0.5), ci(125.0));
    }

    #[test]
    fn reference_values_ordered() {
        let values: Vec<f64> = (0..480).map(|i| 50.0 + (i % 48) as f64 * 6.0).collect();
        let s = series(&values);
        let r = s.reference_values();
        assert!(r.low < r.mid && r.mid < r.high);
    }

    #[test]
    fn daily_means_group_by_day() {
        // Two days: day 0 constant 100, day 1 constant 200.
        let mut values = vec![100.0; 48];
        values.extend(vec![200.0; 48]);
        let s = series(&values);
        let d = s.daily_means();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (0, ci(100.0)));
        assert_eq!(d[1], (1, ci(200.0)));
    }

    #[test]
    fn constant_series() {
        let s = IntensitySeries::constant(
            Period::snapshot_24h(),
            SimDuration::SETTLEMENT_PERIOD,
            ci(175.0),
        );
        assert_eq!(s.len(), 48);
        assert_eq!(s.mean(), ci(175.0));
        assert_eq!(s.min(), s.max());
    }

    #[test]
    fn slicing() {
        let values: Vec<f64> = (0..96).map(f64::from).collect();
        let s = series(&values);
        let day1 = s.slice(Period::day(1)).unwrap();
        assert_eq!(day1.len(), 48);
        assert_eq!(day1.values()[0], ci(48.0));
        assert_eq!(day1.start(), Timestamp::from_days(1));
        // Slice outside coverage.
        assert!(s.slice(Period::day(10)).is_none());
    }

    #[test]
    fn greenest_window_finds_minimum() {
        let s = series(&[300.0, 250.0, 60.0, 50.0, 70.0, 280.0]);
        let (t, mean) = s.greenest_window(2).unwrap();
        // Windows: best is indices 2..4 (60, 50) → mean 55 at t = 2 slots.
        assert_eq!(t, Timestamp::from_secs(2 * 1_800));
        assert_eq!(mean, ci(55.0));
        assert!(s.greenest_window(0).is_none());
        assert!(s.greenest_window(7).is_none());
        // Whole-series window.
        let (t_all, _) = s.greenest_window(6).unwrap();
        assert_eq!(t_all, Timestamp::EPOCH);
    }

    #[test]
    fn csv_export() {
        let s = series(&[100.0, 250.5]);
        let csv = s.to_csv();
        assert_eq!(csv, "seconds,g_per_kwh\n0,100\n1800,250.5\n");
    }

    #[test]
    fn grid_matches_series_shape() {
        let s = series(&[1.0, 2.0, 3.0]);
        let g = s.grid();
        assert_eq!(g.start(), s.start());
        assert_eq!(g.step(), s.step());
        assert_eq!(g.len(), s.len());
        assert_eq!(g.period(), s.period());
    }

    #[test]
    fn rebasing_moves_the_clock_only() {
        let s = series(&[10.0, 20.0]);
        let r = s.rebased(Timestamp::from_days(3));
        assert_eq!(r.start(), Timestamp::from_days(3));
        assert_eq!(r.values(), s.values());
        assert_eq!(r.step(), s.step());
    }

    #[test]
    fn resample_round_trips_mean() {
        let s = series(&[60.0, 120.0, 300.0, 180.0]);
        let hourly = s.resample(SimDuration::HOUR).unwrap();
        assert_eq!(hourly.len(), 2);
        assert_eq!(hourly.values()[0], ci(90.0));
        assert_eq!(hourly.values()[1], ci(240.0));
        // Time-weighted mean is preserved by both directions.
        assert_eq!(hourly.mean(), s.mean());
        let fine = s.resample(SimDuration::from_minutes(10)).unwrap();
        assert_eq!(fine.len(), 12);
        assert_eq!(fine.mean(), s.mean());
        assert_eq!(fine.values()[2], ci(60.0));
        assert_eq!(fine.values()[3], ci(120.0));
        // Identity resample.
        assert_eq!(s.resample(s.step()).unwrap(), s);
    }

    #[test]
    fn resample_rejects_misaligned_steps() {
        let s = series(&[60.0, 120.0, 300.0]);
        // 40 minutes neither divides nor is divided by 30 minutes… and
        // 90 minutes divides the period but 3 slots / 40 min does not.
        assert!(s.resample(SimDuration::from_minutes(40)).is_err());
        assert!(s.resample(SimDuration::HOUR).is_err()); // 90 min % 60 ≠ 0
        assert!(s.resample(SimDuration::ZERO).is_err());
        assert!(s.resample(SimDuration::from_minutes(90)).is_ok());
    }

    #[test]
    fn projection_onto_energy_grid() {
        use iriscast_units::TimeGrid;
        let s = series(&[100.0, 200.0, 300.0, 400.0]);
        // Hourly energy slots, offset by one settlement period.
        let target = TimeGrid::new(Timestamp::from_secs(1_800), SimDuration::HOUR, 1).unwrap();
        let projected = s.project_onto(&target).unwrap();
        assert_eq!(projected, vec![ci(250.0)]);
        // A grid the series does not cover is a typed error.
        let outside = TimeGrid::new(Timestamp::from_secs(0), SimDuration::HOUR, 3).unwrap();
        assert!(s.project_onto(&outside).is_err());
    }

    #[test]
    fn iter_intervals_tile() {
        let s = series(&[1.0, 2.0, 3.0]);
        let intervals: Vec<Period> = s.iter().map(|(p, _)| p).collect();
        for w in intervals.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
    }
}
