//! Small statistics utilities shared by series summaries and the
//! scenario-space statistics view.
//!
//! Every function here is total: invalid input — an empty sample, a
//! quantile outside `[0, 1]`, or a sample containing `NaN` — returns
//! `None` instead of panicking or silently interpolating garbage. (An
//! earlier revision `assert!`ed on out-of-range quantiles and let `NaN`s
//! sort to the end where they could be interpolated into results;
//! callers that need a hard failure now get to choose it explicitly.)
//!
//! The quantile family comes in four forms, sharing one interpolation
//! rule ([`percentile_sorted`]):
//!
//! * [`percentile`] — sort-per-call convenience for one query;
//! * [`percentiles`] — batch form: one sort amortised over many queries;
//! * [`percentile_sorted`] — zero-cost form for data the caller keeps
//!   sorted (the engine's cached statistics view);
//! * [`percentile_select`] — `select_nth`-based one-shot form: O(n)
//!   expected instead of O(n log n), for a single quantile off unsorted
//!   data that is not worth sorting.

/// `true` when `q` is a valid quantile and `values` is a usable sample
/// (non-empty, NaN-free).
fn usable(values: &[f64], q: f64) -> bool {
    !values.is_empty() && (0.0..=1.0).contains(&q) && !values.iter().any(|v| v.is_nan())
}

/// Linear-interpolated percentile of `values` (which need not be sorted);
/// `q` in `[0, 1]`. Returns `None` for empty input, out-of-range `q`, or
/// input containing `NaN`.
///
/// Uses the common "linear between closest ranks" definition (NumPy's
/// default), which is what percentile-based intensity references use.
/// Sorts a copy on every call — prefer [`percentiles`] for several
/// quantiles of one sample, or [`percentile_select`] for exactly one.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if !usable(values, q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

/// Linear-interpolated percentile of an already **ascending-sorted**
/// sample. Returns `None` for empty input or out-of-range `q`; does not
/// re-scan for `NaN`s (the caller vouches for the sort, and a correctly
/// sorted NaN-free sample stays NaN-free).
///
/// This is the shared interpolation rule behind [`percentile`],
/// [`percentiles`] and the engine's cached statistics view.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Batch percentiles: sorts `values` once and answers every quantile in
/// `qs` against the sorted copy. Returns `None` if the sample is empty
/// or NaN-bearing, or if **any** quantile is out of range (all-or-
/// nothing, so a partial answer can't be mistaken for a full one).
pub fn percentiles(values: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty()
        || qs.iter().any(|q| !(0.0..=1.0).contains(q))
        || values.iter().any(|v| v.is_nan())
    {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(
        qs.iter()
            .map(|&q| percentile_sorted(&sorted, q).expect("validated above"))
            .collect(),
    )
}

/// One-shot percentile via `select_nth_unstable`: O(n) expected instead
/// of a full sort, at the cost of leaving `values` in an unspecified
/// order. Same definition and `None` conditions as [`percentile`].
///
/// Use this when exactly one quantile of a large unsorted sample is
/// needed and the sample won't be queried again.
pub fn percentile_select(values: &mut [f64], q: f64) -> Option<f64> {
    if !usable(values, q) {
        return None;
    }
    let rank = q * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let (_, lo_val, above) = values.select_nth_unstable_by(lo, f64::total_cmp);
    if lo == hi {
        return Some(*lo_val);
    }
    // `hi == lo + 1`, so the next order statistic is the minimum of the
    // partition above the pivot (non-empty because `hi ≤ len - 1`).
    let lo_val = *lo_val;
    let hi_val = above.iter().copied().fold(f64::INFINITY, f64::min);
    let frac = rank - lo as f64;
    Some(lo_val * (1.0 - frac) + hi_val * frac)
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Five-number-plus-mean summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes a [`Summary`] in one pass plus one sort (an earlier revision
/// sorted the sample five times, once per quantile); `None` for empty or
/// NaN-bearing input.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for &v in values {
        if v.is_nan() {
            return None;
        }
        sum += v;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(Summary {
        min: sorted[0],
        p25: percentile_sorted(&sorted, 0.25)?,
        median: percentile_sorted(&sorted, 0.5)?,
        p75: percentile_sorted(&sorted, 0.75)?,
        max: *sorted.last()?,
        mean: sum / values.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&v, 0.25), Some(1.75));
        assert_eq!(percentile(&[], 0.5), None);
        // Unsorted input.
        let u = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&u, 0.5), Some(2.5));
    }

    #[test]
    fn single_element() {
        let v = [7.0];
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(percentile(&v, q), Some(7.0));
        }
    }

    #[test]
    fn out_of_range_quantile_is_none_not_a_panic() {
        for q in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert_eq!(percentile(&[1.0], q), None, "q = {q}");
            assert_eq!(percentile_sorted(&[1.0], q), None, "q = {q}");
            assert_eq!(percentile_select(&mut [1.0], q), None, "q = {q}");
            assert_eq!(percentiles(&[1.0], &[0.5, q]), None, "q = {q}");
        }
    }

    #[test]
    fn nan_bearing_samples_are_rejected_not_interpolated() {
        // An earlier revision let total_cmp sort NaNs last and silently
        // interpolated them into high quantiles.
        let v = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&v, 1.0), None);
        assert_eq!(percentile(&v, 0.5), None);
        assert_eq!(percentile_select(&mut v.clone(), 0.5), None);
        assert_eq!(percentiles(&v, &[0.5]), None);
        assert_eq!(summarize(&v), None);
        // Infinities are honest (if extreme) numbers and still work.
        let w = [1.0, f64::INFINITY, 3.0];
        assert_eq!(percentile(&w, 1.0), Some(f64::INFINITY));
    }

    #[test]
    fn batch_matches_per_call() {
        let v: Vec<f64> = (0..57).map(|i| ((i * 31) % 57) as f64).collect();
        let qs = [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0];
        let batch = percentiles(&v, &qs).unwrap();
        for (&q, &b) in qs.iter().zip(&batch) {
            assert_eq!(Some(b), percentile(&v, q), "q = {q}");
        }
        assert_eq!(percentiles(&[], &[0.5]), None);
        assert_eq!(percentiles(&v, &[]), Some(vec![]));
    }

    #[test]
    fn select_matches_sort_per_call() {
        let v: Vec<f64> = (0..101).map(|i| ((i * 67) % 101) as f64 - 50.0).collect();
        for q in [0.0, 0.01, 0.25, 0.333, 0.5, 0.9, 0.95, 1.0] {
            let mut scratch = v.clone();
            assert_eq!(
                percentile_select(&mut scratch, q),
                percentile(&v, q),
                "q = {q}"
            );
        }
        assert_eq!(percentile_select(&mut [], 0.5), None);
        assert_eq!(percentile_select(&mut [42.0], 0.7), Some(42.0));
    }

    #[test]
    fn sorted_form_skips_the_sort_only() {
        let mut v: Vec<f64> = vec![9.0, 2.0, 5.0, 7.0, 1.0];
        let unsorted_answer = percentile(&v, 0.5);
        v.sort_by(f64::total_cmp);
        assert_eq!(percentile_sorted(&v, 0.5), unsorted_answer);
        assert_eq!(percentile_sorted(&[], 0.5), None);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn summary() {
        let v: Vec<f64> = (1..=101).map(f64::from).collect();
        let s = summarize(&v).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.mean, 51.0);
        assert_eq!(s.p25, 26.0);
        assert_eq!(s.p75, 76.0);
        assert_eq!(summarize(&[]), None);
    }
}
