//! Small statistics utilities shared by series summaries.

/// Linear-interpolated percentile of `values` (which need not be sorted);
/// `q` in `[0, 1]`. Returns `None` for empty input.
///
/// Uses the common "linear between closest ranks" definition (NumPy's
/// default), which is what percentile-based intensity references use.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Five-number-plus-mean summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes a [`Summary`]; `None` for empty input.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    Some(Summary {
        min: percentile(values, 0.0)?,
        p25: percentile(values, 0.25)?,
        median: percentile(values, 0.5)?,
        p75: percentile(values, 0.75)?,
        max: percentile(values, 1.0)?,
        mean: mean(values)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&v, 0.25), Some(1.75));
        assert_eq!(percentile(&[], 0.5), None);
        // Unsorted input.
        let u = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&u, 0.5), Some(2.5));
    }

    #[test]
    fn single_element() {
        let v = [7.0];
        for q in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(percentile(&v, q), Some(7.0));
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn summary() {
        let v: Vec<f64> = (1..=101).map(f64::from).collect();
        let s = summarize(&v).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.mean, 51.0);
        assert_eq!(s.p25, 26.0);
        assert_eq!(s.p75, 76.0);
        assert_eq!(summarize(&[]), None);
    }
}
