//! Stochastic weather processes driving renewable capacity factors.
//!
//! Wind is the dominant source of GB carbon-intensity variability: synoptic
//! weather systems move through on 3–6-day timescales, swinging the wind
//! fleet between <10% and >80% of capacity — this is exactly the structure
//! visible in the paper's Figure 1. We model the wind capacity factor as a
//! logit-space Ornstein–Uhlenbeck process with a slow synoptic modulation,
//! and solar as a deterministic November daylight envelope with a stochastic
//! cloudiness multiplier.

use iriscast_units::Timestamp;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean-reverting wind capacity-factor process.
///
/// State evolves in logit space so the capacity factor stays in `(0, 1)`
/// without clamping artefacts, then a slow sinusoidal "synoptic" term with
/// a randomised phase adds multi-day swings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindProcess {
    /// Long-run mean capacity factor (calibrated at 0.31 so the dispatched
    /// monthly mean intensity matches November 2022; the sigmoid transform
    /// and synoptic modulation lift the realised mean a few points higher).
    pub mean_cf: f64,
    /// Mean-reversion rate per hour (smaller = smoother).
    pub reversion_per_hour: f64,
    /// Volatility per √hour in logit space.
    pub volatility: f64,
    /// Amplitude of the synoptic modulation in logit space.
    pub synoptic_amplitude: f64,
    /// Synoptic period in hours (≈ 4 days).
    pub synoptic_period_hours: f64,
    state_logit: f64,
    synoptic_phase: f64,
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl WindProcess {
    /// GB November wind climatology.
    pub fn gb_november(rng: &mut impl Rng) -> Self {
        let mean_cf = 0.31;
        WindProcess {
            mean_cf,
            reversion_per_hour: 0.035,
            volatility: 0.10,
            synoptic_amplitude: 1.3,
            synoptic_period_hours: 96.0,
            state_logit: logit(mean_cf) + rng.gen_range(-0.5..0.5),
            synoptic_phase: rng.gen_range(0.0..std::f64::consts::TAU),
        }
    }

    /// Advances the process by `dt_hours` and returns the capacity factor
    /// at the new instant `t`.
    pub fn step(&mut self, t: Timestamp, dt_hours: f64, rng: &mut impl Rng) -> f64 {
        let mu = logit(self.mean_cf);
        // Euler–Maruyama on the OU SDE in logit space.
        let noise: f64 = {
            // Box–Muller: rand 0.8 offers no normal distribution without
            // rand_distr, so generate one here.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        self.state_logit += self.reversion_per_hour * (mu - self.state_logit) * dt_hours
            + self.volatility * dt_hours.sqrt() * noise;
        let synoptic = self.synoptic_amplitude
            * (t.as_hours() / self.synoptic_period_hours * std::f64::consts::TAU
                + self.synoptic_phase)
                .sin();
        sigmoid(self.state_logit + synoptic)
    }
}

/// November solar capacity-factor envelope with stochastic cloudiness.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolarProcess {
    /// Clear-sky peak capacity factor at solar noon (November GB ≈ 0.30).
    pub peak_cf: f64,
    /// Sunrise hour (local), November GB ≈ 07:20.
    pub sunrise: f64,
    /// Sunset hour (local), November GB ≈ 16:20.
    pub sunset: f64,
    cloudiness: f64,
}

impl SolarProcess {
    /// GB November solar climatology.
    pub fn gb_november(rng: &mut impl Rng) -> Self {
        SolarProcess {
            peak_cf: 0.30,
            sunrise: 7.33,
            sunset: 16.33,
            cloudiness: rng.gen_range(0.3..0.9),
        }
    }

    /// Capacity factor at instant `t`, evolving the day's cloudiness each
    /// morning.
    pub fn step(&mut self, t: Timestamp, rng: &mut impl Rng) -> f64 {
        let h = t.hour_of_day();
        if h < self.sunrise || h > self.sunset {
            // Re-roll cloudiness overnight so consecutive days differ.
            if (h - 0.0).abs() < 1e-9 {
                self.cloudiness = rng.gen_range(0.3..0.9);
            }
            return 0.0;
        }
        // Half-sine envelope between sunrise and sunset.
        let frac = (h - self.sunrise) / (self.sunset - self.sunrise);
        let envelope = (frac * std::f64::consts::PI).sin();
        self.peak_cf * envelope * self.cloudiness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::{SimDuration, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wind_stays_in_unit_interval_and_varies() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut wind = WindProcess::gb_november(&mut rng);
        let mut values = Vec::new();
        for i in 0..(30 * 48) {
            let t = Timestamp::EPOCH + SimDuration::SETTLEMENT_PERIOD * i;
            let cf = wind.step(t, 0.5, &mut rng);
            assert!((0.0..=1.0).contains(&cf), "cf {cf} out of range");
            values.push(cf);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Synoptic swings should span a wide range over a month.
        assert!(mean > 0.25 && mean < 0.60, "monthly mean cf {mean:.2}");
        assert!(min < 0.18, "never saw a lull: min {min:.2}");
        assert!(max > 0.70, "never saw a storm: max {max:.2}");
    }

    #[test]
    fn wind_is_deterministic_given_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut wind = WindProcess::gb_november(&mut rng);
            (0..100)
                .map(|i| {
                    wind.step(
                        Timestamp::EPOCH + SimDuration::SETTLEMENT_PERIOD * i,
                        0.5,
                        &mut rng,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn solar_zero_at_night_positive_at_noon() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut solar = SolarProcess::gb_november(&mut rng);
        let midnight = Timestamp::EPOCH;
        assert_eq!(solar.step(midnight, &mut rng), 0.0);
        let noon = Timestamp::EPOCH + SimDuration::from_hours(12.0);
        let cf = solar.step(noon, &mut rng);
        assert!(cf > 0.05, "noon cf {cf}");
        let evening = Timestamp::EPOCH + SimDuration::from_hours(20.0);
        assert_eq!(solar.step(evening, &mut rng), 0.0);
    }

    #[test]
    fn solar_november_is_weak() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut solar = SolarProcess::gb_november(&mut rng);
        let mut peak: f64 = 0.0;
        for i in 0..48 {
            let t = Timestamp::EPOCH + SimDuration::SETTLEMENT_PERIOD * i;
            peak = peak.max(solar.step(t, &mut rng));
        }
        assert!(peak <= 0.30, "November solar should not exceed 0.30 cf");
    }

    #[test]
    fn logit_sigmoid_inverse() {
        for p in [0.1, 0.42, 0.5, 0.9] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
        // Extremes clamp rather than produce infinities.
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }
}
