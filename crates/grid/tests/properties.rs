//! Property-based tests for the grid substrate's invariants.

use iriscast_grid::{Dispatcher, GenerationCapacity, IntensitySeries};
use iriscast_units::{CarbonIntensity, Power, SimDuration, Timestamp};
use proptest::prelude::*;

fn intensity_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..600.0f64, 1..400)
}

proptest! {
    /// Dispatch balances: generation + unserved = demand, exactly, for any
    /// demand and weather.
    #[test]
    fn dispatch_conserves_energy(
        demand_gw in 0.1..80.0f64,
        wind_cf in 0.0..1.0f64,
        solar_cf in 0.0..1.0f64,
    ) {
        let d = Dispatcher::new(GenerationCapacity::gb_2022());
        let r = d.dispatch(Power::from_gigawatts(demand_gw), wind_cf, solar_cf);
        let supplied = r.mix.total().gigawatts();
        let unserved = r.unserved.gigawatts();
        prop_assert!((supplied + unserved - demand_gw).abs() < 1e-9);
        prop_assert!(unserved >= 0.0);
        prop_assert!(r.curtailed.gigawatts() >= 0.0);
        // No fuel exceeds its capacity.
        use iriscast_grid::FuelType::*;
        let cap = &d.capacity;
        prop_assert!(r.mix.get(Gas) <= cap.gas + Power::from_watts(1.0));
        prop_assert!(r.mix.get(Coal) <= cap.coal + Power::from_watts(1.0));
        prop_assert!(r.mix.get(Wind) <= cap.wind * wind_cf + Power::from_watts(1.0));
        prop_assert!(r.mix.get(Solar) <= cap.solar * solar_cf + Power::from_watts(1.0));
    }

    /// Blended intensity is bounded by the dirtiest fuel, and monotone
    /// under demand growth *while gas is the marginal fuel*. (Beyond the
    /// gas fleet the merit order reaches imports and storage, which are
    /// cleaner than gas, so global monotonicity genuinely does not hold —
    /// the restriction is physics, not test convenience.)
    #[test]
    fn intensity_bounded_and_gas_margin_dirtier(
        demand_gw in 5.0..45.0f64,
        extra_gw in 0.5..10.0f64,
        wind_cf in 0.0..1.0f64,
    ) {
        use iriscast_grid::FuelType::{Coal, Imports, Storage};
        let d = Dispatcher::new(GenerationCapacity::gb_2022());
        let base = d.dispatch(Power::from_gigawatts(demand_gw), wind_cf, 0.1);
        prop_assert!(base.mix.intensity().grams_per_kwh() <= 937.0);
        let more = d.dispatch(Power::from_gigawatts(demand_gw + extra_gw), wind_cf, 0.1);
        prop_assert!(more.mix.intensity().grams_per_kwh() <= 937.0);
        // Only compare within the gas-marginal regime with no curtailment
        // on the smaller demand.
        let gas_marginal = |r: &iriscast_grid::DispatchResult| {
            r.unserved == Power::ZERO
                && r.mix.get(Imports) == Power::ZERO
                && r.mix.get(Storage) == Power::ZERO
                && r.mix.get(Coal) == Power::ZERO
        };
        if gas_marginal(&base) && gas_marginal(&more) && base.curtailed == Power::ZERO {
            prop_assert!(
                more.mix.intensity().grams_per_kwh()
                    >= base.mix.intensity().grams_per_kwh() - 1e-6
            );
        }
    }

    /// Series statistics: min ≤ every percentile ≤ max, and percentiles
    /// are monotone in q.
    #[test]
    fn percentiles_monotone(values in intensity_values(), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let s = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values.iter().map(|&g| CarbonIntensity::from_grams_per_kwh(g)).collect(),
        );
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(s.percentile(lo_q) <= s.percentile(hi_q));
        prop_assert!(s.min() <= s.percentile(lo_q));
        prop_assert!(s.percentile(hi_q) <= s.max());
        prop_assert!(s.mean() >= s.min() && s.mean() <= s.max());
    }

    /// Daily means partition the series: their sample-weighted average is
    /// the overall mean.
    #[test]
    fn daily_means_consistent(values in prop::collection::vec(0.0..600.0f64, 48..480)) {
        let s = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values.iter().map(|&g| CarbonIntensity::from_grams_per_kwh(g)).collect(),
        );
        let daily = s.daily_means();
        let mut weighted = 0.0;
        let mut count = 0usize;
        for (day, mean) in &daily {
            let in_day = values
                .iter()
                .enumerate()
                .filter(|(i, _)| (i / 48) as i64 == *day)
                .count();
            weighted += mean.grams_per_kwh() * in_day as f64;
            count += in_day;
        }
        prop_assert_eq!(count, values.len());
        let overall = s.mean().grams_per_kwh();
        prop_assert!((weighted / count as f64 - overall).abs() < 1e-9);
    }

    /// The greenest window is at least as clean as every other window of
    /// the same width (checked against a brute-force scan).
    #[test]
    fn greenest_window_is_optimal(
        values in prop::collection::vec(0.0..600.0f64, 2..100),
        k_frac in 0.01..1.0f64,
    ) {
        let k = ((values.len() as f64 * k_frac) as usize).clamp(1, values.len());
        let s = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values.iter().map(|&g| CarbonIntensity::from_grams_per_kwh(g)).collect(),
        );
        let (_, best) = s.greenest_window(k).unwrap();
        for start in 0..=(values.len() - k) {
            let mean: f64 = values[start..start + k].iter().sum::<f64>() / k as f64;
            prop_assert!(best.grams_per_kwh() <= mean + 1e-9);
        }
    }

    /// Slicing preserves values and alignment.
    #[test]
    fn slice_preserves_values(values in prop::collection::vec(0.0..600.0f64, 96..240)) {
        let s = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values.iter().map(|&g| CarbonIntensity::from_grams_per_kwh(g)).collect(),
        );
        let day1 = s.slice(iriscast_units::Period::day(1)).unwrap();
        prop_assert_eq!(day1.len(), 48);
        for (i, v) in day1.values().iter().enumerate() {
            prop_assert_eq!(v.grams_per_kwh(), values[48 + i]);
        }
    }
}
