//! Server components and their embodiment-relevant physical attributes.

use iriscast_units::Power;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How finished hardware travelled from factory to data centre.
///
/// Transport emissions differ by roughly an order of magnitude between sea
/// and air freight, which is why manufacturer LCA sheets (and our
/// [`crate::EmbodiedFactors`]) treat the mode explicitly.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportMode {
    /// Container shipping — slow, lowest carbon per kg·km.
    Sea,
    /// Long-haul road freight.
    Road,
    /// Air freight — fastest, highest carbon.
    Air,
}

impl TransportMode {
    /// Representative well-to-wheel emission factor in kgCO₂e per kg of
    /// freight for a typical factory→UK journey of each mode (distance is
    /// folded in; values bracket DEFRA freight factors for ~10,000 km sea,
    /// ~2,000 km road, ~9,000 km air legs).
    pub const fn kg_co2e_per_kg(self) -> f64 {
        match self {
            TransportMode::Sea => 0.08,
            TransportMode::Road => 0.25,
            TransportMode::Air => 1.30,
        }
    }
}

impl fmt::Display for TransportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransportMode::Sea => "sea",
            TransportMode::Road => "road",
            TransportMode::Air => "air",
        };
        f.write_str(s)
    }
}

/// A hardware component with the attributes that drive its manufacturing
/// carbon, following the decomposition used by process-level LCA models
/// (die area for logic, capacity for memory/storage, mass for structure).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Component {
    /// A CPU package.
    Cpu {
        /// Marketing/model name, for reports.
        model: String,
        /// Physical core count (drives nothing in the embodied model but is
        /// reported in inventories and used by schedulers).
        cores: u32,
        /// Total die area in mm² — the dominant driver of fab emissions.
        die_area_mm2: f64,
        /// Thermal design power.
        tdp: Power,
    },
    /// A discrete accelerator (GPU or similar).
    Gpu {
        /// Marketing/model name.
        model: String,
        /// Die area in mm².
        die_area_mm2: f64,
        /// On-board memory in GB (HBM/GDDR — charged at the DRAM rate).
        memory_gb: f64,
        /// Board thermal design power.
        tdp: Power,
    },
    /// Main memory.
    Dram {
        /// Total capacity in GB.
        capacity_gb: f64,
    },
    /// Flash storage.
    Ssd {
        /// Capacity in GB.
        capacity_gb: f64,
    },
    /// Rotating storage.
    Hdd {
        /// Capacity in TB.
        capacity_tb: f64,
    },
    /// System board (PCB + soldered regulators, sockets, BMC).
    Mainboard {
        /// Board area in cm².
        area_cm2: f64,
    },
    /// A power supply unit.
    Psu {
        /// Nameplate output rating.
        rated: Power,
    },
    /// Chassis, rails, heatsinks and fans.
    Chassis {
        /// Structural mass in kg.
        mass_kg: f64,
    },
    /// A network interface card.
    Nic {
        /// Port speed in Gb/s (reported; embodied cost is per card).
        speed_gbps: f64,
    },
}

impl Component {
    /// Approximate shipping mass contribution of the component in kg,
    /// used to compute transport emissions. Values are deliberately coarse
    /// (transport is a small slice of the total) but mass-conserving:
    /// a populated 2U server sums to roughly 20–35 kg.
    pub fn shipping_mass_kg(&self) -> f64 {
        match self {
            Component::Cpu { .. } => 0.5,
            Component::Gpu { .. } => 2.5,
            Component::Dram { capacity_gb } => 0.05 + capacity_gb / 64.0 * 0.04,
            Component::Ssd { .. } => 0.15,
            Component::Hdd { .. } => 0.7,
            Component::Mainboard { area_cm2 } => area_cm2 / 1_000.0 * 1.2,
            Component::Psu { .. } => 1.5,
            Component::Chassis { mass_kg } => *mass_kg,
            Component::Nic { .. } => 0.2,
        }
    }

    /// Short kind label for reports ("cpu", "dram", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Component::Cpu { .. } => "cpu",
            Component::Gpu { .. } => "gpu",
            Component::Dram { .. } => "dram",
            Component::Ssd { .. } => "ssd",
            Component::Hdd { .. } => "hdd",
            Component::Mainboard { .. } => "mainboard",
            Component::Psu { .. } => "psu",
            Component::Chassis { .. } => "chassis",
            Component::Nic { .. } => "nic",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Cpu {
                model,
                cores,
                die_area_mm2,
                ..
            } => write!(f, "CPU {model} ({cores}c, {die_area_mm2:.0} mm²)"),
            Component::Gpu {
                model, memory_gb, ..
            } => write!(f, "GPU {model} ({memory_gb:.0} GB)"),
            Component::Dram { capacity_gb } => write!(f, "DRAM {capacity_gb:.0} GB"),
            Component::Ssd { capacity_gb } => write!(f, "SSD {capacity_gb:.0} GB"),
            Component::Hdd { capacity_tb } => write!(f, "HDD {capacity_tb:.0} TB"),
            Component::Mainboard { area_cm2 } => write!(f, "Mainboard {area_cm2:.0} cm²"),
            Component::Psu { rated } => write!(f, "PSU {rated}"),
            Component::Chassis { mass_kg } => write!(f, "Chassis {mass_kg:.1} kg"),
            Component::Nic { speed_gbps } => write!(f, "NIC {speed_gbps:.0} Gb/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_factors_ordered() {
        assert!(TransportMode::Sea.kg_co2e_per_kg() < TransportMode::Road.kg_co2e_per_kg());
        assert!(TransportMode::Road.kg_co2e_per_kg() < TransportMode::Air.kg_co2e_per_kg());
        assert_eq!(TransportMode::Air.to_string(), "air");
    }

    #[test]
    fn shipping_mass_is_plausible_for_a_2u_server() {
        let parts: Vec<(Component, u32)> = vec![
            (
                Component::Cpu {
                    model: "generic".into(),
                    cores: 32,
                    die_area_mm2: 600.0,
                    tdp: Power::from_watts(205.0),
                },
                2,
            ),
            (Component::Dram { capacity_gb: 384.0 }, 1),
            (Component::Ssd { capacity_gb: 960.0 }, 2),
            (Component::Mainboard { area_cm2: 2_000.0 }, 1),
            (
                Component::Psu {
                    rated: Power::from_watts(800.0),
                },
                2,
            ),
            (Component::Chassis { mass_kg: 18.0 }, 1),
            (Component::Nic { speed_gbps: 25.0 }, 1),
        ];
        let mass: f64 = parts
            .iter()
            .map(|(c, n)| c.shipping_mass_kg() * *n as f64)
            .sum();
        assert!(
            (20.0..=35.0).contains(&mass),
            "server shipping mass {mass:.1} kg out of expected band"
        );
    }

    #[test]
    fn kind_labels() {
        assert_eq!(Component::Dram { capacity_gb: 1.0 }.kind(), "dram");
        assert_eq!(Component::Hdd { capacity_tb: 16.0 }.kind(), "hdd");
    }

    #[test]
    fn display_formats() {
        let cpu = Component::Cpu {
            model: "EPYC 7452".into(),
            cores: 32,
            die_area_mm2: 600.0,
            tdp: Power::from_watts(155.0),
        };
        assert_eq!(cpu.to_string(), "CPU EPYC 7452 (32c, 600 mm²)");
        assert_eq!(
            Component::Ssd { capacity_gb: 960.0 }.to_string(),
            "SSD 960 GB"
        );
    }

    #[test]
    fn serde_round_trip() {
        let c = Component::Gpu {
            model: "A100".into(),
            die_area_mm2: 826.0,
            memory_gb: 40.0,
            tdp: Power::from_watts(400.0),
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: Component = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
