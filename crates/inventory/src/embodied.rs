//! ACT-style embodied-carbon factors and per-node computation.
//!
//! Manufacturers publish whole-server cradle-to-gate footprints (the Dell
//! and Fujitsu sheets cited by the paper); process-level models such as ACT
//! decompose them into per-technology factors. We implement the
//! decomposition so that (a) the paper's 400–1100 kgCO₂ "notional server"
//! range is *derivable* rather than asserted, and (b) heterogeneous nodes
//! (storage-heavy, GPU) get differentiated estimates.

use crate::{Component, NodeSpec, TransportMode};
use iriscast_units::CarbonMass;
use serde::{Deserialize, Serialize};

/// Per-technology embodied-carbon factors (cradle-to-gate, kgCO₂e basis).
///
/// The three presets bracket the spread seen across manufacturer LCA sheets
/// and academic estimates; [`EmbodiedFactors::typical`] is the central
/// scenario. All factors include the upstream supply chain of the part
/// itself; assembly and transport are charged separately per node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedFactors {
    /// kgCO₂e per mm² of logic die (CPU/GPU), including yield losses.
    pub logic_per_mm2: f64,
    /// Fixed kgCO₂e per CPU/GPU package (substrate, lid, test).
    pub package_fixed: f64,
    /// kgCO₂e per GB of DRAM.
    pub dram_per_gb: f64,
    /// kgCO₂e per GB of NAND flash (SSD).
    pub ssd_per_gb: f64,
    /// Fixed kgCO₂e per HDD unit (mechanics dominate).
    pub hdd_fixed: f64,
    /// kgCO₂e per TB of HDD platter capacity.
    pub hdd_per_tb: f64,
    /// kgCO₂e per cm² of populated mainboard PCB.
    pub mainboard_per_cm2: f64,
    /// Fixed kgCO₂e per PSU.
    pub psu_fixed: f64,
    /// kgCO₂e per kg of chassis/heatsink structure.
    pub chassis_per_kg: f64,
    /// Fixed kgCO₂e per NIC.
    pub nic_fixed: f64,
    /// Fixed kgCO₂e for final assembly, test and packaging, per node.
    pub assembly_fixed: f64,
    /// Transport mode assumed for delivery (applied to shipping mass).
    pub transport: TransportMode,
    /// Fraction of gross manufacturing carbon credited back for
    /// end-of-life recycling (0 = no credit). Decommissioning transport is
    /// assumed symmetric with delivery.
    pub eol_credit: f64,
}

impl EmbodiedFactors {
    /// Optimistic factors: efficient fabs, sea freight, generous recycling
    /// credit. Calibrated so a typical dual-socket compute node lands near
    /// the paper's 400 kgCO₂ lower bound.
    pub fn low() -> Self {
        EmbodiedFactors {
            logic_per_mm2: 0.012,
            package_fixed: 3.0,
            dram_per_gb: 0.65,
            ssd_per_gb: 0.05,
            hdd_fixed: 12.0,
            hdd_per_tb: 1.0,
            mainboard_per_cm2: 0.025,
            psu_fixed: 8.0,
            chassis_per_kg: 2.0,
            nic_fixed: 5.0,
            assembly_fixed: 15.0,
            transport: TransportMode::Sea,
            eol_credit: 0.10,
        }
    }

    /// Central factors, consistent with mid-range manufacturer sheets.
    pub fn typical() -> Self {
        EmbodiedFactors {
            logic_per_mm2: 0.020,
            package_fixed: 5.0,
            dram_per_gb: 1.15,
            ssd_per_gb: 0.10,
            hdd_fixed: 20.0,
            hdd_per_tb: 1.5,
            mainboard_per_cm2: 0.040,
            psu_fixed: 12.0,
            chassis_per_kg: 2.6,
            nic_fixed: 8.0,
            assembly_fixed: 25.0,
            transport: TransportMode::Road,
            eol_credit: 0.05,
        }
    }

    /// Pessimistic factors: carbon-intensive fab energy mix, air freight,
    /// no recycling credit. Calibrated so a typical dual-socket compute
    /// node lands near the paper's 1100 kgCO₂ upper bound.
    pub fn high() -> Self {
        EmbodiedFactors {
            logic_per_mm2: 0.032,
            package_fixed: 8.0,
            dram_per_gb: 1.50,
            ssd_per_gb: 0.12,
            hdd_fixed: 30.0,
            hdd_per_tb: 2.5,
            mainboard_per_cm2: 0.060,
            psu_fixed: 18.0,
            chassis_per_kg: 3.4,
            nic_fixed: 12.0,
            assembly_fixed: 40.0,
            transport: TransportMode::Air,
            eol_credit: 0.0,
        }
    }

    /// Gross manufacturing carbon of a single component instance
    /// (excluding assembly/transport, which are per-node).
    pub fn component_carbon(&self, c: &Component) -> CarbonMass {
        let kg = match c {
            Component::Cpu { die_area_mm2, .. } => {
                die_area_mm2 * self.logic_per_mm2 + self.package_fixed
            }
            Component::Gpu {
                die_area_mm2,
                memory_gb,
                ..
            } => {
                die_area_mm2 * self.logic_per_mm2
                    + self.package_fixed
                    + memory_gb * self.dram_per_gb
            }
            Component::Dram { capacity_gb } => capacity_gb * self.dram_per_gb,
            Component::Ssd { capacity_gb } => capacity_gb * self.ssd_per_gb,
            Component::Hdd { capacity_tb } => self.hdd_fixed + capacity_tb * self.hdd_per_tb,
            Component::Mainboard { area_cm2 } => area_cm2 * self.mainboard_per_cm2,
            Component::Psu { .. } => self.psu_fixed,
            Component::Chassis { mass_kg } => mass_kg * self.chassis_per_kg,
            Component::Nic { .. } => self.nic_fixed,
        };
        CarbonMass::from_kilograms(kg)
    }

    /// Full cradle-to-grave embodied carbon of a node built from `spec`'s
    /// component list, decomposed by life-cycle stage.
    ///
    /// `total = (1 − eol_credit) × Σ components + assembly + 2 × transport`
    /// (delivery plus symmetric decommissioning haul).
    pub fn node_breakdown(&self, spec: &NodeSpec) -> EmbodiedBreakdown {
        let mut manufacturing = CarbonMass::ZERO;
        let mut mass_kg = 0.0;
        for (component, count) in spec.components() {
            manufacturing += self.component_carbon(component) * f64::from(*count);
            mass_kg += component.shipping_mass_kg() * f64::from(*count);
        }
        // Packaging adds ~15% to shipped mass.
        let transport_one_way =
            CarbonMass::from_kilograms(mass_kg * 1.15 * self.transport.kg_co2e_per_kg());
        EmbodiedBreakdown {
            manufacturing,
            assembly: CarbonMass::from_kilograms(self.assembly_fixed),
            transport: transport_one_way * 2.0,
            eol_credit: manufacturing * self.eol_credit,
        }
    }
}

/// Per-stage decomposition of a node's embodied carbon.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedBreakdown {
    /// Component manufacturing (gross).
    pub manufacturing: CarbonMass,
    /// Final assembly, test, packaging.
    pub assembly: CarbonMass,
    /// Delivery plus decommissioning transport.
    pub transport: CarbonMass,
    /// Credit for end-of-life recycling (subtracted from the total).
    pub eol_credit: CarbonMass,
}

impl EmbodiedBreakdown {
    /// Net embodied carbon: manufacturing + assembly + transport − credit.
    pub fn total(&self) -> CarbonMass {
        self.manufacturing + self.assembly + self.transport - self.eol_credit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeBuilder;
    use iriscast_units::Power;

    /// The "notional compute node" the paper prices at 400–1100 kgCO₂
    /// (shared with `crate::reference`).
    fn notional_server() -> NodeSpec {
        crate::reference::notional_compute_node()
    }

    #[test]
    fn presets_bracket_the_papers_server_range() {
        let node = notional_server();
        let low = node.embodied(&EmbodiedFactors::low()).kilograms();
        let typ = node.embodied(&EmbodiedFactors::typical()).kilograms();
        let high = node.embodied(&EmbodiedFactors::high()).kilograms();
        assert!(low < typ && typ < high, "{low} {typ} {high}");
        // Paper bounds: 400 and 1100 kgCO2 for a notional node.
        assert!(
            (330.0..=480.0).contains(&low),
            "low preset should land near 400 kg, got {low:.0}"
        );
        assert!(
            (980.0..=1_250.0).contains(&high),
            "high preset should land near 1100 kg, got {high:.0}"
        );
    }

    #[test]
    fn dram_dominates_typical_compute_node() {
        // A well-known LCA result: memory is the largest slice for
        // high-capacity nodes.
        let node = notional_server();
        let f = EmbodiedFactors::typical();
        let dram = f.component_carbon(&Component::Dram { capacity_gb: 384.0 });
        let total = node.embodied(&f);
        let share = dram / total;
        assert!(
            share > 0.35,
            "DRAM share should exceed 35%, got {:.0}%",
            share * 100.0
        );
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let node = notional_server();
        let f = EmbodiedFactors::typical();
        let b = f.node_breakdown(&node);
        let total = b.manufacturing + b.assembly + b.transport - b.eol_credit;
        assert_eq!(b.total(), total);
        assert!(b.manufacturing.kilograms() > 0.0);
        assert!(b.assembly.kilograms() > 0.0);
        assert!(b.transport.kilograms() > 0.0);
    }

    #[test]
    fn air_freight_costs_more_than_sea() {
        let node = notional_server();
        let mut sea = EmbodiedFactors::typical();
        sea.transport = TransportMode::Sea;
        let mut air = sea.clone();
        air.transport = TransportMode::Air;
        let d_sea = sea.node_breakdown(&node).transport;
        let d_air = air.node_breakdown(&node).transport;
        assert!(d_air.kilograms() > d_sea.kilograms() * 10.0);
    }

    #[test]
    fn gpu_includes_hbm_at_dram_rate() {
        let f = EmbodiedFactors::typical();
        let gpu = Component::Gpu {
            model: "A100".into(),
            die_area_mm2: 826.0,
            memory_gb: 40.0,
            tdp: Power::from_watts(400.0),
        };
        let bare = Component::Gpu {
            model: "A100-noHBM".into(),
            die_area_mm2: 826.0,
            memory_gb: 0.0,
            tdp: Power::from_watts(400.0),
        };
        let with_mem = f.component_carbon(&gpu);
        let without = f.component_carbon(&bare);
        let delta = (with_mem - without).kilograms();
        assert!((delta - 40.0 * f.dram_per_gb).abs() < 1e-9);
    }

    #[test]
    fn storage_node_exceeds_compute_node() {
        let f = EmbodiedFactors::typical();
        let compute = notional_server();
        let storage = NodeBuilder::new("storage-12bay")
            .cpu("generic-16c", 16, 350.0, Power::from_watts(125.0))
            .dram_gb(128.0)
            .ssd_gb(480.0)
            .hdds(12, 16.0)
            .mainboard_cm2(1_800.0)
            .psus(2, Power::from_watts(800.0))
            .chassis_kg(26.0)
            .nic(25.0)
            .idle_power(Power::from_watts(120.0))
            .max_power(Power::from_watts(420.0))
            .build();
        // Compute node carries far more DRAM, but 12 HDDs + bigger chassis
        // keep the storage node within the same order of magnitude.
        let c = compute.embodied(&f).kilograms();
        let s = storage.embodied(&f).kilograms();
        assert!(s > 300.0 && s < c * 1.5, "storage {s:.0} vs compute {c:.0}");
    }

    #[test]
    fn eol_credit_reduces_total() {
        let node = notional_server();
        let mut with = EmbodiedFactors::typical();
        with.eol_credit = 0.10;
        let mut without = with.clone();
        without.eol_credit = 0.0;
        assert!(node.embodied(&with).kilograms() < node.embodied(&without).kilograms());
    }

    #[test]
    fn serde_round_trip() {
        let f = EmbodiedFactors::typical();
        let json = serde_json::to_string(&f).unwrap();
        let back: EmbodiedFactors = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
