//! The whole-federation view: every site, with cross-site queries.

use crate::{EmbodiedFactors, NodeGroup, NodeRole, Site};
use iriscast_units::CarbonMass;
use serde::{Deserialize, Serialize};

/// A federation of sites — the unit of assessment for the carbon model.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    sites: Vec<Site>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// Adds a site (builder style).
    pub fn with_site(mut self, site: Site) -> Self {
        self.sites.push(site);
        self
    }

    /// All sites in insertion order (the paper's table order).
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Looks a site up by its short code.
    pub fn site(&self, code: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.code == code)
    }

    /// Iterates `(site, group)` pairs across the federation.
    pub fn groups(&self) -> impl Iterator<Item = (&Site, &NodeGroup)> {
        self.sites
            .iter()
            .flat_map(|s| s.groups.iter().map(move |g| (s, g)))
    }

    /// Total inventoried nodes.
    pub fn total_nodes(&self) -> u32 {
        self.sites.iter().map(Site::total_nodes).sum()
    }

    /// Total nodes that produced telemetry during the snapshot (the sum of
    /// Table 2's "Nodes" column).
    pub fn monitored_nodes(&self) -> u32 {
        self.sites.iter().map(Site::monitored_nodes).sum()
    }

    /// Monitored non-storage nodes — the paper's Table 4 amortisation base.
    pub fn monitored_servers(&self) -> u32 {
        self.sites.iter().map(Site::monitored_servers).sum()
    }

    /// Inventoried nodes by role.
    pub fn nodes_with_role(&self, role: NodeRole) -> u32 {
        self.sites.iter().map(|s| s.nodes_with_role(role)).sum()
    }

    /// Total embodied carbon of all inventoried hardware under `factors`.
    pub fn total_embodied(&self, factors: &EmbodiedFactors) -> CarbonMass {
        self.sites.iter().map(|s| s.total_embodied(factors)).sum()
    }

    /// Embodied carbon of the *monitored, non-storage* subset — the base
    /// the paper amortises in Table 4 — using a flat per-server figure.
    pub fn monitored_server_embodied(&self, per_server: CarbonMass) -> CarbonMass {
        per_server * f64::from(self.monitored_servers())
    }

    /// One summary row per site, in site order.
    pub fn summary(&self) -> Vec<FleetSummary> {
        self.sites
            .iter()
            .map(|s| FleetSummary {
                code: s.code.clone(),
                name: s.name.clone(),
                compute: s.nodes_with_role(NodeRole::Compute),
                storage: s.nodes_with_role(NodeRole::Storage),
                other: s.total_nodes()
                    - s.nodes_with_role(NodeRole::Compute)
                    - s.nodes_with_role(NodeRole::Storage),
                monitored: s.monitored_nodes(),
            })
            .collect()
    }

    /// Serialises the fleet to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Loads a fleet from JSON produced by [`Fleet::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<Fleet> {
        serde_json::from_str(json)
    }
}

/// Per-site roll-up used to render the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Site short code.
    pub code: String,
    /// Institution name.
    pub name: String,
    /// Inventoried CPU/compute nodes.
    pub compute: u32,
    /// Inventoried storage nodes.
    pub storage: u32,
    /// Inventoried nodes of any other role.
    pub other: u32,
    /// Monitored nodes (Table 2 basis).
    pub monitored: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeBuilder;
    use iriscast_units::Power;

    fn spec(role: NodeRole) -> crate::NodeSpec {
        NodeBuilder::new(format!("{role}-node"))
            .role(role)
            .cpu("c", 8, 300.0, Power::from_watts(95.0))
            .dram_gb(64.0)
            .ssd_gb(240.0)
            .mainboard_cm2(1_200.0)
            .psus(1, Power::from_watts(550.0))
            .chassis_kg(12.0)
            .nic(10.0)
            .idle_power(Power::from_watts(60.0))
            .max_power(Power::from_watts(280.0))
            .build()
    }

    fn fleet() -> Fleet {
        Fleet::new()
            .with_site(
                Site::new("AAA", "Site A")
                    .with_group(NodeGroup::new(spec(NodeRole::Compute), 50).with_monitored(40))
                    .with_group(NodeGroup::new(spec(NodeRole::Storage), 10)),
            )
            .with_site(
                Site::new("BBB", "Site B")
                    .with_group(NodeGroup::new(spec(NodeRole::Compute), 30))
                    .with_group(NodeGroup::new(spec(NodeRole::Service), 2).unlisted()),
            )
    }

    #[test]
    fn totals() {
        let f = fleet();
        assert_eq!(f.total_nodes(), 92);
        assert_eq!(f.monitored_nodes(), 82);
        assert_eq!(f.monitored_servers(), 72); // storage excluded
        assert_eq!(f.nodes_with_role(NodeRole::Compute), 80);
        assert_eq!(f.nodes_with_role(NodeRole::Storage), 10);
        assert_eq!(f.sites().len(), 2);
    }

    #[test]
    fn lookup_and_iteration() {
        let f = fleet();
        assert!(f.site("AAA").is_some());
        assert!(f.site("ZZZ").is_none());
        assert_eq!(f.groups().count(), 4);
    }

    #[test]
    fn summary_rows() {
        let f = fleet();
        let s = f.summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].compute, 50);
        assert_eq!(s[0].storage, 10);
        assert_eq!(s[0].other, 0);
        assert_eq!(s[1].other, 2);
        assert_eq!(s[1].monitored, 32);
    }

    #[test]
    fn embodied_totals() {
        let f = fleet();
        let factors = EmbodiedFactors::typical();
        let total = f.total_embodied(&factors);
        let per_node = spec(NodeRole::Compute).embodied(&factors);
        // All nodes share the same component list here.
        assert!((total.kilograms() - 92.0 * per_node.kilograms()).abs() < 1e-6);

        let flat = f.monitored_server_embodied(CarbonMass::from_kilograms(400.0));
        assert_eq!(flat.kilograms(), 72.0 * 400.0);
    }

    #[test]
    fn json_round_trip() {
        let f = fleet();
        let json = f.to_json().unwrap();
        let back = Fleet::from_json(&json).unwrap();
        assert_eq!(f, back);
    }
}
