//! The IRIS federation dataset, encoded from the paper.
//!
//! Table 1 of the paper summarises the hardware included in the snapshot;
//! Table 2's "Nodes" column records how many nodes actually produced
//! telemetry. The two disagree for several sites (e.g. Imperial: 241
//! inventoried, 117 monitored), and reverse-engineering Table 4 shows the
//! embodied amortisation was run over **2,398 servers** — the monitored
//! fleet minus the 64 Durham storage nodes. This module encodes a single
//! fleet that is simultaneously consistent with all three tables:
//!
//! | Site | Inventoried (Table 1) | Monitored (Table 2) |
//! |------|----------------------|---------------------|
//! | QMUL | 118 CPU | 118 |
//! | CAM | 60 CPU | 59 |
//! | DUR | 808 CPU + 64 storage (+4 service, unlisted) | 876 |
//! | STFC Cloud | 651 CPU + 105 storage (+70 hypervisors, unlisted) | 721 |
//! | STFC SCARF | 699 CPU | 571 |
//! | IMP | 241 CPU | 117 |
//!
//! Node power envelopes (idle/max wall watts) are calibrated so that, at
//! the utilisation levels the telemetry scenario solves for, site energy
//! totals land on Table 2.

use crate::{Fleet, NodeBuilder, NodeGroup, NodeRole, NodeSpec, Site};
use iriscast_units::Power;

/// Site codes in the paper's Table 2 row order.
pub const SITE_CODES: [&str; 6] = ["QMUL", "CAM", "DUR", "STFC-CLOUD", "STFC-SCARF", "IMP"];

/// QMUL compute node: dual-socket, high-memory batch worker.
/// Wall-power envelope sized for the observed 459 W/node daily mean.
pub fn qmul_compute_spec() -> NodeSpec {
    NodeBuilder::new("qmul-compute")
        .role(NodeRole::Compute)
        .cpu("xeon-gold-6230", 20, 630.0, Power::from_watts(125.0))
        .cpu("xeon-gold-6230", 20, 630.0, Power::from_watts(125.0))
        .dram_gb(384.0)
        .ssd_gb(960.0)
        .ssd_gb(960.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(25.0)
        .idle_power(Power::from_watts(140.0))
        .max_power(Power::from_watts(620.0))
        .build()
}

/// Cambridge compute node: lower-power, lightly loaded during the snapshot.
pub fn cam_compute_spec() -> NodeSpec {
    NodeBuilder::new("cam-compute")
        .role(NodeRole::Compute)
        .cpu("xeon-silver-4216", 16, 480.0, Power::from_watts(100.0))
        .dram_gb(192.0)
        .ssd_gb(480.0)
        .mainboard_cm2(1_800.0)
        .psus(2, Power::from_watts(800.0))
        .chassis_kg(16.0)
        .nic(10.0)
        .idle_power(Power::from_watts(90.0))
        .max_power(Power::from_watts(400.0))
        .build()
}

/// Durham (COSMA) compute node: dense dual-socket HPC worker.
pub fn dur_compute_spec() -> NodeSpec {
    NodeBuilder::new("dur-compute")
        .role(NodeRole::Compute)
        .cpu("epyc-7h12", 64, 1_000.0, Power::from_watts(280.0))
        .cpu("epyc-7h12", 64, 1_000.0, Power::from_watts(280.0))
        .dram_gb(512.0)
        .ssd_gb(480.0)
        .mainboard_cm2(2_100.0)
        .psus(2, Power::from_watts(1_400.0))
        .chassis_kg(19.0)
        .nic(100.0)
        .idle_power(Power::from_watts(130.0))
        .max_power(Power::from_watts(600.0))
        .build()
}

/// Durham storage server: 12-bay spinning bulk store, flat power profile.
pub fn dur_storage_spec() -> NodeSpec {
    NodeBuilder::new("dur-storage")
        .role(NodeRole::Storage)
        .cpu("xeon-silver-4210", 10, 350.0, Power::from_watts(85.0))
        .dram_gb(96.0)
        .ssd_gb(480.0)
        .hdds(12, 16.0)
        .mainboard_cm2(1_800.0)
        .psus(2, Power::from_watts(800.0))
        .chassis_kg(26.0)
        .nic(25.0)
        .idle_power(Power::from_watts(180.0))
        .max_power(Power::from_watts(320.0))
        .build()
}

/// Durham service node (login/management; not listed in Table 1).
pub fn dur_service_spec() -> NodeSpec {
    NodeBuilder::new("dur-service")
        .role(NodeRole::Service)
        .cpu("xeon-silver-4214", 12, 350.0, Power::from_watts(85.0))
        .dram_gb(96.0)
        .ssd_gb(480.0)
        .mainboard_cm2(1_500.0)
        .psus(2, Power::from_watts(550.0))
        .chassis_kg(14.0)
        .nic(10.0)
        .idle_power(Power::from_watts(100.0))
        .max_power(Power::from_watts(250.0))
        .build()
}

/// STFC Cloud hypervisor: virtualisation host with steady moderate load.
pub fn cloud_hypervisor_spec() -> NodeSpec {
    NodeBuilder::new("cloud-hypervisor")
        .role(NodeRole::Compute)
        .cpu("xeon-gold-6130", 16, 480.0, Power::from_watts(125.0))
        .cpu("xeon-gold-6130", 16, 480.0, Power::from_watts(125.0))
        .dram_gb(256.0)
        .ssd_gb(960.0)
        .mainboard_cm2(1_900.0)
        .psus(2, Power::from_watts(900.0))
        .chassis_kg(17.0)
        .nic(25.0)
        .idle_power(Power::from_watts(110.0))
        .max_power(Power::from_watts(450.0))
        .build()
}

/// STFC Cloud storage server (Ceph OSD host; produced no snapshot
/// telemetry).
pub fn cloud_storage_spec() -> NodeSpec {
    NodeBuilder::new("cloud-storage")
        .role(NodeRole::Storage)
        .cpu("xeon-silver-4110", 8, 320.0, Power::from_watts(85.0))
        .dram_gb(128.0)
        .ssd_gb(960.0)
        .hdds(12, 12.0)
        .mainboard_cm2(1_800.0)
        .psus(2, Power::from_watts(800.0))
        .chassis_kg(26.0)
        .nic(25.0)
        .idle_power(Power::from_watts(170.0))
        .max_power(Power::from_watts(310.0))
        .build()
}

/// STFC SCARF HPC compute node.
pub fn scarf_compute_spec() -> NodeSpec {
    NodeBuilder::new("scarf-compute")
        .role(NodeRole::Compute)
        .cpu("epyc-7502", 32, 750.0, Power::from_watts(180.0))
        .cpu("epyc-7502", 32, 750.0, Power::from_watts(180.0))
        .dram_gb(256.0)
        .ssd_gb(480.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(100.0)
        .idle_power(Power::from_watts(120.0))
        .max_power(Power::from_watts(550.0))
        .build()
}

/// Imperial College GridPP worker node.
pub fn imp_compute_spec() -> NodeSpec {
    NodeBuilder::new("imp-compute")
        .role(NodeRole::Compute)
        .cpu("xeon-e5-2650v4", 12, 306.0, Power::from_watts(105.0))
        .cpu("xeon-e5-2650v4", 12, 306.0, Power::from_watts(105.0))
        .dram_gb(128.0)
        .ssd_gb(480.0)
        .mainboard_cm2(1_900.0)
        .psus(2, Power::from_watts(750.0))
        .chassis_kg(16.0)
        .nic(10.0)
        .idle_power(Power::from_watts(150.0))
        .max_power(Power::from_watts(600.0))
        .build()
}

/// Builds the full IRIS federation as included in the snapshot experiment.
pub fn iris_fleet() -> Fleet {
    Fleet::new()
        .with_site(
            Site::new("QMUL", "Queen Mary University of London")
                .with_group(NodeGroup::new(qmul_compute_spec(), 118)),
        )
        .with_site(
            Site::new("CAM", "Cambridge University")
                .with_group(NodeGroup::new(cam_compute_spec(), 60).with_monitored(59)),
        )
        .with_site(
            Site::new("DUR", "Durham University")
                .with_group(NodeGroup::new(dur_compute_spec(), 808))
                .with_group(NodeGroup::new(dur_storage_spec(), 64))
                .with_group(NodeGroup::new(dur_service_spec(), 4).unlisted()),
        )
        .with_site(
            Site::new("STFC-CLOUD", "Rutherford Appleton Laboratory (STFC Cloud)")
                .with_group(NodeGroup::new(cloud_hypervisor_spec(), 651))
                .with_group({
                    // Hypervisors added after the Table 1 inventory was
                    // compiled but present in the Table 2 telemetry (the
                    // paper monitors 721 Cloud nodes against 651 listed).
                    let mut spec_extra = cloud_hypervisor_spec();
                    spec_extra = NodeBuilder::from_spec(spec_extra)
                        .rename("cloud-hypervisor-extra")
                        .build();
                    NodeGroup::new(spec_extra, 70).unlisted()
                })
                .with_group(NodeGroup::new(cloud_storage_spec(), 105).with_monitored(0)),
        )
        .with_site(
            Site::new("STFC-SCARF", "Rutherford Appleton Laboratory (SCARF)")
                .with_group(NodeGroup::new(scarf_compute_spec(), 699).with_monitored(571)),
        )
        .with_site(
            Site::new("IMP", "Imperial College London")
                .with_group(NodeGroup::new(imp_compute_spec(), 241).with_monitored(117)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmbodiedFactors;

    #[test]
    fn monitored_counts_match_table2() {
        let fleet = iris_fleet();
        let expected: [(&str, u32); 6] = [
            ("QMUL", 118),
            ("CAM", 59),
            ("DUR", 876),
            ("STFC-CLOUD", 721),
            ("STFC-SCARF", 571),
            ("IMP", 117),
        ];
        for (code, monitored) in expected {
            assert_eq!(
                fleet.site(code).unwrap().monitored_nodes(),
                monitored,
                "site {code}"
            );
        }
        assert_eq!(fleet.monitored_nodes(), 2_462);
    }

    #[test]
    fn inventory_matches_table1() {
        let fleet = iris_fleet();
        // Table 1 lists only the summary groups.
        let listed_compute: u32 = fleet
            .groups()
            .filter(|(_, g)| g.listed_in_summary && g.spec.role() == NodeRole::Compute)
            .map(|(_, g)| g.count)
            .sum();
        // 118 + 60 + 808 + 651 + 699 + 241 = 2,577 CPU nodes in Table 1.
        assert_eq!(listed_compute, 2_577);
        let listed_storage: u32 = fleet
            .groups()
            .filter(|(_, g)| g.listed_in_summary && g.spec.role() == NodeRole::Storage)
            .map(|(_, g)| g.count)
            .sum();
        assert_eq!(listed_storage, 64 + 105);
    }

    #[test]
    fn table4_server_base_is_2398() {
        let fleet = iris_fleet();
        assert_eq!(fleet.monitored_servers(), 2_398);
    }

    #[test]
    fn site_order_matches_paper() {
        let fleet = iris_fleet();
        let codes: Vec<_> = fleet.sites().iter().map(|s| s.code.as_str()).collect();
        assert_eq!(codes, SITE_CODES);
    }

    #[test]
    fn all_specs_have_valid_power_envelopes() {
        let fleet = iris_fleet();
        for (site, group) in fleet.groups() {
            let s = &group.spec;
            assert!(
                s.max_power() > s.idle_power(),
                "{}/{} has degenerate envelope",
                site.code,
                s.name()
            );
            assert!(s.idle_power().watts() > 0.0);
        }
    }

    #[test]
    fn component_model_brackets_paper_bounds_across_fleet() {
        let fleet = iris_fleet();
        let low = EmbodiedFactors::low();
        let high = EmbodiedFactors::high();
        for (site, group) in fleet.groups() {
            let lo = group.spec.embodied(&low).kilograms();
            let hi = group.spec.embodied(&high).kilograms();
            assert!(
                lo > 150.0 && hi < 2_000.0,
                "{}/{}: embodied range [{lo:.0}, {hi:.0}] implausible",
                site.code,
                group.spec.name()
            );
            assert!(lo < hi);
        }
    }

    #[test]
    fn storage_specs_have_flat_profiles() {
        // Storage nodes idle high and peak low relative to compute.
        let s = dur_storage_spec();
        let dynamic_range = s.max_power() - s.idle_power();
        assert!(dynamic_range.watts() < 200.0);
        assert!(s.idle_power().watts() > 150.0);
    }
}
