//! Hardware inventory catalog and component-level embodied-carbon model.
//!
//! The IRISCAST paper's embodied-carbon analysis starts from *inventories*
//! provided by each facility: what nodes exist, at which site, in what
//! quantity — and manufacturer estimates of the carbon embodied in each
//! server (the paper adopts 400 and 1100 kgCO₂ as bracketing values for a
//! "notional compute node"). This crate supplies that substrate:
//!
//! * [`Component`] — CPUs, DRAM, SSD/HDD, mainboards, PSUs, chassis, NICs,
//!   with the physical attributes that drive manufacturing emissions;
//! * [`EmbodiedFactors`] — an ACT-style factor set (per-mm² logic, per-GB
//!   memory/flash, per-kg structure, assembly and transport) with low /
//!   typical / high presets that bracket published manufacturer LCA sheets;
//! * [`NodeSpec`] / [`NodeBuilder`] — node definitions combining components
//!   with nameplate power characteristics used by the telemetry simulator;
//! * [`Site`], [`NodeGroup`] and [`Fleet`] — the federation structure, with
//!   the distinction between *inventoried* and *monitored* hardware that
//!   Table 1 vs Table 2 of the paper exhibits;
//! * [`Region`] and [`FederatedFleet`] — the upper tiers of the
//!   rack → site → region → fleet hierarchy, for federations where "all
//!   sites" is tens of thousands rather than seven;
//! * [`iris`] — the IRIS federation dataset encoded from the paper.
//!
//! # Example
//!
//! ```
//! use iriscast_inventory::{iris, EmbodiedFactors};
//!
//! let fleet = iris::iris_fleet();
//! assert_eq!(fleet.monitored_nodes(), 2_462);      // Table 2 "Nodes" column
//! assert_eq!(fleet.monitored_servers(), 2_398);    // Table 4 amortisation base
//!
//! let factors = EmbodiedFactors::typical();
//! let node = iris::qmul_compute_spec();
//! let kg = node.embodied(&factors).kilograms();
//! assert!(kg > 300.0 && kg < 1_300.0, "within the paper's server range");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod component;
mod embodied;
mod fleet;
pub mod iris;
mod node;
pub mod reference;
mod region;
mod site;

pub use component::{Component, TransportMode};
pub use embodied::{EmbodiedBreakdown, EmbodiedFactors};
pub use fleet::{Fleet, FleetSummary};
pub use node::{NodeBuilder, NodeRole, NodeSpec};
pub use region::{FederatedFleet, Region};
pub use site::{NodeGroup, Site};
