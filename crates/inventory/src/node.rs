//! Node specifications: role, component list, nameplate power.

use crate::{Component, EmbodiedFactors};
use iriscast_units::{CarbonMass, Power};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The functional role a node plays in the DRI — the paper's §4.1 taxonomy
/// of primary active-energy components.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeRole {
    /// Batch/cloud compute node (the bulk of every IRIS site).
    Compute,
    /// Bulk storage server.
    Storage,
    /// Interactive login/head node.
    Login,
    /// Management, monitoring and other service nodes.
    Service,
    /// Switches, routers and other standalone network equipment.
    Network,
}

impl NodeRole {
    /// All roles in declaration order.
    pub const ALL: [NodeRole; 5] = [
        NodeRole::Compute,
        NodeRole::Storage,
        NodeRole::Login,
        NodeRole::Service,
        NodeRole::Network,
    ];

    /// `true` for roles the paper counts as "servers" in its embodied
    /// amortisation (Table 4 excludes storage hardware; see DESIGN.md).
    pub const fn counts_as_server(self) -> bool {
        !matches!(self, NodeRole::Storage)
    }
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeRole::Compute => "compute",
            NodeRole::Storage => "storage",
            NodeRole::Login => "login",
            NodeRole::Service => "service",
            NodeRole::Network => "network",
        };
        f.write_str(s)
    }
}

/// A node model: its components and its nameplate power envelope.
///
/// `idle_power`/`max_power` describe *wall* (AC input) power at 0% and
/// 100% utilisation, the quantities the telemetry simulator interpolates
/// between. An explicit `embodied_override` short-circuits the component
/// model when a manufacturer whole-server figure is preferred (which is
/// exactly what the paper does with its 400/1100 kg bounds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    name: String,
    role: NodeRole,
    components: Vec<(Component, u32)>,
    idle_power: Power,
    max_power: Power,
    embodied_override: Option<CarbonMass>,
}

impl NodeSpec {
    /// Model name (e.g. `"qmul-compute"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functional role.
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Component list with per-component counts.
    pub fn components(&self) -> &[(Component, u32)] {
        &self.components
    }

    /// Wall power at idle.
    pub fn idle_power(&self) -> Power {
        self.idle_power
    }

    /// Wall power at full utilisation.
    pub fn max_power(&self) -> Power {
        self.max_power
    }

    /// Wall power at fractional utilisation `u ∈ [0, 1]` under the default
    /// linear interpolation (the telemetry crate offers richer curves).
    pub fn power_at(&self, utilisation: f64) -> Power {
        let u = utilisation.clamp(0.0, 1.0);
        self.idle_power + (self.max_power - self.idle_power) * u
    }

    /// Net embodied carbon for one node: the override if set, otherwise the
    /// component model under `factors`.
    pub fn embodied(&self, factors: &EmbodiedFactors) -> CarbonMass {
        match self.embodied_override {
            Some(c) => c,
            None => factors.node_breakdown(self).total(),
        }
    }

    /// Whether a manufacturer whole-server figure overrides the component
    /// model.
    pub fn has_embodied_override(&self) -> bool {
        self.embodied_override.is_some()
    }

    /// Total DRAM capacity across components, in GB.
    pub fn total_dram_gb(&self) -> f64 {
        self.components
            .iter()
            .map(|(c, n)| match c {
                Component::Dram { capacity_gb } => capacity_gb * f64::from(*n),
                _ => 0.0,
            })
            .sum()
    }

    /// Total physical CPU cores across components.
    pub fn total_cores(&self) -> u32 {
        self.components
            .iter()
            .map(|(c, n)| match c {
                Component::Cpu { cores, .. } => cores * n,
                _ => 0,
            })
            .sum()
    }

    /// Total storage capacity (SSD + HDD), in TB.
    pub fn total_storage_tb(&self) -> f64 {
        self.components
            .iter()
            .map(|(c, n)| {
                let per = match c {
                    Component::Ssd { capacity_gb } => capacity_gb / 1_000.0,
                    Component::Hdd { capacity_tb } => *capacity_tb,
                    _ => 0.0,
                };
                per * f64::from(*n)
            })
            .sum()
    }
}

/// Fluent builder for [`NodeSpec`].
///
/// ```
/// use iriscast_inventory::NodeBuilder;
/// use iriscast_units::Power;
///
/// let node = NodeBuilder::new("worker")
///     .cpu("EPYC-7452", 32, 600.0, Power::from_watts(155.0))
///     .dram_gb(256.0)
///     .ssd_gb(960.0)
///     .idle_power(Power::from_watts(120.0))
///     .max_power(Power::from_watts(520.0))
///     .build();
/// assert_eq!(node.total_cores(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct NodeBuilder {
    spec: NodeSpec,
}

impl NodeBuilder {
    /// Starts a compute-role node named `name` with no components and a
    /// zero power envelope.
    pub fn new(name: impl Into<String>) -> Self {
        NodeBuilder {
            spec: NodeSpec {
                name: name.into(),
                role: NodeRole::Compute,
                components: Vec::new(),
                idle_power: Power::ZERO,
                max_power: Power::ZERO,
                embodied_override: None,
            },
        }
    }

    /// Starts from an existing spec, for derived models.
    pub fn from_spec(spec: NodeSpec) -> Self {
        NodeBuilder { spec }
    }

    /// Renames the node model.
    pub fn rename(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the functional role.
    pub fn role(mut self, role: NodeRole) -> Self {
        self.spec.role = role;
        self
    }

    /// Adds one CPU package.
    pub fn cpu(mut self, model: &str, cores: u32, die_area_mm2: f64, tdp: Power) -> Self {
        self.spec.components.push((
            Component::Cpu {
                model: model.to_string(),
                cores,
                die_area_mm2,
                tdp,
            },
            1,
        ));
        self
    }

    /// Adds one GPU.
    pub fn gpu(mut self, model: &str, die_area_mm2: f64, memory_gb: f64, tdp: Power) -> Self {
        self.spec.components.push((
            Component::Gpu {
                model: model.to_string(),
                die_area_mm2,
                memory_gb,
                tdp,
            },
            1,
        ));
        self
    }

    /// Adds DRAM totalling `capacity_gb`.
    pub fn dram_gb(mut self, capacity_gb: f64) -> Self {
        self.spec
            .components
            .push((Component::Dram { capacity_gb }, 1));
        self
    }

    /// Adds one SSD of `capacity_gb`.
    pub fn ssd_gb(mut self, capacity_gb: f64) -> Self {
        self.spec
            .components
            .push((Component::Ssd { capacity_gb }, 1));
        self
    }

    /// Adds `count` HDDs of `capacity_tb` each.
    pub fn hdds(mut self, count: u32, capacity_tb: f64) -> Self {
        self.spec
            .components
            .push((Component::Hdd { capacity_tb }, count));
        self
    }

    /// Adds the system board.
    pub fn mainboard_cm2(mut self, area_cm2: f64) -> Self {
        self.spec
            .components
            .push((Component::Mainboard { area_cm2 }, 1));
        self
    }

    /// Adds `count` PSUs rated at `rated` each.
    pub fn psus(mut self, count: u32, rated: Power) -> Self {
        self.spec.components.push((Component::Psu { rated }, count));
        self
    }

    /// Adds the chassis/structure.
    pub fn chassis_kg(mut self, mass_kg: f64) -> Self {
        self.spec
            .components
            .push((Component::Chassis { mass_kg }, 1));
        self
    }

    /// Adds one NIC.
    pub fn nic(mut self, speed_gbps: f64) -> Self {
        self.spec
            .components
            .push((Component::Nic { speed_gbps }, 1));
        self
    }

    /// Sets wall power at idle.
    pub fn idle_power(mut self, p: Power) -> Self {
        self.spec.idle_power = p;
        self
    }

    /// Sets wall power at full load.
    pub fn max_power(mut self, p: Power) -> Self {
        self.spec.max_power = p;
        self
    }

    /// Uses a manufacturer whole-server embodied figure instead of the
    /// component model.
    pub fn embodied_override(mut self, c: CarbonMass) -> Self {
        self.spec.embodied_override = Some(c);
        self
    }

    /// Finalises the spec.
    ///
    /// # Panics
    /// If `max_power < idle_power`, which would make the power model
    /// decreasing in utilisation.
    pub fn build(self) -> NodeSpec {
        assert!(
            self.spec.max_power >= self.spec.idle_power,
            "node '{}': max power {} below idle power {}",
            self.spec.name,
            self.spec.max_power,
            self.spec.idle_power
        );
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeSpec {
        NodeBuilder::new("test-node")
            .role(NodeRole::Compute)
            .cpu("x", 24, 500.0, Power::from_watts(150.0))
            .cpu("x", 24, 500.0, Power::from_watts(150.0))
            .dram_gb(256.0)
            .ssd_gb(480.0)
            .hdds(2, 4.0)
            .mainboard_cm2(1_800.0)
            .psus(2, Power::from_watts(800.0))
            .chassis_kg(16.0)
            .nic(10.0)
            .idle_power(Power::from_watts(100.0))
            .max_power(Power::from_watts(500.0))
            .build()
    }

    #[test]
    fn accessors() {
        let n = sample();
        assert_eq!(n.name(), "test-node");
        assert_eq!(n.role(), NodeRole::Compute);
        assert_eq!(n.total_cores(), 48);
        assert_eq!(n.total_dram_gb(), 256.0);
        assert!((n.total_storage_tb() - 8.48).abs() < 1e-9);
        assert_eq!(n.components().len(), 9);
        assert!(!n.has_embodied_override());
    }

    #[test]
    fn power_interpolation_and_clamping() {
        let n = sample();
        assert_eq!(n.power_at(0.0), Power::from_watts(100.0));
        assert_eq!(n.power_at(1.0), Power::from_watts(500.0));
        assert_eq!(n.power_at(0.5), Power::from_watts(300.0));
        // Out-of-range utilisation clamps rather than extrapolating.
        assert_eq!(n.power_at(-0.5), Power::from_watts(100.0));
        assert_eq!(n.power_at(1.7), Power::from_watts(500.0));
    }

    #[test]
    fn embodied_override_wins() {
        let n = NodeBuilder::new("override")
            .dram_gb(1_000.0)
            .embodied_override(CarbonMass::from_kilograms(400.0))
            .idle_power(Power::from_watts(50.0))
            .max_power(Power::from_watts(60.0))
            .build();
        assert!(n.has_embodied_override());
        let c = n.embodied(&EmbodiedFactors::high());
        assert_eq!(c.kilograms(), 400.0);
    }

    #[test]
    #[should_panic(expected = "below idle power")]
    fn build_rejects_inverted_power_envelope() {
        let _ = NodeBuilder::new("bad")
            .idle_power(Power::from_watts(300.0))
            .max_power(Power::from_watts(200.0))
            .build();
    }

    #[test]
    fn role_properties() {
        assert!(NodeRole::Compute.counts_as_server());
        assert!(NodeRole::Service.counts_as_server());
        assert!(!NodeRole::Storage.counts_as_server());
        assert_eq!(NodeRole::ALL.len(), 5);
        assert_eq!(NodeRole::Storage.to_string(), "storage");
    }

    #[test]
    fn serde_round_trip() {
        let n = sample();
        let json = serde_json::to_string(&n).unwrap();
        let back: NodeSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(n, back);
    }
}
