//! Reference node configurations: reusable hardware archetypes.
//!
//! The paper prices a "notional compute node" at 400–1100 kgCO₂. These
//! presets give that notional node — and its storage and GPU siblings — a
//! concrete bill of materials, so examples, tests and downstream users
//! price consistent hardware instead of re-inventing component lists.

use crate::{NodeBuilder, NodeRole, NodeSpec};
use iriscast_units::Power;

/// The paper's notional dual-socket compute node: 2×32-core CPUs, 384 GB,
/// mirrored NVMe boot, dual PSU. The embodied-factor presets bracket it at
/// roughly 400 / 1,100 kgCO₂ (low / high).
pub fn notional_compute_node() -> NodeSpec {
    NodeBuilder::new("ref-compute-2s")
        .role(NodeRole::Compute)
        .cpu("ref-32c", 32, 600.0, Power::from_watts(205.0))
        .cpu("ref-32c", 32, 600.0, Power::from_watts(205.0))
        .dram_gb(384.0)
        .ssd_gb(960.0)
        .ssd_gb(960.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(25.0)
        .idle_power(Power::from_watts(140.0))
        .max_power(Power::from_watts(620.0))
        .build()
}

/// A 12-bay bulk storage server (16 TB drives): flat power profile, large
/// chassis, HDD-dominated embodied profile.
pub fn storage_node() -> NodeSpec {
    NodeBuilder::new("ref-storage-12bay")
        .role(NodeRole::Storage)
        .cpu("ref-10c", 10, 350.0, Power::from_watts(85.0))
        .dram_gb(96.0)
        .ssd_gb(480.0)
        .hdds(12, 16.0)
        .mainboard_cm2(1_800.0)
        .psus(2, Power::from_watts(800.0))
        .chassis_kg(26.0)
        .nic(25.0)
        .idle_power(Power::from_watts(180.0))
        .max_power(Power::from_watts(320.0))
        .build()
}

/// A 4-GPU training node: accelerator-dominated power and embodied
/// profile (HBM charged at the DRAM rate).
pub fn gpu_node() -> NodeSpec {
    let mut b = NodeBuilder::new("ref-gpu-4x")
        .role(NodeRole::Compute)
        .cpu("ref-32c", 32, 600.0, Power::from_watts(205.0))
        .cpu("ref-32c", 32, 600.0, Power::from_watts(205.0))
        .dram_gb(512.0);
    for _ in 0..4 {
        b = b.gpu("ref-a100", 826.0, 80.0, Power::from_watts(400.0));
    }
    b.ssd_gb(1_920.0)
        .mainboard_cm2(2_400.0)
        .psus(4, Power::from_watts(1_600.0))
        .chassis_kg(32.0)
        .nic(100.0)
        .idle_power(Power::from_watts(450.0))
        .max_power(Power::from_watts(2_600.0))
        .build()
}

/// A login/management node: small, single-socket.
pub fn service_node() -> NodeSpec {
    NodeBuilder::new("ref-service")
        .role(NodeRole::Service)
        .cpu("ref-12c", 12, 350.0, Power::from_watts(85.0))
        .dram_gb(96.0)
        .ssd_gb(480.0)
        .mainboard_cm2(1_500.0)
        .psus(2, Power::from_watts(550.0))
        .chassis_kg(14.0)
        .nic(10.0)
        .idle_power(Power::from_watts(100.0))
        .max_power(Power::from_watts(250.0))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmbodiedFactors;

    #[test]
    fn notional_node_prices_at_paper_bounds() {
        let n = notional_compute_node();
        let low = n.embodied(&EmbodiedFactors::low()).kilograms();
        let high = n.embodied(&EmbodiedFactors::high()).kilograms();
        assert!((330.0..=480.0).contains(&low), "low {low:.0}");
        assert!((980.0..=1_250.0).contains(&high), "high {high:.0}");
    }

    #[test]
    fn gpu_node_is_the_heaviest() {
        let f = EmbodiedFactors::typical();
        let compute = notional_compute_node().embodied(&f);
        let storage = storage_node().embodied(&f);
        let gpu = gpu_node().embodied(&f);
        let service = service_node().embodied(&f);
        assert!(gpu > compute && gpu > storage && gpu > service);
        // Four 80 GB HBM stacks alone add ≥ 320 GB × dram rate.
        assert!(
            (gpu - compute).kilograms() > 320.0 * f.dram_per_gb * 0.9,
            "GPU premium too small"
        );
    }

    #[test]
    fn roles_and_envelopes_are_sane() {
        for (spec, role) in [
            (notional_compute_node(), NodeRole::Compute),
            (storage_node(), NodeRole::Storage),
            (gpu_node(), NodeRole::Compute),
            (service_node(), NodeRole::Service),
        ] {
            assert_eq!(spec.role(), role, "{}", spec.name());
            assert!(spec.max_power() > spec.idle_power());
        }
        // GPU node peaks far above the CPU node.
        assert!(
            gpu_node().max_power().watts()
                > 4.0 * notional_compute_node().max_power().watts() * 0.9
        );
    }

    #[test]
    fn storage_capacity_reflects_bays() {
        let s = storage_node();
        assert!((s.total_storage_tb() - (12.0 * 16.0 + 0.48)).abs() < 1e-9);
    }
}
