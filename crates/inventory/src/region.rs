//! Regions and federated fleets: the upper tiers of the
//! rack → site → region → fleet hierarchy.
//!
//! The paper assesses one ~7-site federation; hyperscale fleets ("Chasing
//! Carbon") are thousands of sites spread over geographic regions, and
//! multi-tenant attribution needs per-site results rolled up level by
//! level. A [`Region`] groups sites; a [`FederatedFleet`] groups regions
//! and presents the same roll-up queries [`Fleet`] offers, tier by tier.
//! Sites are held in **region-major order** — the canonical enumeration
//! every roll-up, shard assignment and columnar statistic in the
//! workspace uses, so a fleet-level fold visits sites in exactly the
//! order a serial per-region walk would.

use crate::{EmbodiedFactors, Fleet, Site};
use iriscast_units::CarbonMass;
use serde::{Deserialize, Serialize};

/// A geographic (or organisational) grouping of sites — the tier between
/// site and fleet.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Short code ("UK-SOUTH", "EU-WEST-1", …).
    pub code: String,
    /// Human-readable name.
    pub name: String,
    /// Member sites, in roll-up order.
    pub sites: Vec<Site>,
}

impl Region {
    /// Creates an empty region.
    pub fn new(code: impl Into<String>, name: impl Into<String>) -> Self {
        Region {
            code: code.into(),
            name: name.into(),
            sites: Vec::new(),
        }
    }

    /// Adds a site (builder style).
    pub fn with_site(mut self, site: Site) -> Self {
        self.sites.push(site);
        self
    }

    /// Total inventoried nodes across the region's sites.
    pub fn total_nodes(&self) -> u32 {
        self.sites.iter().map(Site::total_nodes).sum()
    }

    /// Nodes that produced telemetry during the snapshot.
    pub fn monitored_nodes(&self) -> u32 {
        self.sites.iter().map(Site::monitored_nodes).sum()
    }

    /// Total embodied carbon of the region's inventoried hardware.
    pub fn total_embodied(&self, factors: &EmbodiedFactors) -> CarbonMass {
        self.sites.iter().map(|s| s.total_embodied(factors)).sum()
    }
}

/// A fleet of regions — the top of the hierarchy, scaling the flat
/// [`Fleet`] to federations where "all sites" is tens of thousands.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FederatedFleet {
    regions: Vec<Region>,
}

impl FederatedFleet {
    /// An empty federated fleet.
    pub fn new() -> Self {
        FederatedFleet::default()
    }

    /// Adds a region (builder style).
    pub fn with_region(mut self, region: Region) -> Self {
        self.regions.push(region);
        self
    }

    /// Wraps a flat [`Fleet`] as a single-region federation — the shape
    /// the paper's IRIS federation takes in the hierarchy.
    pub fn single_region(code: impl Into<String>, name: impl Into<String>, fleet: &Fleet) -> Self {
        let mut region = Region::new(code, name);
        region.sites = fleet.sites().to_vec();
        FederatedFleet {
            regions: vec![region],
        }
    }

    /// All regions in insertion order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates `(region index, site)` pairs in region-major order — the
    /// canonical site enumeration the federation roll-ups shard over.
    pub fn sites(&self) -> impl Iterator<Item = (usize, &Site)> {
        self.regions
            .iter()
            .enumerate()
            .flat_map(|(r, region)| region.sites.iter().map(move |s| (r, s)))
    }

    /// Total number of sites across all regions.
    pub fn site_count(&self) -> usize {
        self.regions.iter().map(|r| r.sites.len()).sum()
    }

    /// Total inventoried nodes across the whole federation.
    pub fn total_nodes(&self) -> u32 {
        self.regions.iter().map(Region::total_nodes).sum()
    }

    /// Nodes that produced telemetry during the snapshot.
    pub fn monitored_nodes(&self) -> u32 {
        self.regions.iter().map(Region::monitored_nodes).sum()
    }

    /// Total embodied carbon across the whole federation.
    pub fn total_embodied(&self, factors: &EmbodiedFactors) -> CarbonMass {
        self.regions.iter().map(|r| r.total_embodied(factors)).sum()
    }

    /// Flattens the hierarchy into a [`Fleet`] in region-major site
    /// order, for APIs that predate regions.
    pub fn flatten(&self) -> Fleet {
        let mut fleet = Fleet::new();
        for (_, site) in self.sites() {
            fleet = fleet.with_site(site.clone());
        }
        fleet
    }

    /// The region index of the site with the given code, searching in
    /// region-major order.
    pub fn region_of_site(&self, code: &str) -> Option<usize> {
        self.sites().find(|(_, s)| s.code == code).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeBuilder, NodeGroup, NodeRole};
    use iriscast_units::Power;

    fn spec() -> crate::NodeSpec {
        NodeBuilder::new("r-node")
            .role(NodeRole::Compute)
            .cpu("c", 8, 300.0, Power::from_watts(95.0))
            .dram_gb(64.0)
            .ssd_gb(240.0)
            .mainboard_cm2(1_200.0)
            .psus(1, Power::from_watts(550.0))
            .chassis_kg(12.0)
            .nic(10.0)
            .idle_power(Power::from_watts(60.0))
            .max_power(Power::from_watts(280.0))
            .build()
    }

    fn site(code: &str, nodes: u32) -> Site {
        Site::new(code, code).with_group(NodeGroup::new(spec(), nodes))
    }

    fn federation() -> FederatedFleet {
        FederatedFleet::new()
            .with_region(
                Region::new("NORTH", "North")
                    .with_site(site("N1", 10))
                    .with_site(site("N2", 20)),
            )
            .with_region(Region::new("SOUTH", "South").with_site(site("S1", 5)))
    }

    #[test]
    fn hierarchy_sums_tier_by_tier() {
        let f = federation();
        assert_eq!(f.site_count(), 3);
        assert_eq!(f.total_nodes(), 35);
        assert_eq!(f.monitored_nodes(), 35);
        assert_eq!(f.regions()[0].total_nodes(), 30);
        assert_eq!(f.regions()[1].total_nodes(), 5);
        let factors = EmbodiedFactors::typical();
        let whole = f.total_embodied(&factors).kilograms();
        let by_region: f64 = f
            .regions()
            .iter()
            .map(|r| r.total_embodied(&factors).kilograms())
            .sum();
        assert!((whole - by_region).abs() < 1e-9);
    }

    #[test]
    fn region_major_site_order() {
        let f = federation();
        let order: Vec<(usize, &str)> = f.sites().map(|(r, s)| (r, s.code.as_str())).collect();
        assert_eq!(order, vec![(0, "N1"), (0, "N2"), (1, "S1")]);
        assert_eq!(f.region_of_site("N2"), Some(0));
        assert_eq!(f.region_of_site("S1"), Some(1));
        assert_eq!(f.region_of_site("Z9"), None);
    }

    #[test]
    fn flatten_preserves_order_and_totals() {
        let f = federation();
        let flat = f.flatten();
        assert_eq!(flat.sites().len(), 3);
        assert_eq!(flat.sites()[0].code, "N1");
        assert_eq!(flat.total_nodes(), f.total_nodes());
    }

    #[test]
    fn single_region_wraps_a_flat_fleet() {
        let flat = Fleet::new().with_site(site("A", 3)).with_site(site("B", 4));
        let f = FederatedFleet::single_region("IRIS", "IRIS federation", &flat);
        assert_eq!(f.regions().len(), 1);
        assert_eq!(f.site_count(), 2);
        assert_eq!(f.total_nodes(), 7);
        assert_eq!(f.flatten(), flat);
    }

    #[test]
    fn json_round_trip() {
        let f = federation();
        let json = serde_json::to_string(&f).unwrap();
        let back: FederatedFleet = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
