//! Sites and node groups: the federation structure.

use crate::{NodeRole, NodeSpec};
use iriscast_units::{CarbonMass, Pue};
use serde::{Deserialize, Serialize};

/// A group of identical nodes at one site.
///
/// `count` is the inventoried quantity (what Table 1 of the paper reports);
/// `monitored` is the subset that produced telemetry during the snapshot
/// (what Table 2's "Nodes" column reports). The two genuinely differ in the
/// paper — e.g. Imperial inventoried 241 nodes but monitored 117.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeGroup {
    /// The node model for every member of the group.
    pub spec: NodeSpec,
    /// Inventoried quantity.
    pub count: u32,
    /// Quantity that produced usable telemetry during the snapshot
    /// (`monitored ≤ count`).
    pub monitored: u32,
    /// Whether the group appears in the paper's Table 1 hardware summary.
    /// Service/login groups and late additions are inventoried and
    /// monitored but not listed there.
    pub listed_in_summary: bool,
}

impl NodeGroup {
    /// A fully monitored, summary-listed group.
    pub fn new(spec: NodeSpec, count: u32) -> Self {
        NodeGroup {
            spec,
            count,
            monitored: count,
            listed_in_summary: true,
        }
    }

    /// Sets the monitored subset size.
    ///
    /// # Panics
    /// If `monitored > count`.
    pub fn with_monitored(mut self, monitored: u32) -> Self {
        assert!(
            monitored <= self.count,
            "group '{}': monitored {monitored} exceeds inventoried count {}",
            self.spec.name(),
            self.count
        );
        self.monitored = monitored;
        self
    }

    /// Marks the group as absent from the paper's Table 1 summary.
    pub fn unlisted(mut self) -> Self {
        self.listed_in_summary = false;
        self
    }
}

/// One provider site of the federation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Short code used in the paper's tables ("QMUL", "DUR", …).
    pub code: String,
    /// Full institution name.
    pub name: String,
    /// Node groups hosted at the site.
    pub groups: Vec<NodeGroup>,
    /// Site PUE when known from facility measurements; `None` when it must
    /// be estimated (the paper's situation for every site).
    pub measured_pue: Option<Pue>,
}

impl Site {
    /// Creates an empty site.
    pub fn new(code: impl Into<String>, name: impl Into<String>) -> Self {
        Site {
            code: code.into(),
            name: name.into(),
            groups: Vec::new(),
            measured_pue: None,
        }
    }

    /// Adds a node group (builder style).
    pub fn with_group(mut self, group: NodeGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Records a measured PUE for the site.
    pub fn with_measured_pue(mut self, pue: Pue) -> Self {
        self.measured_pue = Some(pue);
        self
    }

    /// Total inventoried nodes at the site.
    pub fn total_nodes(&self) -> u32 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Nodes that produced telemetry during the snapshot.
    pub fn monitored_nodes(&self) -> u32 {
        self.groups.iter().map(|g| g.monitored).sum()
    }

    /// Inventoried nodes with a given role.
    pub fn nodes_with_role(&self, role: NodeRole) -> u32 {
        self.groups
            .iter()
            .filter(|g| g.spec.role() == role)
            .map(|g| g.count)
            .sum()
    }

    /// Monitored nodes whose role counts as a "server" for embodied
    /// amortisation (everything except storage; see DESIGN.md §3).
    pub fn monitored_servers(&self) -> u32 {
        self.groups
            .iter()
            .filter(|g| g.spec.role().counts_as_server())
            .map(|g| g.monitored)
            .sum()
    }

    /// Total embodied carbon of the site's inventoried hardware under the
    /// given factor set.
    pub fn total_embodied(&self, factors: &crate::EmbodiedFactors) -> CarbonMass {
        self.groups
            .iter()
            .map(|g| g.spec.embodied(factors) * f64::from(g.count))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmbodiedFactors, NodeBuilder};
    use iriscast_units::Power;

    fn spec(name: &str, role: NodeRole) -> NodeSpec {
        NodeBuilder::new(name)
            .role(role)
            .cpu("c", 16, 400.0, Power::from_watts(125.0))
            .dram_gb(128.0)
            .ssd_gb(480.0)
            .mainboard_cm2(1_500.0)
            .psus(2, Power::from_watts(750.0))
            .chassis_kg(15.0)
            .nic(10.0)
            .idle_power(Power::from_watts(90.0))
            .max_power(Power::from_watts(400.0))
            .build()
    }

    #[test]
    fn group_invariants() {
        let g = NodeGroup::new(spec("a", NodeRole::Compute), 100).with_monitored(80);
        assert_eq!(g.count, 100);
        assert_eq!(g.monitored, 80);
        assert!(g.listed_in_summary);
        assert!(!g.clone().unlisted().listed_in_summary);
    }

    #[test]
    #[should_panic(expected = "exceeds inventoried count")]
    fn monitored_cannot_exceed_count() {
        let _ = NodeGroup::new(spec("a", NodeRole::Compute), 10).with_monitored(11);
    }

    #[test]
    fn site_aggregation() {
        let site = Site::new("TST", "Test University")
            .with_group(NodeGroup::new(spec("c", NodeRole::Compute), 100).with_monitored(90))
            .with_group(NodeGroup::new(spec("s", NodeRole::Storage), 20))
            .with_group(NodeGroup::new(spec("svc", NodeRole::Service), 4).unlisted());
        assert_eq!(site.total_nodes(), 124);
        assert_eq!(site.monitored_nodes(), 114);
        assert_eq!(site.nodes_with_role(NodeRole::Compute), 100);
        assert_eq!(site.nodes_with_role(NodeRole::Storage), 20);
        assert_eq!(site.monitored_servers(), 94); // storage excluded
    }

    #[test]
    fn site_embodied_scales_with_count() {
        let one = Site::new("A", "a").with_group(NodeGroup::new(spec("c", NodeRole::Compute), 1));
        let ten = Site::new("B", "b").with_group(NodeGroup::new(spec("c", NodeRole::Compute), 10));
        let f = EmbodiedFactors::typical();
        let e1 = one.total_embodied(&f);
        let e10 = ten.total_embodied(&f);
        assert!((e10.kilograms() - 10.0 * e1.kilograms()).abs() < 1e-9);
    }

    #[test]
    fn measured_pue_optional() {
        let s = Site::new("A", "a");
        assert!(s.measured_pue.is_none());
        let s = s.with_measured_pue(Pue::new(1.25).unwrap());
        assert_eq!(s.measured_pue.unwrap().value(), 1.25);
    }
}
