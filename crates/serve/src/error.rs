//! Typed errors for the assessment service.

use iriscast_model::Error as ModelError;
use std::fmt;

/// Result alias for serve-layer operations.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong ingesting into or querying the service.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// A record or query named a site the service has never seen.
    UnknownSite {
        /// The offending site code.
        site: String,
    },
    /// A site was registered twice. Models are fixed at registration —
    /// re-registering mid-stream would silently change the meaning of
    /// every subsequent fold.
    DuplicateSite {
        /// The offending site code.
        site: String,
    },
    /// A tenant-share query named a tenant never registered for the
    /// site.
    UnknownTenant {
        /// The site queried.
        site: String,
        /// The offending tenant name.
        tenant: String,
    },
    /// A tenant-share query against a site with no registered tenants —
    /// there is no attribution key to allocate by.
    NoTenants {
        /// The site queried.
        site: String,
    },
    /// A tenant weight that cannot act as an attribution key: zero,
    /// negative, or non-finite.
    InvalidWeight {
        /// The site the tenant was registered under.
        site: String,
        /// The offending tenant name.
        tenant: String,
        /// The rejected weight.
        weight: f64,
    },
    /// A query against a site that has not folded its first snapshot
    /// yet.
    NoData {
        /// The site queried.
        site: String,
    },
    /// A snapshot whose sequence number was already folded (or is
    /// already waiting in the reorder buffer) — replaying it would
    /// double-count the window.
    StaleSnapshot {
        /// The site the snapshot belongs to.
        site: String,
        /// The replayed sequence number.
        seq: u64,
        /// The next sequence number the site will fold.
        next_seq: u64,
    },
    /// A telemetry snapshot with no usable energy: every measurement
    /// method was dark for the window.
    MissingEnergy {
        /// The site the snapshot belongs to.
        site: String,
        /// The snapshot's sequence number.
        seq: u64,
    },
    /// A retention bound of zero windows — the ensemble must always
    /// keep at least its newest window, or every query surface would
    /// collapse to [`ServeError::NoData`] the moment retention ran.
    InvalidRetention {
        /// The site the bound was set on.
        site: String,
    },
    /// The carbon model rejected the snapshot's assessment (bad axis,
    /// non-positive window, …).
    Model(ModelError),
    /// A wire line that does not parse as its NDJSON record type.
    Wire {
        /// 1-based line number within the NDJSON input.
        line: usize,
        /// The parse failure.
        detail: String,
    },
    /// A socket-transport failure: bind, accept, or connection I/O.
    /// Per-connection I/O errors are isolated to their connection (the
    /// listener keeps serving); this variant surfaces the ones that
    /// stop a client call or the listener itself.
    Transport {
        /// What failed, including the OS error text.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSite { site } => {
                write!(f, "site {site} is not registered with the service")
            }
            ServeError::DuplicateSite { site } => {
                write!(f, "site {site} is already registered")
            }
            ServeError::UnknownTenant { site, tenant } => {
                write!(f, "tenant {tenant} is not registered under site {site}")
            }
            ServeError::NoTenants { site } => {
                write!(f, "site {site} has no registered tenants to attribute to")
            }
            ServeError::InvalidWeight {
                site,
                tenant,
                weight,
            } => write!(
                f,
                "tenant {tenant} under site {site}: weight {weight} is not a \
                 positive finite attribution key"
            ),
            ServeError::NoData { site } => {
                write!(f, "site {site} has not folded any snapshots yet")
            }
            ServeError::StaleSnapshot {
                site,
                seq,
                next_seq,
            } => write!(
                f,
                "site {site}: snapshot seq {seq} replayed (next expected fold \
                 is seq {next_seq})"
            ),
            ServeError::MissingEnergy { site, seq } => write!(
                f,
                "site {site}: snapshot seq {seq} carries no energy estimate \
                 from any measurement method"
            ),
            ServeError::InvalidRetention { site } => {
                write!(f, "site {site}: retention must keep at least one window")
            }
            ServeError::Model(e) => write!(f, "carbon model rejected the snapshot: {e}"),
            ServeError::Wire { line, detail } => {
                write!(f, "wire line {line}: {detail}")
            }
            ServeError::Transport { detail } => {
                write!(f, "socket transport: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ServeError::UnknownSite { site: "KCL".into() };
        assert!(e.to_string().contains("KCL"));
        let e = ServeError::StaleSnapshot {
            site: "KCL".into(),
            seq: 3,
            next_seq: 7,
        };
        assert!(e.to_string().contains("seq 3"));
        assert!(e.to_string().contains("seq 7"));
        let e = ServeError::InvalidWeight {
            site: "KCL".into(),
            tenant: "lsst".into(),
            weight: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        use std::error::Error as _;
        assert!(e.source().is_none());
        let e = ServeError::Model(ModelError::InvalidFraction { value: 2.0 });
        assert!(e.source().is_some());
    }
}
