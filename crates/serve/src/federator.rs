//! Regional federation: many assessment services roll up into one
//! fleet view over the socket wire.
//!
//! Topology: one [`AssessmentService`] per region (its sites are that
//! region's sites), each behind a [`SocketServer`]; a
//! [`FleetFederator`] holds one [`RegionHandle`] per region and pulls
//! every site's [`AssessmentService::export`] over the wire into a
//! [`FleetRollup`] via [`FleetRollup::fold_site`] — the same fold the
//! in-process fleet path uses.
//!
//! [`AssessmentService`]: crate::service::AssessmentService
//! [`AssessmentService::export`]: crate::service::AssessmentService::export
//!
//! ## Bit-for-bit equivalence with a flat service
//!
//! The federated roll-up is bitwise equal to folding the same sites
//! out of one flat service, because every link in the chain is exact:
//!
//! * each site's cumulative energy is summed strictly in `seq` order
//!   inside its service, so it is independent of worker count and of
//!   cross-region arrival interleaving;
//! * the wire writes `f64` with shortest-round-trip formatting, so a
//!   finite energy arrives with the same bits it left with;
//! * sites are folded in canonical order — regions in handle order,
//!   sites in the sorted order the `"sites"` ask returns — which is
//!   the order a flat reference enumerates them in.
//!
//! The property suite pins federated ≡ flat at 1 and 16 ingest
//! workers under shuffled cross-region arrival.

use crate::error::{ServeError, ServeResult};
use crate::transport::{SocketClient, SocketServer};
use crate::wire::QueryRequest;
use iriscast_model::federation::{FleetRollup, SiteRollup};
use iriscast_telemetry::EnergyByMethod;
use iriscast_units::{Energy, Period};
use std::path::PathBuf;

/// How a federator reaches one region's socket server.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

/// One region of the federation: its short code and its service's
/// socket address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionHandle {
    /// Region short code, e.g. `"EU-W"`.
    pub code: String,
    target: Target,
}

impl RegionHandle {
    /// A region served over TCP at `addr` (`ip:port`).
    pub fn tcp(code: impl Into<String>, addr: impl Into<String>) -> Self {
        RegionHandle {
            code: code.into(),
            target: Target::Tcp(addr.into()),
        }
    }

    /// A region served over a Unix-domain socket at `path`.
    pub fn unix(code: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        RegionHandle {
            code: code.into(),
            target: Target::Unix(path.into()),
        }
    }

    /// A region served by a live [`SocketServer`] on this machine
    /// (TCP or Unix, whichever it bound).
    pub fn of(code: impl Into<String>, server: &SocketServer) -> Self {
        let addr = server.addr();
        if addr.contains(':') {
            RegionHandle::tcp(code, addr)
        } else {
            RegionHandle::unix(code, addr)
        }
    }

    fn connect(&self) -> ServeResult<SocketClient> {
        match &self.target {
            Target::Tcp(addr) => SocketClient::connect_tcp(addr),
            Target::Unix(path) => SocketClient::connect_unix(path),
        }
    }
}

/// Builds the [`SiteRollup`] one exported site contributes to the
/// fleet fold. Shared by the wire path ([`FleetFederator::federate`])
/// and in-process references, so both construct identical rollups:
/// the service's cumulative best-estimate energy stands in for both
/// the measured (PDU slot — the serve tier has exactly one estimate,
/// already method-prioritised at snapshot time) and truth columns.
pub fn site_rollup(region: u32, servers: u32, energy_kwh: f64) -> SiteRollup {
    let energy = Energy::from_kilowatt_hours(energy_kwh);
    SiteRollup {
        region,
        nodes: servers,
        energies: EnergyByMethod {
            pdu: Some(energy),
            ..EnergyByMethod::default()
        },
        truth: energy,
    }
}

/// Pulls N regional assessment services into one [`FleetRollup`] over
/// the socket wire.
#[derive(Clone, Debug)]
pub struct FleetFederator {
    regions: Vec<RegionHandle>,
}

impl FleetFederator {
    /// A federator over `regions`, folded in the given order.
    pub fn new(regions: Vec<RegionHandle>) -> Self {
        FleetFederator { regions }
    }

    /// The region codes, in fold order.
    pub fn region_codes(&self) -> Vec<String> {
        self.regions.iter().map(|r| r.code.clone()).collect()
    }

    /// One federation sweep: connects to every region, enumerates its
    /// sites (sorted — the canonical order), pulls each site's export
    /// and folds it. Any transport failure or `ok: false` reply aborts
    /// the sweep with a typed error; a partial roll-up is never
    /// returned.
    pub fn federate(&self, period: Period) -> ServeResult<FleetRollup> {
        let mut rollup = FleetRollup::new(self.region_codes(), period);
        for (index, region) in self.regions.iter().enumerate() {
            let mut client = region.connect()?;
            let sites = client
                .query(&QueryRequest::sites())?
                .into_result("sites")?
                .sites
                .unwrap_or_default();
            for site in sites {
                let reply = client
                    .query(&QueryRequest::export(&site))?
                    .into_result("export")?;
                let (Some(energy_kwh), Some(servers)) = (reply.energy_kwh, reply.servers) else {
                    return Err(ServeError::Transport {
                        detail: format!("export reply for {site} is missing fields"),
                    });
                };
                rollup.fold_site(site_rollup(
                    index as u32,
                    u32::try_from(servers).unwrap_or(u32::MAX),
                    energy_kwh,
                ));
            }
        }
        Ok(rollup)
    }
}
