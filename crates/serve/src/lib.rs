//! # iriscast-serve — the live assessment service
//!
//! The paper applies its methodology as a one-shot batch study; this
//! crate is the ROADMAP's production counterpart: a persistent
//! **ingest → fold → query** pipeline over the same carbon model, fed
//! by telemetry snapshots instead of a single measured window.
//!
//! ## Pipeline
//!
//! 1. **Ingest** — a `SnapshotSampler` on the event engine (or any
//!    producer) emits one [`SnapshotRecord`] per closed sampling
//!    window: site, window, sequence number, best-estimate energy. On
//!    the wire that is one NDJSON line per record
//!    ([`SnapshotRecord::parse_ndjson`]).
//! 2. **Fold** — each record is evaluated under its site's registered
//!    [`SiteModel`] (fixed PUE/embodied/lifespan axes, per-window CI
//!    samples) into a block of scenario rows, then folded into the
//!    site's growing [`SpaceResults`] ensemble via `extend_rows` — the
//!    incremental path that keeps the cached sorted view warm by
//!    galloping merge instead of re-sorting. Evaluation parallelises
//!    freely ([`AssessmentService::ingest_batch`]); folds are
//!    serialized per site in sequence order through a reorder buffer,
//!    so the resulting state is **bit-identical at every worker
//!    count** — the property suite pins 1 ≡ 16 workers against a
//!    sequential batch recompute.
//! 3. **Query** — [`AssessmentService::envelope`] /
//!    [`AssessmentService::percentile`] / [`AssessmentService::marginals`] /
//!    [`AssessmentService::tenant_share`] answer from the warm views:
//!    a quantile between folds is O(1) and allocation-free. Queries
//!    arrive and leave as NDJSON too
//!    ([`AssessmentService::serve_ndjson`]).
//!
//! ## Bounded staleness
//!
//! The live loop ([`AssessmentService::spawn_ingest`]) gives this
//! contract, with `B` the staleness bound passed at spawn:
//!
//! * **Freshness** — a snapshot is folded as soon as it is received;
//!   nothing batches or defers. A query issued after a record's fold
//!   completes observes it; replies carry the fold watermark
//!   (`folded`, [`Watermark`]) so a consumer can tell *which* prefix
//!   of the stream it observed.
//! * **Liveness within `B`** — the ingest thread never blocks longer
//!   than `B` waiting for traffic: `recv_timeout(B)` wakes it to bump
//!   the service heartbeat ([`AssessmentService::heartbeats`]) and
//!   notice disconnect. A heartbeat (or watermark advance) older than
//!   `B` plus scheduling slack therefore means the ingest thread is
//!   dead or wedged — staleness is *detectable* within one bound, not
//!   discovered at the next query.
//! * **In-order visibility** — folds apply strictly in per-site
//!   sequence order. A query never observes window *k+1* without
//!   window *k*; out-of-order arrivals park in the reorder buffer and
//!   are reported via [`Watermark::pending`].
//!
//! ## Multi-tenant attribution
//!
//! [`AssessmentService::tenant_share`] allocates a site's footprint to
//! the services sharing it by normalized weights — the
//! Bergmark–Coroamă Part II rule: shares are mutually exclusive and
//! collectively exhaustive (they sum to 1), so no emission is counted
//! twice and none is orphaned.
//!
//! ## Scale-out
//!
//! Three further pieces take the single in-process service to a
//! deployable topology:
//!
//! * **Retention** — [`AssessmentService::set_retention`] bounds the
//!   queryable ensemble to a sliding window of the last *k* folded
//!   windows, evicting via the exact `retract_rows` inverse of the
//!   fold; the cumulative energy ledger is *not* rewound, so
//!   federation exports are retention-independent.
//! * **Transport** — [`transport`] frames the NDJSON codec over TCP
//!   and Unix-domain sockets ([`AssessmentService::serve_tcp`] /
//!   [`AssessmentService::serve_unix`]) with per-connection error
//!   isolation and graceful drain; [`spawn_record_feed`] bridges a
//!   socket to the [`AssessmentService::spawn_ingest`] channel.
//! * **Federation** — a [`FleetFederator`] pulls per-site
//!   [`SiteExport`]s from regional services over the wire and folds
//!   them into a fleet-wide `FleetRollup`, bit-for-bit equal to one
//!   flat service hosting every site (see [`federator`] for the
//!   three-link chain that makes that exact).
//!
//! [`SpaceResults`]: iriscast_model::engine::SpaceResults

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod federator;
pub mod record;
pub mod service;
pub mod transport;
pub mod wire;

pub use error::{ServeError, ServeResult};
pub use federator::{FleetFederator, RegionHandle};
pub use record::SnapshotRecord;
pub use service::{
    AssessmentService, IngestHandle, IngestStats, SiteExport, SiteModel, TenantShare, Watermark,
};
pub use transport::{spawn_record_feed, FeedStats, SocketClient, SocketServer, TransportStats};
pub use wire::{MarginalWire, QueryReply, QueryRequest};
