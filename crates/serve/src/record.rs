//! The ingest side of the wire: one NDJSON line per snapshot window.
//!
//! A [`SnapshotRecord`] is the serialized form of one closed sampling
//! window — what a `SnapshotSampler` on the event engine emits, reduced
//! to the fields the carbon model needs (site, window, best-estimate
//! energy) plus the sequence number the fold order is keyed on. One
//! record per line, framed by the serde_json NDJSON helpers, so a live
//! feed is a plain append-only byte stream.

use crate::error::{ServeError, ServeResult};
use iriscast_telemetry::SiteTelemetryResult;
use iriscast_units::SimDuration;
use serde::{Deserialize, Serialize};

/// One snapshot window on the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Site short code (must be registered with the service).
    pub site: String,
    /// Per-site snapshot sequence number, 0-based and contiguous.
    /// Folds are applied in `seq` order regardless of arrival order.
    pub seq: u64,
    /// Window start, seconds since the simulation epoch.
    pub window_start_s: i64,
    /// Window end (exclusive), seconds since the simulation epoch.
    pub window_end_s: i64,
    /// Best-estimate IT energy for the window, kWh (the paper's
    /// Facility → PDU → IPMI → Turbostat priority).
    pub energy_kwh: f64,
}

impl SnapshotRecord {
    /// Reduces a collected telemetry window to its wire form.
    ///
    /// Uses the result's best-estimate energy;
    /// [`ServeError::MissingEnergy`] if every method was dark for the
    /// window.
    pub fn from_telemetry(seq: u64, result: &SiteTelemetryResult) -> ServeResult<Self> {
        let energy = result
            .best_estimate()
            .ok_or_else(|| ServeError::MissingEnergy {
                site: result.site_code.clone(),
                seq,
            })?;
        Ok(SnapshotRecord {
            site: result.site_code.clone(),
            seq,
            window_start_s: result.period.start().as_secs(),
            window_end_s: result.period.end().as_secs(),
            energy_kwh: energy.kilowatt_hours(),
        })
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_secs(self.window_end_s - self.window_start_s)
    }

    /// Parses an NDJSON ingest stream, one record per line; blank lines
    /// are skipped. All-or-nothing: the first malformed line fails the
    /// whole batch with its 1-based line number, so a half-ingested
    /// feed can't masquerade as a complete one.
    pub fn parse_ndjson(input: &str) -> ServeResult<Vec<SnapshotRecord>> {
        let mut out = Vec::new();
        for (idx, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: SnapshotRecord =
                serde_json::from_str(line).map_err(|e| ServeError::Wire {
                    line: idx + 1,
                    detail: e.to_string(),
                })?;
            out.push(record);
        }
        Ok(out)
    }

    /// Frames records as NDJSON, one line each.
    pub fn write_ndjson(records: &[SnapshotRecord], out: &mut impl std::io::Write) {
        for record in records {
            serde_json::ndjson::to_writer(&mut *out, record)
                .expect("snapshot records serialize infallibly");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> SnapshotRecord {
        SnapshotRecord {
            site: "CAM".into(),
            seq,
            window_start_s: (seq as i64) * 21_600,
            window_end_s: (seq as i64 + 1) * 21_600,
            energy_kwh: 4_800.0 + seq as f64,
        }
    }

    #[test]
    fn ndjson_round_trip() {
        let records = vec![record(0), record(1), record(2)];
        let mut buf = Vec::new();
        SnapshotRecord::write_ndjson(&records, &mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = SnapshotRecord::parse_ndjson(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let text = "{\"site\":\"CAM\",\"seq\":0,\"window_start_s\":0,\
                    \"window_end_s\":60,\"energy_kwh\":1.0}\nnot json\n";
        let err = SnapshotRecord::parse_ndjson(text).unwrap_err();
        assert!(matches!(err, ServeError::Wire { line: 2, .. }));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buf = Vec::new();
        SnapshotRecord::write_ndjson(&[record(7)], &mut buf);
        let text = format!("\n{}\n", String::from_utf8(buf).unwrap());
        let back = SnapshotRecord::parse_ndjson(&text).unwrap();
        assert_eq!(back, vec![record(7)]);
    }
}
