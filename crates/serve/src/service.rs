//! The assessment service: per-site incremental fold state, the ingest
//! paths that grow it, and the query surface that reads it warm.

use crate::error::{ServeError, ServeResult};
use crate::record::SnapshotRecord;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use iriscast_model::engine::{Assessment, Envelope, Marginal, SpaceResults, TotalsSummary};
use iriscast_model::space::{AxisId, ScenarioAxis};
use iriscast_units::{Bounds, CarbonMass, Energy};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The scenario template one site's snapshots are evaluated under: the
/// axes that stay fixed across windows, plus the carbon-intensity
/// scenario samples applied *per window*.
///
/// Every snapshot of a site is evaluated with the same PUE, embodied
/// and lifespan axes (the [`SpaceResults::extend_rows`] precondition);
/// the CI samples become that window's block of the growing ensemble.
/// The model is fixed at registration — changing it mid-stream would
/// silently change the meaning of every subsequent fold.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteModel {
    /// Fleet size the embodied charge is amortised over.
    pub servers: u32,
    /// Carbon-intensity scenario samples applied to each window, g/kWh.
    pub ci_grams_per_kwh: Vec<f64>,
    /// PUE scenario samples (fixed across windows).
    pub pue_values: Vec<f64>,
    /// Per-server embodied-carbon scenario samples, kg (fixed).
    pub embodied_kg: Vec<f64>,
    /// Hardware lifespan scenario samples, years (fixed).
    pub lifespans_years: Vec<u32>,
}

impl SiteModel {
    /// The paper's Table 3/4 parameterisation scaled to `servers`
    /// machines: CI references, PUE low/medium/high, the server
    /// embodied bounds (low/mid/high), 3–7 year lifespans.
    pub fn paper(servers: u32) -> Self {
        let ci = iriscast_model::paper::ci_references();
        let pue = iriscast_model::paper::pue_table3();
        let embodied = iriscast_model::paper::server_embodied_bounds();
        let mid = (embodied.lo.kilograms() + embodied.hi.kilograms()) / 2.0;
        SiteModel {
            servers,
            ci_grams_per_kwh: vec![
                ci.low.grams_per_kwh(),
                ci.mid.grams_per_kwh(),
                ci.high.grams_per_kwh(),
            ],
            pue_values: vec![pue.low.value(), pue.mid.value(), pue.high.value()],
            embodied_kg: vec![embodied.lo.kilograms(), mid, embodied.hi.kilograms()],
            lifespans_years: iriscast_model::paper::LIFESPANS_YEARS.to_vec(),
        }
    }

    /// Points each snapshot contributes to the site's ensemble.
    pub fn points_per_snapshot(&self) -> usize {
        self.ci_grams_per_kwh.len()
            * self.pue_values.len()
            * self.embodied_kg.len()
            * self.lifespans_years.len()
    }

    /// Builds the one-window assessment for a record: the record's
    /// energy and window, this template's axes.
    fn assessment_for(&self, record: &SnapshotRecord) -> ServeResult<Assessment> {
        let embodied: Vec<CarbonMass> = self
            .embodied_kg
            .iter()
            .map(|&kg| CarbonMass::from_kilograms(kg))
            .collect();
        Ok(Assessment::builder()
            .energy(Energy::from_kilowatt_hours(record.energy_kwh))
            .window(record.window())
            .ci_grams_per_kwh(&self.ci_grams_per_kwh)
            .pue_values(&self.pue_values)
            .embodied_axis(ScenarioAxis::new("embodied", embodied)?)
            .lifespans_years(&self.lifespans_years)
            .servers(self.servers)
            .build()?)
    }

    /// Evaluates one record to its block of scenario rows.
    pub fn evaluate(&self, record: &SnapshotRecord) -> ServeResult<SpaceResults> {
        Ok(self.assessment_for(record)?.evaluate_space())
    }
}

/// One tenant's attribution key under a site.
#[derive(Clone, Debug, PartialEq)]
struct Tenant {
    name: String,
    weight: f64,
}

/// Per-site fold state: the growing ensemble plus the reorder buffer
/// that serializes out-of-order arrivals back into `seq` order.
#[derive(Debug)]
struct SiteState {
    model: SiteModel,
    results: Option<SpaceResults>,
    /// Next sequence number to fold.
    next_seq: u64,
    /// Evaluated blocks that arrived ahead of `next_seq`, keyed by seq;
    /// the value carries the block, its window end, and its energy.
    pending: BTreeMap<u64, (SpaceResults, i64, f64)>,
    /// End of the latest folded window, seconds since the epoch.
    last_window_end_s: Option<i64>,
    /// Cumulative best-estimate energy across every folded window, kWh.
    /// Summed strictly in `seq` order, so the figure is bit-identical
    /// at any worker count — and it **survives eviction**: retention
    /// bounds the queryable scenario ensemble, not the site's energy
    /// ledger (the federation tier rolls this up fleet-wide).
    energy_kwh: f64,
    /// Sliding-window retention: keep at most this many folded windows
    /// in the ensemble, evicting the oldest. `None` = keep forever.
    retain_windows: Option<usize>,
    /// Windows evicted by retention so far.
    evicted: u64,
    tenants: Vec<Tenant>,
}

impl SiteState {
    /// Drains the reorder buffer: folds every block whose turn has
    /// come, in strictly increasing `seq` order. This is the only
    /// place rows enter `results`, which is what makes the pipeline
    /// bit-identical at any worker count — evaluation may happen in
    /// any order on any thread, but folds are applied in emission
    /// order. Retention runs here too, after every fold, so the
    /// ensemble never holds more than `retain_windows` windows between
    /// any two observable states.
    fn fold_ready(&mut self) -> ServeResult<()> {
        while let Some((block, window_end_s, energy_kwh)) = self.pending.remove(&self.next_seq) {
            match self.results.as_mut() {
                None => self.results = Some(block),
                Some(base) => base.extend_rows(&block)?,
            }
            self.last_window_end_s = Some(window_end_s);
            self.energy_kwh += energy_kwh;
            self.next_seq += 1;
            self.evict_to_retention()?;
        }
        Ok(())
    }

    /// Evicts the oldest windows until the ensemble fits the retention
    /// bound. Each folded window owns one block of the model's CI
    /// samples at the *front* of the ensemble (folds append at the
    /// back, in seq order), so eviction is `retract_rows` of exactly
    /// `ci` samples per window — the documented exact inverse of the
    /// fold, leaving state bit-identical to never having ingested the
    /// evicted windows.
    fn evict_to_retention(&mut self) -> ServeResult<()> {
        let Some(retain) = self.retain_windows else {
            return Ok(());
        };
        let ci_per_window = self.model.ci_grams_per_kwh.len();
        while (self.next_seq - self.evicted) as usize > retain {
            let results = self
                .results
                .as_mut()
                .expect("a site with folded windows has results");
            results.retract_rows(ci_per_window)?;
            self.evicted += 1;
        }
        Ok(())
    }
}

/// Staleness observables for one site: what a monitor needs to decide
/// whether a query answer is fresh enough.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watermark {
    /// Snapshots folded into the ensemble so far.
    pub folded: u64,
    /// Evaluated snapshots waiting in the reorder buffer (a sequence
    /// gap upstream, or evaluation still in flight).
    pub pending: usize,
    /// End of the latest folded window, seconds since the epoch.
    pub last_window_end_s: Option<i64>,
    /// Scenario points currently answering queries.
    pub points: usize,
    /// Windows evicted by sliding-window retention so far; `folded`
    /// still counts every window ever folded, so the ensemble currently
    /// holds `folded - evicted` windows.
    pub evicted: u64,
}

/// What the federation tier pulls from a site: the inputs to
/// [`iriscast_model::FleetRollup::fold_site`], plus the staleness
/// counters a federator needs to decide the export is complete.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteExport {
    /// Cumulative best-estimate energy across every folded window,
    /// kWh. Summed in `seq` order (bit-identical at any worker count)
    /// and unaffected by retention.
    pub energy_kwh: f64,
    /// Fleet size the site's model amortises over.
    pub servers: u32,
    /// Windows folded so far.
    pub folded: u64,
    /// Windows evicted by retention so far.
    pub evicted: u64,
}

/// One tenant's allocated slice of a site's footprint, per the
/// Bergmark–Coroamă Part II rule (see
/// [`AssessmentService::tenant_share`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TenantShare {
    /// The tenant.
    pub tenant: String,
    /// The tenant's normalized allocation key, `weight / Σ weights`.
    pub share: f64,
    /// The site's total-carbon envelope scaled by `share`.
    pub total: Bounds<CarbonMass>,
    /// The site's mean total scaled by `share`.
    pub mean_total: CarbonMass,
}

/// Counters an ingest thread hands back when its feed disconnects.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngestStats {
    /// Snapshots evaluated and handed to the fold.
    pub folded: u64,
    /// Snapshots rejected (unknown site, stale seq, model refusal).
    pub rejected: u64,
    /// Timeout wakeups with no traffic — each one is a heartbeat
    /// proving the thread was alive within the staleness bound.
    pub idle_wakeups: u64,
    /// The last rejection, for diagnostics.
    pub last_error: Option<String>,
}

/// Handle to a live ingest thread; join it after dropping (or
/// disconnecting) every sender to collect its [`IngestStats`].
#[derive(Debug)]
pub struct IngestHandle {
    join: JoinHandle<IngestStats>,
}

impl IngestHandle {
    /// Waits for the ingest thread to observe channel disconnect and
    /// exit, returning its counters.
    pub fn join(self) -> IngestStats {
        self.join.join().expect("ingest thread never panics")
    }
}

#[derive(Debug, Default)]
struct Inner {
    sites: HashMap<String, SiteState>,
    /// Timeout wakeups across every ingest thread — the liveness
    /// heartbeat behind the bounded-staleness contract.
    heartbeats: u64,
}

/// The live assessment service: registered site models, per-site
/// incremental ensembles, and the warm query surface over them.
///
/// Cloning is cheap and shares state (an `Arc`), which is how the
/// background ingest thread and the query side hold the same service.
/// Concurrency model: folds take the write lock briefly per snapshot;
/// queries share the read lock and answer from the cached sorted views,
/// which [`SpaceResults::extend_rows`] keeps warm across folds — a
/// quantile between folds is O(1) and allocation-free.
#[derive(Clone, Debug, Default)]
pub struct AssessmentService {
    inner: Arc<RwLock<Inner>>,
}

impl AssessmentService {
    /// An empty service; register sites before ingesting.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("service lock poisoned")
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("service lock poisoned")
    }

    /// Registers a site's scenario template. The model is fixed for
    /// the service's lifetime; [`ServeError::DuplicateSite`] on a
    /// repeat.
    pub fn register_site(&self, site: impl Into<String>, model: SiteModel) -> ServeResult<()> {
        let site = site.into();
        let mut inner = self.write();
        if inner.sites.contains_key(&site) {
            return Err(ServeError::DuplicateSite { site });
        }
        inner.sites.insert(
            site,
            SiteState {
                model,
                results: None,
                next_seq: 0,
                pending: BTreeMap::new(),
                last_window_end_s: None,
                energy_kwh: 0.0,
                retain_windows: None,
                evicted: 0,
                tenants: Vec::new(),
            },
        );
        Ok(())
    }

    /// Registers a tenant under a site with its attribution weight
    /// (any positive finite usage measure — node-seconds, booked
    /// capacity — consistent across the site's tenants). Repeat
    /// registration replaces the weight.
    pub fn register_tenant(
        &self,
        site: &str,
        tenant: impl Into<String>,
        weight: f64,
    ) -> ServeResult<()> {
        let tenant = tenant.into();
        let mut inner = self.write();
        let state = inner
            .sites
            .get_mut(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        if !(weight.is_finite() && weight > 0.0) {
            return Err(ServeError::InvalidWeight {
                site: site.into(),
                tenant,
                weight,
            });
        }
        match state.tenants.iter_mut().find(|t| t.name == tenant) {
            Some(t) => t.weight = weight,
            None => state.tenants.push(Tenant {
                name: tenant,
                weight,
            }),
        }
        Ok(())
    }

    /// Looks up the model a record will be evaluated under.
    fn model_of(&self, site: &str) -> ServeResult<SiteModel> {
        self.read()
            .sites
            .get(site)
            .map(|s| s.model.clone())
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })
    }

    /// Hands one evaluated block to its site's reorder buffer and
    /// folds everything whose turn has come.
    fn fold_evaluated(&self, record: &SnapshotRecord, block: SpaceResults) -> ServeResult<()> {
        let mut inner = self.write();
        let state = inner
            .sites
            .get_mut(&record.site)
            .ok_or_else(|| ServeError::UnknownSite {
                site: record.site.clone(),
            })?;
        if record.seq < state.next_seq || state.pending.contains_key(&record.seq) {
            return Err(ServeError::StaleSnapshot {
                site: record.site.clone(),
                seq: record.seq,
                next_seq: state.next_seq,
            });
        }
        state
            .pending
            .insert(record.seq, (block, record.window_end_s, record.energy_kwh));
        state.fold_ready()
    }

    /// Evaluates and folds one snapshot, synchronously.
    pub fn ingest(&self, record: &SnapshotRecord) -> ServeResult<()> {
        let model = self.model_of(&record.site)?;
        let block = model.evaluate(record)?;
        self.fold_evaluated(record, block)
    }

    /// Ingests a batch with `workers` parallel evaluation threads
    /// (1 = inline). Evaluation — the expensive part — is distributed;
    /// folds are applied through the per-site reorder buffer in `seq`
    /// order, so the resulting state is **bit-identical at every worker
    /// count** (the property suite pins 1 ≡ 16). Returns the number of
    /// snapshots folded.
    pub fn ingest_batch(&self, records: &[SnapshotRecord], workers: usize) -> ServeResult<usize> {
        // Resolve every model up front so an unknown site fails the
        // batch before any evaluation work starts.
        let jobs: Vec<(SnapshotRecord, SiteModel)> = records
            .iter()
            .map(|r| Ok((r.clone(), self.model_of(&r.site)?)))
            .collect::<ServeResult<_>>()?;
        if workers <= 1 {
            for (record, model) in &jobs {
                let block = model.evaluate(record)?;
                self.fold_evaluated(record, block)?;
            }
            return Ok(records.len());
        }
        let (job_tx, job_rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        for job in jobs {
            job_tx.send(job).expect("receiver alive");
        }
        drop(job_tx);
        thread::scope(|s| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                s.spawn(move || {
                    while let Ok((record, model)) = job_rx.recv() {
                        let block = model.evaluate(&record);
                        if done_tx.send((record, block)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);
            // Fold in arrival order — the reorder buffer restores seq
            // order per site, whatever the thread interleaving did.
            while let Ok((record, block)) = done_rx.recv() {
                self.fold_evaluated(&record, block?)?;
            }
            Ok::<(), ServeError>(())
        })?;
        Ok(records.len())
    }

    /// Spawns the live ingest thread: a loop over
    /// `recv_timeout(staleness)` that evaluates and folds each arriving
    /// record, and on every timeout bumps the service heartbeat instead
    /// of blocking indefinitely — the mechanism behind the
    /// bounded-staleness contract (see the crate docs). Rejected
    /// records are counted, not fatal; the thread exits when every
    /// sender is dropped.
    pub fn spawn_ingest(&self, rx: Receiver<SnapshotRecord>, staleness: Duration) -> IngestHandle {
        let service = self.clone();
        let join = thread::Builder::new()
            .name("iriscast-serve-ingest".into())
            .spawn(move || {
                let mut stats = IngestStats::default();
                loop {
                    match rx.recv_timeout(staleness) {
                        Ok(record) => match service.ingest(&record) {
                            Ok(()) => stats.folded += 1,
                            Err(e) => {
                                stats.rejected += 1;
                                stats.last_error = Some(e.to_string());
                            }
                        },
                        Err(RecvTimeoutError::Timeout) => {
                            stats.idle_wakeups += 1;
                            service.write().heartbeats += 1;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                stats
            })
            .expect("spawn ingest thread");
        IngestHandle { join }
    }

    /// Parses an NDJSON ingest stream and folds it with `workers`
    /// evaluation threads. Returns the number of snapshots folded.
    pub fn ingest_ndjson(&self, input: &str, workers: usize) -> ServeResult<usize> {
        let records = SnapshotRecord::parse_ndjson(input)?;
        self.ingest_batch(&records, workers)
    }

    /// Timeout heartbeats across every ingest thread so far.
    pub fn heartbeats(&self) -> u64 {
        self.read().heartbeats
    }

    fn with_results<T>(
        &self,
        site: &str,
        f: impl FnOnce(&SpaceResults) -> ServeResult<T>,
    ) -> ServeResult<T> {
        let inner = self.read();
        let state = inner
            .sites
            .get(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        let results = state
            .results
            .as_ref()
            .ok_or_else(|| ServeError::NoData { site: site.into() })?;
        f(results)
    }

    /// The site's joint active/embodied/total envelope.
    pub fn envelope(&self, site: &str) -> ServeResult<Envelope> {
        self.with_results(site, |r| Ok(r.envelope()))
    }

    /// Linear-interpolated percentile of the site's total column,
    /// `q ∈ [0, 1]`. Warm after the first call: answered from the
    /// cached sorted view that folds keep up to date.
    pub fn percentile(&self, site: &str, q: f64) -> ServeResult<CarbonMass> {
        self.with_results(site, |r| Ok(r.percentile(q)?))
    }

    /// Five-number-plus-mean summary of the site's totals.
    pub fn summary(&self, site: &str) -> ServeResult<TotalsSummary> {
        self.with_results(site, |r| Ok(r.summary()?))
    }

    /// Grouped marginals along one axis of the site's ensemble. Note
    /// that the CI axis grows by one block per folded snapshot, so its
    /// marginals are *per window-sample*; the three inner axes keep
    /// their registered lengths.
    pub fn marginals(&self, site: &str, axis: AxisId) -> ServeResult<Vec<Marginal>> {
        self.with_results(site, |r| Ok(r.marginals(axis)))
    }

    /// One tenant's allocated slice of the site's footprint.
    ///
    /// Attribution follows the Bergmark–Coroamă Part II rule for many
    /// services sharing one infrastructure: each tenant receives the
    /// fraction `weight / Σ weights` of the site's footprint, so the
    /// allocation is *mutually exclusive* (shares are disjoint) and
    /// *collectively exhaustive* (shares sum to 1 — no double counting
    /// and no orphaned emissions).
    pub fn tenant_share(&self, site: &str, tenant: &str) -> ServeResult<TenantShare> {
        let inner = self.read();
        let state = inner
            .sites
            .get(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        if state.tenants.is_empty() {
            return Err(ServeError::NoTenants { site: site.into() });
        }
        let total_weight: f64 = state.tenants.iter().map(|t| t.weight).sum();
        let t = state
            .tenants
            .iter()
            .find(|t| t.name == tenant)
            .ok_or_else(|| ServeError::UnknownTenant {
                site: site.into(),
                tenant: tenant.into(),
            })?;
        let results = state
            .results
            .as_ref()
            .ok_or_else(|| ServeError::NoData { site: site.into() })?;
        let share = t.weight / total_weight;
        let env = results.envelope();
        Ok(TenantShare {
            tenant: t.name.clone(),
            share,
            total: Bounds::new(env.total.lo * share, env.total.hi * share),
            mean_total: results.mean_total() * share,
        })
    }

    /// Every tenant's slice of the site, in registration order — the
    /// collectively-exhaustive allocation table.
    pub fn tenant_shares(&self, site: &str) -> ServeResult<Vec<TenantShare>> {
        let names: Vec<String> = {
            let inner = self.read();
            let state = inner
                .sites
                .get(site)
                .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
            state.tenants.iter().map(|t| t.name.clone()).collect()
        };
        names
            .iter()
            .map(|name| self.tenant_share(site, name))
            .collect()
    }

    /// The site's staleness observables.
    pub fn watermark(&self, site: &str) -> ServeResult<Watermark> {
        let inner = self.read();
        let state = inner
            .sites
            .get(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        Ok(Watermark {
            folded: state.next_seq,
            pending: state.pending.len(),
            last_window_end_s: state.last_window_end_s,
            points: state.results.as_ref().map_or(0, SpaceResults::len),
            evicted: state.evicted,
        })
    }

    /// Bounds a site's ensemble to its most recent `windows` folded
    /// windows, evicting the oldest as new ones fold in — the
    /// sliding-window retention policy. Eviction is *exact*:
    /// [`SpaceResults::retract_rows`] is the bitwise inverse of the
    /// fold, so a service that kept windows `k..n` answers every query
    /// with the same bits as one that only ever saw `k..n` (the
    /// property suite pins this). `windows` must be at least 1;
    /// tightening the bound below the current backlog evicts
    /// immediately. Cumulative energy ([`Watermark::folded`] and the
    /// federation export) is deliberately *not* rewound — retention
    /// bounds the scenario ensemble, not the site's energy ledger.
    pub fn set_retention(&self, site: &str, windows: usize) -> ServeResult<()> {
        if windows == 0 {
            return Err(ServeError::InvalidRetention { site: site.into() });
        }
        let mut inner = self.write();
        let state = inner
            .sites
            .get_mut(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        state.retain_windows = Some(windows);
        state.evict_to_retention()
    }

    /// The site names registered so far, sorted — the canonical
    /// enumeration order the federation tier folds sites in.
    pub fn sites(&self) -> Vec<String> {
        let inner = self.read();
        let mut names: Vec<String> = inner.sites.keys().cloned().collect();
        names.sort();
        names
    }

    /// Cumulative best-estimate energy folded for a site, kWh — summed
    /// strictly in `seq` order and unaffected by retention.
    pub fn site_energy_kwh(&self, site: &str) -> ServeResult<f64> {
        Ok(self.export(site)?.energy_kwh)
    }

    /// The site's federation export: everything the fleet tier needs
    /// to fold this site into a [`iriscast_model::FleetRollup`].
    pub fn export(&self, site: &str) -> ServeResult<SiteExport> {
        let inner = self.read();
        let state = inner
            .sites
            .get(site)
            .ok_or_else(|| ServeError::UnknownSite { site: site.into() })?;
        Ok(SiteExport {
            energy_kwh: state.energy_kwh,
            servers: state.model.servers,
            folded: state.next_seq,
            evicted: state.evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn model() -> SiteModel {
        SiteModel {
            servers: 100,
            ci_grams_per_kwh: vec![50.0, 150.0, 250.0],
            pue_values: vec![1.1, 1.3, 1.58],
            embodied_kg: vec![400.0, 900.0, 1_300.0],
            lifespans_years: vec![3, 5, 7],
        }
    }

    fn record(seq: u64, energy_kwh: f64) -> SnapshotRecord {
        SnapshotRecord {
            site: "CAM".into(),
            seq,
            window_start_s: (seq as i64) * 21_600,
            window_end_s: (seq as i64 + 1) * 21_600,
            energy_kwh,
        }
    }

    /// The sequential reference: evaluate in seq order, extend_rows by
    /// hand.
    fn reference(records: &[SnapshotRecord]) -> SpaceResults {
        let m = model();
        let mut base: Option<SpaceResults> = None;
        let mut sorted = records.to_vec();
        sorted.sort_by_key(|r| r.seq);
        for r in &sorted {
            let block = m.evaluate(r).unwrap();
            match base.as_mut() {
                None => base = Some(block),
                Some(b) => b.extend_rows(&block).unwrap(),
            }
        }
        base.unwrap()
    }

    #[test]
    fn out_of_order_arrival_folds_in_seq_order() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let records = [record(0, 4_800.0), record(1, 5_100.0), record(2, 4_650.0)];
        // Arrive 2, 0, 1.
        for i in [2usize, 0, 1] {
            service.ingest(&records[i]).unwrap();
        }
        let w = service.watermark("CAM").unwrap();
        assert_eq!(w.folded, 3);
        assert_eq!(w.pending, 0);
        assert_eq!(w.last_window_end_s, Some(3 * 21_600));
        let expected = reference(&records);
        let got = service.percentile("CAM", 0.5).unwrap();
        assert_eq!(
            got.kilograms().to_bits(),
            expected.percentile(0.5).unwrap().kilograms().to_bits()
        );
        assert_eq!(service.envelope("CAM").unwrap(), expected.envelope());
    }

    #[test]
    fn gap_parks_in_the_reorder_buffer_until_filled() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.ingest(&record(0, 4_800.0)).unwrap();
        service.ingest(&record(2, 4_650.0)).unwrap();
        let w = service.watermark("CAM").unwrap();
        assert_eq!((w.folded, w.pending), (1, 1));
        service.ingest(&record(1, 5_100.0)).unwrap();
        let w = service.watermark("CAM").unwrap();
        assert_eq!((w.folded, w.pending), (3, 0));
    }

    #[test]
    fn replayed_seq_is_rejected() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.ingest(&record(0, 4_800.0)).unwrap();
        let err = service.ingest(&record(0, 4_800.0)).unwrap_err();
        assert!(matches!(err, ServeError::StaleSnapshot { seq: 0, .. }));
        // A parked pending seq is protected too.
        service.ingest(&record(2, 4_650.0)).unwrap();
        let err = service.ingest(&record(2, 4_650.0)).unwrap_err();
        assert!(matches!(err, ServeError::StaleSnapshot { seq: 2, .. }));
    }

    #[test]
    fn queries_before_first_fold_and_unknown_names_are_typed_errors() {
        let service = AssessmentService::new();
        assert!(matches!(
            service.envelope("CAM").unwrap_err(),
            ServeError::UnknownSite { .. }
        ));
        service.register_site("CAM", model()).unwrap();
        assert!(matches!(
            service.percentile("CAM", 0.5).unwrap_err(),
            ServeError::NoData { .. }
        ));
        assert!(matches!(
            service.register_site("CAM", model()).unwrap_err(),
            ServeError::DuplicateSite { .. }
        ));
        assert!(matches!(
            service.tenant_share("CAM", "lsst").unwrap_err(),
            ServeError::NoTenants { .. }
        ));
    }

    #[test]
    fn tenant_shares_are_exhaustive_and_exclusive() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.register_tenant("CAM", "lsst", 1.0).unwrap();
        service.register_tenant("CAM", "euclid", 1.0).unwrap();
        service.register_tenant("CAM", "gaia", 2.0).unwrap();
        service.ingest(&record(0, 4_800.0)).unwrap();
        let shares = service.tenant_shares("CAM").unwrap();
        assert_eq!(shares.len(), 3);
        // Dyadic weights: the normalized shares are exact, so
        // exhaustiveness holds bit-for-bit, not just approximately.
        assert_eq!(shares[0].share, 0.25);
        assert_eq!(shares[1].share, 0.25);
        assert_eq!(shares[2].share, 0.5);
        assert_eq!(shares.iter().map(|s| s.share).sum::<f64>(), 1.0);
        let env = service.envelope("CAM").unwrap();
        let hi_sum: f64 = shares.iter().map(|s| s.total.hi.kilograms()).sum();
        assert!((hi_sum - env.total.hi.kilograms()).abs() < 1e-9 * env.total.hi.kilograms());
        // Invalid weights refused.
        assert!(matches!(
            service.register_tenant("CAM", "bad", 0.0).unwrap_err(),
            ServeError::InvalidWeight { .. }
        ));
        assert!(matches!(
            service.tenant_share("CAM", "nope").unwrap_err(),
            ServeError::UnknownTenant { .. }
        ));
    }

    #[test]
    fn parallel_batch_matches_sequential_bit_for_bit() {
        let records: Vec<SnapshotRecord> = (0..12)
            .map(|i| record(i, 4_500.0 + 37.0 * i as f64))
            .collect();
        let expected = reference(&records);

        for workers in [1usize, 4] {
            let service = AssessmentService::new();
            service.register_site("CAM", model()).unwrap();
            // Feed in scrambled order; the reorder buffer restores it.
            let mut scrambled = records.clone();
            scrambled.reverse();
            assert_eq!(service.ingest_batch(&scrambled, workers).unwrap(), 12);
            let qs = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0];
            for &q in &qs {
                assert_eq!(
                    service.percentile("CAM", q).unwrap().kilograms().to_bits(),
                    expected.percentile(q).unwrap().kilograms().to_bits(),
                    "q={q} workers={workers}"
                );
            }
            assert_eq!(service.envelope("CAM").unwrap(), expected.envelope());
            assert_eq!(
                service.marginals("CAM", AxisId::Pue).unwrap(),
                expected.marginals(AxisId::Pue)
            );
        }
    }

    #[test]
    fn retention_evicts_to_exactly_the_never_ingested_bits() {
        let records: Vec<SnapshotRecord> = (0..8)
            .map(|i| record(i, 4_500.0 + 61.0 * i as f64))
            .collect();
        let retained = AssessmentService::new();
        retained.register_site("CAM", model()).unwrap();
        retained.set_retention("CAM", 3).unwrap();
        for r in &records {
            retained.ingest(r).unwrap();
        }
        let w = retained.watermark("CAM").unwrap();
        assert_eq!((w.folded, w.evicted), (8, 5));
        assert_eq!(w.points, 3 * model().points_per_snapshot());
        // Bit-for-bit against a service that only ever saw the last 3.
        let expected = reference(&records[5..]);
        for &q in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                retained.percentile("CAM", q).unwrap().kilograms().to_bits(),
                expected.percentile(q).unwrap().kilograms().to_bits(),
                "q={q}"
            );
        }
        assert_eq!(retained.envelope("CAM").unwrap(), expected.envelope());
        // Energy ledger is NOT rewound by eviction.
        let all: f64 = records.iter().map(|r| r.energy_kwh).fold(0.0, |a, b| a + b);
        assert_eq!(retained.site_energy_kwh("CAM").unwrap(), all);
    }

    #[test]
    fn tightening_retention_evicts_immediately_and_zero_is_refused() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        for seq in 0..5u64 {
            service.ingest(&record(seq, 4_800.0 + seq as f64)).unwrap();
        }
        assert!(matches!(
            service.set_retention("CAM", 0).unwrap_err(),
            ServeError::InvalidRetention { .. }
        ));
        assert!(matches!(
            service.set_retention("NOPE", 2).unwrap_err(),
            ServeError::UnknownSite { .. }
        ));
        service.set_retention("CAM", 2).unwrap();
        let w = service.watermark("CAM").unwrap();
        assert_eq!((w.folded, w.evicted), (5, 3));
        assert_eq!(w.points, 2 * model().points_per_snapshot());
    }

    #[test]
    fn export_carries_the_federation_inputs() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.register_site("RAL", model()).unwrap();
        assert_eq!(service.sites(), vec!["CAM".to_string(), "RAL".into()]);
        service.ingest(&record(0, 4_800.0)).unwrap();
        service.ingest(&record(1, 5_100.0)).unwrap();
        let export = service.export("CAM").unwrap();
        assert_eq!(export.energy_kwh, 4_800.0 + 5_100.0);
        assert_eq!(export.servers, 100);
        assert_eq!((export.folded, export.evicted), (2, 0));
        // A registered-but-empty site exports zero energy, not NoData:
        // the fleet fold treats it as a present (zero) estimate.
        assert_eq!(service.export("RAL").unwrap().energy_kwh, 0.0);
        assert!(matches!(
            service.export("NOPE").unwrap_err(),
            ServeError::UnknownSite { .. }
        ));
    }

    #[test]
    fn live_ingest_thread_folds_and_heartbeats() {
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let (tx, rx) = unbounded();
        let handle = service.spawn_ingest(rx, Duration::from_millis(5));
        tx.send(record(0, 4_800.0)).unwrap();
        tx.send(record(1, 5_100.0)).unwrap();
        // Unknown site: rejected, not fatal.
        let mut stray = record(2, 1.0);
        stray.site = "NOPE".into();
        tx.send(stray).unwrap();
        // Let the thread drain and idle at least once past the bound.
        std::thread::sleep(Duration::from_millis(30));
        drop(tx);
        let stats = handle.join();
        assert_eq!(stats.folded, 2);
        assert_eq!(stats.rejected, 1);
        assert!(stats.idle_wakeups >= 1);
        assert!(stats.last_error.unwrap().contains("NOPE"));
        assert!(service.heartbeats() >= 1);
        assert_eq!(service.watermark("CAM").unwrap().folded, 2);
    }
}
