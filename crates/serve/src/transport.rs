//! Socket transport: the NDJSON protocols framed over `std::net` TCP
//! and Unix-domain sockets.
//!
//! One listener serves both wire shapes on every connection: a line
//! that parses as a [`QueryRequest`] (it has `"ask"`) is answered with
//! a [`QueryReply`] line; a line that parses as a [`SnapshotRecord`]
//! (it has `"seq"` and the window fields) is folded and acknowledged
//! with an `ask: "ingest"` reply carrying the site's fold watermark.
//! The two record types have disjoint required fields, so dispatch is
//! unambiguous.
//!
//! ## Framing policy
//!
//! Frames are newline-delimited. The rules, in order:
//!
//! * A **complete frame** (up to `\n`) that parses as neither record
//!   type is answered with an `ok: false` reply carrying the parse
//!   failure — the connection keeps serving. One bad frame must not
//!   sever a live connection, and must never crash the listener.
//! * A **partial line** — bytes not yet terminated by `\n` — is
//!   buffered until the rest arrives; clients may write a frame in as
//!   many pieces as they like.
//! * A partial line cut off by **disconnect or shutdown** is *dropped*,
//!   not answered: without its newline the frame may be truncated
//!   mid-number, and a reply could not reach the peer anyway. Drops
//!   are counted in [`TransportStats::dropped_partial`].
//! * A failed **ingest** (stale seq, unknown site, model refusal) is an
//!   `ok: false` reply, mirroring [`AssessmentService::serve_ndjson`]:
//!   failures are replies, not stream errors.
//!
//! ## Error isolation and shutdown
//!
//! Each connection runs on its own thread; an I/O error there closes
//! that connection only — the accept loop keeps serving. Folds happen
//! synchronously inside the connection thread *before* the ack is
//! written, so [`SocketServer::shutdown`] — which stops the accept
//! loop, then joins every connection thread — drains everything any
//! client was ever acknowledged for: after shutdown returns, the
//! service's reorder buffers hold exactly the acknowledged state and
//! the service remains fully queryable in-process.
//!
//! ## Feeding a live ingest thread
//!
//! [`spawn_record_feed`] adapts a socket's record stream onto the
//! channel consumed by [`AssessmentService::spawn_ingest`]. Its sender
//! is dropped on *every* exit path — EOF, I/O error, unparseable-frame
//! limit — so a disconnected socket propagates to the ingest loop as a
//! clean channel disconnect (the loop folds what was queued, keeps the
//! watermark, and exits) rather than leaving it waking on
//! `recv_timeout` forever; the regression suite pins this.

use crate::error::{ServeError, ServeResult};
use crate::record::SnapshotRecord;
use crate::service::AssessmentService;
use crate::wire::{QueryReply, QueryRequest};
use crossbeam::channel::Sender;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long a connection thread blocks in a read before re-checking
/// the shutdown flag. Bounds shutdown latency, not throughput: traffic
/// is served as it arrives.
const POLL: Duration = Duration::from_millis(25);

fn transport_err(what: &str, e: &std::io::Error) -> ServeError {
    ServeError::Transport {
        detail: format!("{what}: {e}"),
    }
}

/// Counters a [`SocketServer`] hands back at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted.
    pub connections: u64,
    /// Complete frames received (queries + records + malformed).
    pub frames: u64,
    /// Query frames answered.
    pub queries: u64,
    /// Record frames folded successfully.
    pub ingested: u64,
    /// Frames answered `ok: false` (malformed, unknown site, stale
    /// seq, …).
    pub rejected: u64,
    /// Partial lines dropped at disconnect or shutdown.
    pub dropped_partial: u64,
}

impl TransportStats {
    fn absorb(&mut self, other: &TransportStats) {
        self.connections += other.connections;
        self.frames += other.frames;
        self.queries += other.queries;
        self.ingested += other.ingested;
        self.rejected += other.rejected;
        self.dropped_partial += other.dropped_partial;
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A running socket listener over an [`AssessmentService`]. Dropping
/// the handle without calling [`SocketServer::shutdown`] leaks the
/// accept thread for the process lifetime; shut it down.
#[derive(Debug)]
pub struct SocketServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    join: JoinHandle<TransportStats>,
}

impl SocketServer {
    /// The bound address: `ip:port` for TCP, the filesystem path for
    /// Unix-domain.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Graceful shutdown: stops accepting, then joins every connection
    /// thread — each notices the flag within one poll tick, drops any
    /// partial line (counted), and exits after its in-flight frame's
    /// fold completed. The service keeps all folded state and stays
    /// queryable in-process.
    pub fn shutdown(self) -> TransportStats {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join.join().expect("accept thread never panics")
    }
}

/// True for the error kinds a read timeout surfaces as (platform
/// dependent: `WouldBlock` on Unix sockets, `TimedOut` elsewhere).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serves one connection until EOF, I/O error, or shutdown. See the
/// module docs for the framing policy this implements.
fn serve_connection(
    service: &AssessmentService,
    stream: Stream,
    shutdown: &AtomicBool,
) -> TransportStats {
    let mut stats = TransportStats::default();
    let Ok(mut out) = stream.try_clone() else {
        return stats;
    };
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return stats;
    }
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut buf) {
            // EOF. A leftover unterminated line is a truncated frame:
            // dropped, per the framing policy.
            Ok(0) => break,
            Ok(_) => {
                if !buf.ends_with('\n') {
                    // read_line returns without the delimiter only at
                    // EOF; the frame was cut mid-line.
                    break;
                }
                let line = std::mem::take(&mut buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                stats.frames += 1;
                let reply = answer_frame(service, line, &mut stats);
                if serde_json::ndjson::to_writer(&mut out, &reply).is_err() || out.flush().is_err()
                {
                    break;
                }
            }
            // Timeout mid-wait: any bytes read so far stayed in `buf`
            // (read_line appends before erroring); loop to keep
            // accumulating the frame.
            Err(e) if is_timeout(&e) => continue,
            Err(_) => break,
        }
    }
    if !buf.trim().is_empty() {
        stats.dropped_partial += 1;
    }
    stats
}

/// Dispatches one complete frame: query, record, or malformed.
fn answer_frame(service: &AssessmentService, line: &str, stats: &mut TransportStats) -> QueryReply {
    if let Ok(req) = serde_json::from_str::<QueryRequest>(line) {
        let reply = service.answer(&req);
        if reply.ok {
            stats.queries += 1;
        } else {
            stats.rejected += 1;
        }
        return reply;
    }
    match serde_json::from_str::<SnapshotRecord>(line) {
        Ok(record) => match service.ingest(&record) {
            Ok(()) => {
                stats.ingested += 1;
                let mut reply = QueryReply::empty(&record.site, "ingest");
                reply.ok = true;
                if let Ok(w) = service.watermark(&record.site) {
                    reply.folded = Some(w.folded);
                    reply.pending = Some(w.pending as u64);
                    reply.evicted = Some(w.evicted);
                }
                reply
            }
            Err(e) => {
                stats.rejected += 1;
                QueryReply::fail(&record.site, "ingest", e)
            }
        },
        Err(e) => {
            stats.rejected += 1;
            QueryReply::fail("", "", format!("unparseable frame: {e}"))
        }
    }
}

fn spawn_accept_loop(
    service: AssessmentService,
    listener: Listener,
    addr: String,
    label: &str,
) -> ServeResult<SocketServer> {
    match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true),
        Listener::Unix(l) => l.set_nonblocking(true),
    }
    .map_err(|e| transport_err("set_nonblocking", &e))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let join = thread::Builder::new()
        .name(format!("iriscast-serve-{label}"))
        .spawn(move || {
            let mut stats = TransportStats::default();
            let mut conns: Vec<JoinHandle<TransportStats>> = Vec::new();
            while !flag.load(Ordering::SeqCst) {
                let accepted = match &listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                    Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                };
                match accepted {
                    Ok(stream) => {
                        stats.connections += 1;
                        let service = service.clone();
                        let flag = Arc::clone(&flag);
                        conns.push(
                            thread::Builder::new()
                                .name("iriscast-serve-conn".into())
                                .spawn(move || serve_connection(&service, stream, &flag))
                                .expect("spawn connection thread"),
                        );
                    }
                    Err(e) if is_timeout(&e) => thread::sleep(POLL),
                    // Accept errors are transient per-connection
                    // failures (e.g. the peer reset before accept);
                    // the listener keeps serving.
                    Err(_) => thread::sleep(POLL),
                }
            }
            for conn in conns {
                if let Ok(s) = conn.join() {
                    stats.absorb(&s);
                }
            }
            stats
        })
        .expect("spawn accept thread");
    Ok(SocketServer {
        addr,
        shutdown,
        join,
    })
}

impl AssessmentService {
    /// Binds a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and serves the NDJSON protocols on every connection until
    /// [`SocketServer::shutdown`].
    pub fn serve_tcp(&self, bind: &str) -> ServeResult<SocketServer> {
        let listener = TcpListener::bind(bind).map_err(|e| transport_err("tcp bind", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| transport_err("tcp local_addr", &e))?
            .to_string();
        spawn_accept_loop(self.clone(), Listener::Tcp(listener), addr, "tcp")
    }

    /// Binds a Unix-domain listener at `path` (which must not already
    /// exist) and serves the NDJSON protocols on every connection
    /// until [`SocketServer::shutdown`]. The socket file is left for
    /// the caller to unlink.
    pub fn serve_unix(&self, path: &Path) -> ServeResult<SocketServer> {
        let listener = UnixListener::bind(path).map_err(|e| transport_err("unix bind", &e))?;
        let addr = path.display().to_string();
        spawn_accept_loop(self.clone(), Listener::Unix(listener), addr, "unix")
    }
}

/// A blocking client for the socket protocol: one request line out,
/// one reply line back, in order.
#[derive(Debug)]
pub struct SocketClient {
    reader: BufReader<ClientReader>,
    writer: ClientWriter,
}

#[derive(Debug)]
enum ClientReader {
    Tcp(TcpStream),
    Unix(UnixStream),
}

#[derive(Debug)]
enum ClientWriter {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for ClientReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientReader::Tcp(s) => s.read(buf),
            ClientReader::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientWriter::Tcp(s) => s.write(buf),
            ClientWriter::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientWriter::Tcp(s) => s.flush(),
            ClientWriter::Unix(s) => s.flush(),
        }
    }
}

impl SocketClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> ServeResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| transport_err("tcp connect", &e))?;
        let read = stream
            .try_clone()
            .map_err(|e| transport_err("tcp clone", &e))?;
        Ok(SocketClient {
            reader: BufReader::new(ClientReader::Tcp(read)),
            writer: ClientWriter::Tcp(stream),
        })
    }

    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: &Path) -> ServeResult<Self> {
        let stream = UnixStream::connect(path).map_err(|e| transport_err("unix connect", &e))?;
        let read = stream
            .try_clone()
            .map_err(|e| transport_err("unix clone", &e))?;
        Ok(SocketClient {
            reader: BufReader::new(ClientReader::Unix(read)),
            writer: ClientWriter::Unix(stream),
        })
    }

    /// Writes raw bytes without framing or flushing a newline — the
    /// partial-write half of the test surface. Pair with
    /// [`SocketClient::read_reply`] once a full frame (newline
    /// included) has been sent.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> ServeResult<()> {
        self.writer
            .write_all(bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| transport_err("write", &e))
    }

    /// Reads one reply line.
    pub fn read_reply(&mut self) -> ServeResult<QueryReply> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| transport_err("read", &e))?;
        if n == 0 {
            return Err(ServeError::Transport {
                detail: "connection closed before reply".into(),
            });
        }
        serde_json::from_str::<QueryReply>(line.trim()).map_err(|e| ServeError::Transport {
            detail: format!("unparseable reply: {e}"),
        })
    }

    /// One query round trip.
    pub fn query(&mut self, req: &QueryRequest) -> ServeResult<QueryReply> {
        let mut line = serde_json::to_string(req).map_err(|e| ServeError::Transport {
            detail: format!("serialize request: {e}"),
        })?;
        line.push('\n');
        self.send_bytes(line.as_bytes())?;
        self.read_reply()
    }

    /// One ingest round trip: sends the record, returns the ack (an
    /// `ask: "ingest"` reply carrying the post-fold watermark, or
    /// `ok: false` with the rejection).
    pub fn ingest(&mut self, record: &SnapshotRecord) -> ServeResult<QueryReply> {
        let mut line = serde_json::to_string(record).map_err(|e| ServeError::Transport {
            detail: format!("serialize record: {e}"),
        })?;
        line.push('\n');
        self.send_bytes(line.as_bytes())?;
        self.read_reply()
    }
}

/// Counters a record feed hands back when its socket closes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Records parsed and forwarded to the ingest channel.
    pub forwarded: u64,
    /// Complete frames that did not parse as records — dropped and
    /// counted (a one-way feed has no reply path), never fatal.
    pub malformed: u64,
    /// Partial final line dropped at disconnect.
    pub dropped_partial: u64,
}

/// Adapts a socket's NDJSON record stream onto the channel an
/// [`AssessmentService::spawn_ingest`] thread consumes.
///
/// The sender is *moved in* and therefore dropped on every exit path —
/// EOF, I/O error, or the receiver going away — so a disconnected
/// socket reaches the ingest loop as a clean channel disconnect: it
/// folds whatever was still queued, keeps the fold watermark, and
/// exits instead of spinning on timeouts. Malformed frames are dropped
/// and counted per the module framing policy (a one-way feed cannot
/// reply).
pub fn spawn_record_feed(stream: TcpStream, tx: Sender<SnapshotRecord>) -> JoinHandle<FeedStats> {
    thread::Builder::new()
        .name("iriscast-serve-feed".into())
        .spawn(move || {
            let mut stats = FeedStats::default();
            let mut reader = BufReader::new(stream);
            let mut buf = String::new();
            loop {
                buf.clear();
                match reader.read_line(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {
                        if !buf.ends_with('\n') {
                            // Truncated by disconnect mid-frame.
                            stats.dropped_partial += 1;
                            break;
                        }
                        let line = buf.trim();
                        if line.is_empty() {
                            continue;
                        }
                        match serde_json::from_str::<SnapshotRecord>(line) {
                            Ok(record) => {
                                if tx.send(record).is_err() {
                                    // Ingest side gone; stop reading.
                                    break;
                                }
                                stats.forwarded += 1;
                            }
                            Err(_) => stats.malformed += 1,
                        }
                    }
                    Err(_) => break,
                }
            }
            // `tx` drops here on every path — the ingest loop's clean
            // disconnect signal.
            stats
        })
        .expect("spawn feed thread")
}
