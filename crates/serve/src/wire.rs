//! The query side of the wire: NDJSON requests in, NDJSON replies out.
//!
//! One [`QueryRequest`] per line, one [`QueryReply`] per line, in
//! order. The reply schema is flat (kilogram-valued optional fields)
//! so every ask shape shares one record type and a consumer can parse
//! a mixed stream without dispatch. Failures are *replies*, not
//! stream errors: a malformed line or an unknown site yields
//! `ok: false` with the message inline, and the stream keeps going —
//! one bad query must not sever a live connection.

use crate::error::ServeError;
use crate::service::AssessmentService;
use iriscast_model::space::AxisId;
use serde::{Deserialize, Serialize};

/// One query line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Site to query. Ignored by the service-wide `"sites"` ask
    /// (conventionally sent as `""`).
    pub site: String,
    /// What to ask: `"envelope"`, `"percentile"`, `"summary"`,
    /// `"marginal"`, `"tenant_share"`, `"watermark"`, `"sites"` or
    /// `"export"`.
    pub ask: String,
    /// Quantile in `[0, 1]`, for `"percentile"`.
    pub q: Option<f64>,
    /// Axis name (`"ci"`, `"pue"`, `"embodied"`, `"lifespan"`), for
    /// `"marginal"`.
    pub axis: Option<String>,
    /// Tenant name, for `"tenant_share"`.
    pub tenant: Option<String>,
}

impl QueryRequest {
    /// A bare request with every optional field unset.
    pub fn bare(site: impl Into<String>, ask: impl Into<String>) -> Self {
        QueryRequest {
            site: site.into(),
            ask: ask.into(),
            q: None,
            axis: None,
            tenant: None,
        }
    }

    /// The service-wide `"sites"` enumeration.
    pub fn sites() -> Self {
        Self::bare("", "sites")
    }

    /// One site's federation `"export"`.
    pub fn export(site: impl Into<String>) -> Self {
        Self::bare(site, "export")
    }
}

/// One marginal group on the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MarginalWire {
    /// Sample index along the conditioned axis.
    pub sample_index: u64,
    /// Total-carbon envelope low, kg.
    pub lo_kg: f64,
    /// Total-carbon envelope high, kg.
    pub hi_kg: f64,
    /// Mean total, kg.
    pub mean_kg: f64,
}

/// One reply line. `ok` is the discriminant: when `false`, only
/// `error` (and the echoed `site`/`ask`) are meaningful; when `true`,
/// the fields for the asked shape are set and the rest stay `null`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryReply {
    /// Echoed site.
    pub site: String,
    /// Echoed ask.
    pub ask: String,
    /// Whether the query was answered.
    pub ok: bool,
    /// The failure, when `ok` is false.
    pub error: Option<String>,
    /// Snapshots folded when the answer was computed — the staleness
    /// observable every successful reply carries.
    pub folded: Option<u64>,
    /// Scenario points answering.
    pub points: Option<u64>,
    /// Percentile value, kg (`"percentile"`).
    pub value_kg: Option<f64>,
    /// Active envelope low/high, kg (`"envelope"`).
    pub active_lo_kg: Option<f64>,
    /// See `active_lo_kg`.
    pub active_hi_kg: Option<f64>,
    /// Embodied envelope low/high, kg (`"envelope"`).
    pub embodied_lo_kg: Option<f64>,
    /// See `embodied_lo_kg`.
    pub embodied_hi_kg: Option<f64>,
    /// Total envelope low/high, kg (`"envelope"`, `"tenant_share"`).
    pub total_lo_kg: Option<f64>,
    /// See `total_lo_kg`.
    pub total_hi_kg: Option<f64>,
    /// Mean total, kg (`"summary"`, `"tenant_share"`).
    pub mean_kg: Option<f64>,
    /// Median total, kg (`"summary"`).
    pub median_kg: Option<f64>,
    /// Normalized attribution share (`"tenant_share"`).
    pub share: Option<f64>,
    /// Marginal groups (`"marginal"`).
    pub marginals: Option<Vec<MarginalWire>>,
    /// Reorder-buffer depth (`"watermark"`).
    pub pending: Option<u64>,
    /// End of the latest folded window, epoch seconds (`"watermark"`).
    pub window_end_s: Option<i64>,
    /// Windows evicted by retention (`"watermark"`, `"export"`).
    pub evicted: Option<u64>,
    /// Registered site names, sorted (`"sites"`).
    pub sites: Option<Vec<String>>,
    /// Cumulative folded energy, kWh (`"export"`). Written with
    /// shortest-round-trip formatting, so finite values cross the wire
    /// bit-exactly — the federation tier depends on this.
    pub energy_kwh: Option<f64>,
    /// Fleet size the site's model amortises over (`"export"`).
    pub servers: Option<u64>,
}

impl QueryReply {
    pub(crate) fn empty(site: &str, ask: &str) -> Self {
        QueryReply {
            site: site.into(),
            ask: ask.into(),
            ok: false,
            error: None,
            folded: None,
            points: None,
            value_kg: None,
            active_lo_kg: None,
            active_hi_kg: None,
            embodied_lo_kg: None,
            embodied_hi_kg: None,
            total_lo_kg: None,
            total_hi_kg: None,
            mean_kg: None,
            median_kg: None,
            share: None,
            marginals: None,
            pending: None,
            window_end_s: None,
            evicted: None,
            sites: None,
            energy_kwh: None,
            servers: None,
        }
    }

    pub(crate) fn fail(site: &str, ask: &str, error: impl ToString) -> Self {
        let mut r = Self::empty(site, ask);
        r.error = Some(error.to_string());
        r
    }

    /// Turns an `ok: false` reply into a typed error — for callers
    /// (like the federator) that need the answer, not the envelope.
    pub fn into_result(self, what: &str) -> Result<Self, ServeError> {
        if self.ok {
            Ok(self)
        } else {
            Err(ServeError::Transport {
                detail: format!(
                    "{what} refused: {}",
                    self.error.as_deref().unwrap_or("no detail")
                ),
            })
        }
    }
}

fn parse_axis(name: &str) -> Result<AxisId, ServeError> {
    match name {
        "ci" => Ok(AxisId::Ci),
        "pue" => Ok(AxisId::Pue),
        "embodied" => Ok(AxisId::Embodied),
        "lifespan" => Ok(AxisId::Lifespan),
        other => Err(ServeError::Wire {
            line: 0,
            detail: format!("unknown axis {other:?} (ci|pue|embodied|lifespan)"),
        }),
    }
}

impl AssessmentService {
    /// Answers one request. Infallible by construction: every failure
    /// becomes an `ok: false` reply carrying the message.
    pub fn answer(&self, req: &QueryRequest) -> QueryReply {
        match self.try_answer(req) {
            Ok(reply) => reply,
            Err(e) => QueryReply::fail(&req.site, &req.ask, e),
        }
    }

    fn try_answer(&self, req: &QueryRequest) -> Result<QueryReply, ServeError> {
        let mut reply = QueryReply::empty(&req.site, &req.ask);
        // The one service-wide ask: no site lookup, cannot fail.
        if req.ask == "sites" {
            reply.sites = Some(self.sites());
            reply.ok = true;
            return Ok(reply);
        }
        let watermark = self.watermark(&req.site)?;
        reply.folded = Some(watermark.folded);
        reply.points = Some(watermark.points as u64);
        match req.ask.as_str() {
            "envelope" => {
                let env = self.envelope(&req.site)?;
                reply.active_lo_kg = Some(env.active.lo.kilograms());
                reply.active_hi_kg = Some(env.active.hi.kilograms());
                reply.embodied_lo_kg = Some(env.embodied.lo.kilograms());
                reply.embodied_hi_kg = Some(env.embodied.hi.kilograms());
                reply.total_lo_kg = Some(env.total.lo.kilograms());
                reply.total_hi_kg = Some(env.total.hi.kilograms());
            }
            "percentile" => {
                let q = req.q.ok_or_else(|| ServeError::Wire {
                    line: 0,
                    detail: "percentile ask requires q".into(),
                })?;
                reply.value_kg = Some(self.percentile(&req.site, q)?.kilograms());
            }
            "summary" => {
                let s = self.summary(&req.site)?;
                reply.total_lo_kg = Some(s.min.kilograms());
                reply.total_hi_kg = Some(s.max.kilograms());
                reply.median_kg = Some(s.median.kilograms());
                reply.mean_kg = Some(s.mean.kilograms());
            }
            "marginal" => {
                let axis = req.axis.as_deref().ok_or_else(|| ServeError::Wire {
                    line: 0,
                    detail: "marginal ask requires axis".into(),
                })?;
                let marginals = self.marginals(&req.site, parse_axis(axis)?)?;
                reply.marginals = Some(
                    marginals
                        .iter()
                        .map(|m| MarginalWire {
                            sample_index: m.sample_index as u64,
                            lo_kg: m.total.lo.kilograms(),
                            hi_kg: m.total.hi.kilograms(),
                            mean_kg: m.mean_total.kilograms(),
                        })
                        .collect(),
                );
            }
            "tenant_share" => {
                let tenant = req.tenant.as_deref().ok_or_else(|| ServeError::Wire {
                    line: 0,
                    detail: "tenant_share ask requires tenant".into(),
                })?;
                let s = self.tenant_share(&req.site, tenant)?;
                reply.share = Some(s.share);
                reply.total_lo_kg = Some(s.total.lo.kilograms());
                reply.total_hi_kg = Some(s.total.hi.kilograms());
                reply.mean_kg = Some(s.mean_total.kilograms());
            }
            "watermark" => {
                reply.pending = Some(watermark.pending as u64);
                reply.window_end_s = watermark.last_window_end_s;
                reply.evicted = Some(watermark.evicted);
            }
            "export" => {
                let export = self.export(&req.site)?;
                reply.energy_kwh = Some(export.energy_kwh);
                reply.servers = Some(u64::from(export.servers));
                reply.evicted = Some(export.evicted);
            }
            other => {
                return Err(ServeError::Wire {
                    line: 0,
                    detail: format!(
                        "unknown ask {other:?} (envelope|percentile|summary|\
                         marginal|tenant_share|watermark|sites|export)"
                    ),
                })
            }
        }
        reply.ok = true;
        Ok(reply)
    }

    /// Serves an NDJSON request stream: one reply line per request
    /// line, in order, written through the serde_json NDJSON framing.
    /// Malformed request lines produce `ok: false` reply lines rather
    /// than aborting the stream. Returns the number of lines served.
    pub fn serve_ndjson(&self, input: &str, out: &mut impl std::io::Write) -> usize {
        let mut served = 0;
        for line in input.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let reply = match serde_json::from_str::<QueryRequest>(line) {
                Ok(req) => self.answer(&req),
                Err(e) => QueryReply::fail("", "", format!("unparseable request: {e}")),
            };
            serde_json::ndjson::to_writer(&mut *out, &reply).expect("replies serialize infallibly");
            served += 1;
        }
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SnapshotRecord;
    use crate::service::SiteModel;

    fn service_with_data() -> AssessmentService {
        let service = AssessmentService::new();
        service
            .register_site(
                "CAM",
                SiteModel {
                    servers: 100,
                    ci_grams_per_kwh: vec![50.0, 150.0, 250.0],
                    pue_values: vec![1.1, 1.3, 1.58],
                    embodied_kg: vec![400.0, 900.0, 1_300.0],
                    lifespans_years: vec![3, 5, 7],
                },
            )
            .unwrap();
        service.register_tenant("CAM", "lsst", 3.0).unwrap();
        service.register_tenant("CAM", "gaia", 1.0).unwrap();
        for seq in 0..3u64 {
            service
                .ingest(&SnapshotRecord {
                    site: "CAM".into(),
                    seq,
                    window_start_s: (seq as i64) * 21_600,
                    window_end_s: (seq as i64 + 1) * 21_600,
                    energy_kwh: 4_800.0 + 100.0 * seq as f64,
                })
                .unwrap();
        }
        service
    }

    fn ask(site: &str, ask: &str) -> QueryRequest {
        QueryRequest {
            site: site.into(),
            ask: ask.into(),
            q: None,
            axis: None,
            tenant: None,
        }
    }

    #[test]
    fn replies_match_the_direct_query_surface() {
        let service = service_with_data();
        let env = service.envelope("CAM").unwrap();
        let reply = service.answer(&ask("CAM", "envelope"));
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(reply.total_hi_kg, Some(env.total.hi.kilograms()));
        assert_eq!(reply.folded, Some(3));

        let mut req = ask("CAM", "percentile");
        req.q = Some(0.95);
        let reply = service.answer(&req);
        assert_eq!(
            reply.value_kg,
            Some(service.percentile("CAM", 0.95).unwrap().kilograms())
        );

        let mut req = ask("CAM", "marginal");
        req.axis = Some("pue".into());
        let reply = service.answer(&req);
        assert_eq!(reply.marginals.as_ref().unwrap().len(), 3);

        let mut req = ask("CAM", "tenant_share");
        req.tenant = Some("lsst".into());
        let reply = service.answer(&req);
        assert_eq!(reply.share, Some(0.75));

        let reply = service.answer(&ask("CAM", "watermark"));
        assert_eq!(reply.pending, Some(0));
        assert_eq!(reply.window_end_s, Some(3 * 21_600));
        assert_eq!(reply.evicted, Some(0));
    }

    #[test]
    fn sites_and_export_serve_the_federation_tier() {
        let service = service_with_data();
        let reply = service.answer(&QueryRequest::sites());
        assert!(reply.ok);
        assert_eq!(reply.sites, Some(vec!["CAM".to_string()]));

        let reply = service.answer(&QueryRequest::export("CAM"));
        assert!(reply.ok, "{:?}", reply.error);
        let expected = service.export("CAM").unwrap();
        // The export energy must cross the wire bit-exactly: the
        // federation equivalence property depends on it.
        let line = serde_json::to_string(&reply).unwrap();
        let back: QueryReply = serde_json::from_str(&line).unwrap();
        assert_eq!(
            back.energy_kwh.unwrap().to_bits(),
            expected.energy_kwh.to_bits()
        );
        assert_eq!(back.servers, Some(100));
        assert_eq!(back.evicted, Some(0));

        let reply = service.answer(&QueryRequest::export("NOPE"));
        assert!(reply.into_result("export").is_err());
    }

    #[test]
    fn failures_are_replies_not_stream_errors() {
        let service = service_with_data();
        let reply = service.answer(&ask("NOPE", "envelope"));
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("NOPE"));
        let reply = service.answer(&ask("CAM", "dance"));
        assert!(!reply.ok);
        assert!(reply.error.unwrap().contains("unknown ask"));
        let reply = service.answer(&ask("CAM", "percentile"));
        assert!(!reply.ok, "percentile without q must fail");
    }

    #[test]
    fn ndjson_stream_round_trips() {
        let service = service_with_data();
        let mut requests = Vec::new();
        let mut pct = ask("CAM", "percentile");
        pct.q = Some(0.5);
        for req in [ask("CAM", "envelope"), pct, ask("CAM", "summary")] {
            requests.push(serde_json::to_string(&req).unwrap());
        }
        requests.push("garbage".into());
        let input = requests.join("\n");
        let mut out = Vec::new();
        assert_eq!(service.serve_ndjson(&input, &mut out), 4);
        let replies: Vec<QueryReply> =
            serde_json::ndjson::from_str(std::str::from_utf8(&out).unwrap())
                .collect::<Result<_, _>>()
                .unwrap();
        assert_eq!(replies.len(), 4);
        assert!(replies[0].ok && replies[1].ok && replies[2].ok);
        assert!(!replies[3].ok);
        assert_eq!(
            replies[1].value_kg,
            Some(service.percentile("CAM", 0.5).unwrap().kilograms())
        );
    }
}
