//! Property suite for the serve pipeline: the incremental
//! ingest → fold path must be bit-identical to a sequential batch
//! recompute, whatever the worker count, arrival order, or query
//! interleaving.

use iriscast_model::engine::SpaceResults;
use iriscast_model::federation::FleetRollup;
use iriscast_model::space::AxisId;
use iriscast_serve::federator::{site_rollup, FleetFederator, RegionHandle};
use iriscast_serve::{AssessmentService, ServeError, SiteModel, SnapshotRecord};
use iriscast_units::Period;
use proptest::prelude::*;

fn model() -> SiteModel {
    SiteModel {
        servers: 2_398,
        ci_grams_per_kwh: vec![34.0, 231.12, 280.0],
        pue_values: vec![1.1, 1.3, 1.58],
        embodied_kg: vec![399.0, 1_100.0, 1_300.0],
        lifespans_years: vec![3, 5, 7],
    }
}

fn records(site: &str, energies: &[f64], window_hours: i64) -> Vec<SnapshotRecord> {
    energies
        .iter()
        .enumerate()
        .map(|(seq, &kwh)| SnapshotRecord {
            site: site.into(),
            seq: seq as u64,
            window_start_s: seq as i64 * window_hours * 3_600,
            window_end_s: (seq as i64 + 1) * window_hours * 3_600,
            energy_kwh: kwh,
        })
        .collect()
}

/// The sequential reference: evaluate each snapshot under the model in
/// seq order and `extend_rows` by hand — the "batch recompute" the
/// pipeline must reproduce bit-for-bit.
fn reference(m: &SiteModel, recs: &[SnapshotRecord]) -> SpaceResults {
    let mut base: Option<SpaceResults> = None;
    for r in recs {
        let block = m.evaluate(r).unwrap();
        match base.as_mut() {
            None => base = Some(block),
            Some(b) => b.extend_rows(&block).unwrap(),
        }
    }
    base.unwrap()
}

fn assert_state_matches(service: &AssessmentService, site: &str, expected: &SpaceResults) {
    for &q in &[0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
        assert_eq!(
            service.percentile(site, q).unwrap().kilograms().to_bits(),
            expected.percentile(q).unwrap().kilograms().to_bits(),
            "quantile q={q} diverged"
        );
    }
    assert_eq!(service.envelope(site).unwrap(), expected.envelope());
    assert_eq!(
        service.summary(site).unwrap().mean.kilograms().to_bits(),
        expected.summary().unwrap().mean.kilograms().to_bits()
    );
    for axis in [AxisId::Ci, AxisId::Pue, AxisId::Embodied, AxisId::Lifespan] {
        assert_eq!(
            service.marginals(site, axis).unwrap(),
            expected.marginals(axis),
            "marginals along {axis:?} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental ingest ≡ sequential batch recompute, bit for bit,
    /// with 1 and 16 evaluation workers, under a shuffled arrival
    /// order and warm queries interleaved between folds.
    #[test]
    fn worker_count_and_arrival_order_never_change_the_bits(
        energies in prop::collection::vec(500.0f64..30_000.0, 2..10),
        window_hours in 1i64..25,
        rot in 0usize..16,
        warm_every in 1usize..4,
    ) {
        let recs = records("CAM", &energies, window_hours);
        let expected = reference(&model(), &recs);

        // Workers = 1, records arriving rotated out of order, with a
        // warm query poked between single-record folds so the cached
        // sorted view is live across the fold path.
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let mut rotated = recs.clone();
        rotated.rotate_left(rot % recs.len());
        for (i, r) in rotated.iter().enumerate() {
            service.ingest(r).unwrap();
            if i % warm_every == 0 && service.watermark("CAM").unwrap().folded > 0 {
                let _ = service.percentile("CAM", 0.5).unwrap();
            }
        }
        assert_state_matches(&service, "CAM", &expected);

        // Workers = 16 over the same rotated feed, one parallel batch.
        let service16 = AssessmentService::new();
        service16.register_site("CAM", model()).unwrap();
        prop_assert_eq!(service16.ingest_batch(&rotated, 16).unwrap(), recs.len());
        assert_state_matches(&service16, "CAM", &expected);

        // And the two services agree with each other exactly.
        prop_assert_eq!(
            service.summary("CAM").unwrap(),
            service16.summary("CAM").unwrap()
        );
    }

    /// Multi-site batches keep each site's fold stream independent: a
    /// 16-worker ingest over interleaved sites equals each site's own
    /// sequential reference.
    #[test]
    fn sites_fold_independently_under_shared_workers(
        a in prop::collection::vec(500.0f64..30_000.0, 1..6),
        b in prop::collection::vec(500.0f64..30_000.0, 1..6),
    ) {
        let rec_a = records("CAM", &a, 6);
        let rec_b = records("EDI", &b, 8);
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let mut edi = model();
        edi.servers = 500;
        service.register_site("EDI", edi.clone()).unwrap();

        // Interleave the two sites' streams.
        let mut mixed = Vec::new();
        let mut ia = rec_a.iter();
        let mut ib = rec_b.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (x, y) => {
                    mixed.extend(x.cloned());
                    mixed.extend(y.cloned());
                }
            }
        }
        prop_assert_eq!(
            service.ingest_batch(&mixed, 16).unwrap(),
            rec_a.len() + rec_b.len()
        );
        assert_state_matches(&service, "CAM", &reference(&model(), &rec_a));
        assert_state_matches(&service, "EDI", &reference(&edi, &rec_b));
    }

    /// Sliding-window retention is *exact*: a service that ingested
    /// everything and evicted down to the last `keep` windows answers
    /// every query with the same bits as a service that only ever
    /// ingested those windows — at 1 and 16 evaluation workers, under
    /// rotated arrival, whether the bound was set before ingest
    /// (steady-state eviction) or tightened afterwards.
    #[test]
    fn retention_equals_never_ingested(
        energies in prop::collection::vec(500.0f64..30_000.0, 3..12),
        keep in 1usize..6,
        rot in 0usize..16,
    ) {
        let recs = records("CAM", &energies, 6);
        let keep = keep.min(recs.len());
        let survivors = &recs[recs.len() - keep..];
        let expected = reference(&model(), survivors);
        let mut rotated = recs.clone();
        rotated.rotate_left(rot % recs.len());

        for workers in [1usize, 16] {
            // Bound set up front: evictions interleave with folds.
            let service = AssessmentService::new();
            service.register_site("CAM", model()).unwrap();
            service.set_retention("CAM", keep).unwrap();
            prop_assert_eq!(service.ingest_batch(&rotated, workers).unwrap(), recs.len());
            let w = service.watermark("CAM").unwrap();
            prop_assert_eq!(w.folded as usize, recs.len());
            prop_assert_eq!(w.evicted as usize, recs.len() - keep);
            assert_state_matches(&service, "CAM", &expected);

            // Bound tightened after the fact: one catch-up eviction.
            let late = AssessmentService::new();
            late.register_site("CAM", model()).unwrap();
            prop_assert_eq!(late.ingest_batch(&rotated, workers).unwrap(), recs.len());
            late.set_retention("CAM", keep).unwrap();
            assert_state_matches(&late, "CAM", &expected);

            // Retention never rewinds the energy ledger.
            let all: f64 = recs.iter().map(|r| r.energy_kwh).fold(0.0, |a, b| a + b);
            prop_assert_eq!(
                service.site_energy_kwh("CAM").unwrap().to_bits(),
                all.to_bits()
            );
        }
    }

    /// A replayed sequence number is refused without corrupting the
    /// folded state.
    #[test]
    fn replay_is_rejected_and_state_unharmed(
        energies in prop::collection::vec(500.0f64..30_000.0, 2..6),
        dup in 0usize..6,
    ) {
        let recs = records("CAM", &energies, 6);
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.ingest_batch(&recs, 1).unwrap();
        let replay = &recs[dup % recs.len()];
        let err = service.ingest(replay).unwrap_err();
        prop_assert!(matches!(err, ServeError::StaleSnapshot { .. }));
        assert_state_matches(&service, "CAM", &reference(&model(), &recs));
    }
}

/// Folds every site of `service` into a fresh rollup in the canonical
/// order — regions in code order, sites sorted within each region —
/// using the same [`site_rollup`] construction the wire path uses.
/// This is the in-process flat reference the federated sweep must
/// reproduce bit-for-bit.
fn flat_reference(
    service: &AssessmentService,
    codes: &[String],
    region_of: impl Fn(&str) -> u32,
    period: Period,
) -> FleetRollup {
    let mut rollup = FleetRollup::new(codes.to_vec(), period);
    let sites = service.sites();
    for (index, _) in codes.iter().enumerate() {
        for site in sites.iter().filter(|s| region_of(s) == index as u32) {
            let export = service.export(site).unwrap();
            rollup.fold_site(site_rollup(index as u32, export.servers, export.energy_kwh));
        }
    }
    rollup
}

fn assert_rollups_match(got: &FleetRollup, expected: &FleetRollup) {
    assert_eq!(got.site_count(), expected.site_count());
    assert_eq!(got.total_nodes(), expected.total_nodes());
    let got_bits: Vec<u64> = got
        .best_estimate_kwh()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let want_bits: Vec<u64> = expected
        .best_estimate_kwh()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        got_bits, want_bits,
        "per-site best-estimate columns diverged"
    );
    for &q in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        assert_eq!(
            got.percentile(q).unwrap().kilowatt_hours().to_bits(),
            expected.percentile(q).unwrap().kilowatt_hours().to_bits(),
            "fleet quantile q={q} diverged"
        );
    }
    assert_eq!(got.region_rollups(), expected.region_rollups());
    assert_eq!(got.hottest_site(), expected.hottest_site());
}

proptest! {
    // Each case spins up real listeners; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The scale-out tentpole: N regional services behind TCP sockets,
    /// federated over the wire, equal one flat service hosting every
    /// site — bit for bit, at 1 and 16 ingest workers, with arrivals
    /// shuffled across regions, and with aggressive retention active
    /// on the regional side only (exports must not depend on it).
    #[test]
    fn regional_federation_over_sockets_equals_flat_service(
        site_energies in prop::collection::vec(
            prop::collection::vec(500.0f64..30_000.0, 1..5), 2..7),
        regions in 2usize..4,
        rot in 0usize..16,
    ) {
        let period = Period::snapshot_24h();
        let codes: Vec<String> = (0..regions).map(|r| format!("R{r}")).collect();
        let site_name = |i: usize| format!("S{i:02}");
        let region_of_index = |i: usize| (i % regions) as u32;

        for workers in [1usize, 16] {
            // The flat service hosts every site; regional services
            // host their region's slice.
            let flat = AssessmentService::new();
            let regional: Vec<AssessmentService> =
                (0..regions).map(|_| AssessmentService::new()).collect();
            let mut all_records = Vec::new();
            let mut per_region: Vec<Vec<SnapshotRecord>> = vec![Vec::new(); regions];
            for (i, energies) in site_energies.iter().enumerate() {
                let mut m = model();
                m.servers = 100 + 37 * i as u32;
                let name = site_name(i);
                flat.register_site(&name, m.clone()).unwrap();
                let r = region_of_index(i) as usize;
                regional[r].register_site(&name, m).unwrap();
                // Retention on the regional side only: the export
                // energy ledger must be unaffected.
                regional[r].set_retention(&name, 1).unwrap();
                let recs = records(&name, energies, 6);
                all_records.extend(recs.iter().cloned());
                per_region[r].extend(recs);
            }
            // Shuffle arrivals across regions and sites.
            let rot_all = rot % all_records.len();
            all_records.rotate_left(rot_all);
            prop_assert_eq!(
                flat.ingest_batch(&all_records, workers).unwrap(),
                all_records.len()
            );
            for (r, recs) in per_region.iter_mut().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                let rot_r = rot % recs.len();
                recs.rotate_left(rot_r);
                prop_assert_eq!(
                    regional[r].ingest_batch(recs, workers).unwrap(),
                    recs.len()
                );
            }

            // Serve each region over a loopback socket and federate.
            let servers: Vec<_> = regional
                .iter()
                .map(|s| s.serve_tcp("127.0.0.1:0").unwrap())
                .collect();
            let federator = FleetFederator::new(
                codes
                    .iter()
                    .zip(&servers)
                    .map(|(code, srv)| RegionHandle::of(code.clone(), srv))
                    .collect(),
            );
            let federated = federator.federate(period).unwrap();
            for server in servers {
                server.shutdown();
            }

            let expected = flat_reference(
                &flat,
                &codes,
                |site| {
                    let i: usize = site[1..].parse().unwrap();
                    region_of_index(i)
                },
                period,
            );
            assert_rollups_match(&federated, &expected);
        }
    }
}
