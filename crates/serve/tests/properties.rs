//! Property suite for the serve pipeline: the incremental
//! ingest → fold path must be bit-identical to a sequential batch
//! recompute, whatever the worker count, arrival order, or query
//! interleaving.

use iriscast_model::engine::SpaceResults;
use iriscast_model::space::AxisId;
use iriscast_serve::{AssessmentService, ServeError, SiteModel, SnapshotRecord};
use proptest::prelude::*;

fn model() -> SiteModel {
    SiteModel {
        servers: 2_398,
        ci_grams_per_kwh: vec![34.0, 231.12, 280.0],
        pue_values: vec![1.1, 1.3, 1.58],
        embodied_kg: vec![399.0, 1_100.0, 1_300.0],
        lifespans_years: vec![3, 5, 7],
    }
}

fn records(site: &str, energies: &[f64], window_hours: i64) -> Vec<SnapshotRecord> {
    energies
        .iter()
        .enumerate()
        .map(|(seq, &kwh)| SnapshotRecord {
            site: site.into(),
            seq: seq as u64,
            window_start_s: seq as i64 * window_hours * 3_600,
            window_end_s: (seq as i64 + 1) * window_hours * 3_600,
            energy_kwh: kwh,
        })
        .collect()
}

/// The sequential reference: evaluate each snapshot under the model in
/// seq order and `extend_rows` by hand — the "batch recompute" the
/// pipeline must reproduce bit-for-bit.
fn reference(m: &SiteModel, recs: &[SnapshotRecord]) -> SpaceResults {
    let mut base: Option<SpaceResults> = None;
    for r in recs {
        let block = m.evaluate(r).unwrap();
        match base.as_mut() {
            None => base = Some(block),
            Some(b) => b.extend_rows(&block).unwrap(),
        }
    }
    base.unwrap()
}

fn assert_state_matches(service: &AssessmentService, site: &str, expected: &SpaceResults) {
    for &q in &[0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
        assert_eq!(
            service.percentile(site, q).unwrap().kilograms().to_bits(),
            expected.percentile(q).unwrap().kilograms().to_bits(),
            "quantile q={q} diverged"
        );
    }
    assert_eq!(service.envelope(site).unwrap(), expected.envelope());
    assert_eq!(
        service.summary(site).unwrap().mean.kilograms().to_bits(),
        expected.summary().unwrap().mean.kilograms().to_bits()
    );
    for axis in [AxisId::Ci, AxisId::Pue, AxisId::Embodied, AxisId::Lifespan] {
        assert_eq!(
            service.marginals(site, axis).unwrap(),
            expected.marginals(axis),
            "marginals along {axis:?} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental ingest ≡ sequential batch recompute, bit for bit,
    /// with 1 and 16 evaluation workers, under a shuffled arrival
    /// order and warm queries interleaved between folds.
    #[test]
    fn worker_count_and_arrival_order_never_change_the_bits(
        energies in prop::collection::vec(500.0f64..30_000.0, 2..10),
        window_hours in 1i64..25,
        rot in 0usize..16,
        warm_every in 1usize..4,
    ) {
        let recs = records("CAM", &energies, window_hours);
        let expected = reference(&model(), &recs);

        // Workers = 1, records arriving rotated out of order, with a
        // warm query poked between single-record folds so the cached
        // sorted view is live across the fold path.
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let mut rotated = recs.clone();
        rotated.rotate_left(rot % recs.len());
        for (i, r) in rotated.iter().enumerate() {
            service.ingest(r).unwrap();
            if i % warm_every == 0 && service.watermark("CAM").unwrap().folded > 0 {
                let _ = service.percentile("CAM", 0.5).unwrap();
            }
        }
        assert_state_matches(&service, "CAM", &expected);

        // Workers = 16 over the same rotated feed, one parallel batch.
        let service16 = AssessmentService::new();
        service16.register_site("CAM", model()).unwrap();
        prop_assert_eq!(service16.ingest_batch(&rotated, 16).unwrap(), recs.len());
        assert_state_matches(&service16, "CAM", &expected);

        // And the two services agree with each other exactly.
        prop_assert_eq!(
            service.summary("CAM").unwrap(),
            service16.summary("CAM").unwrap()
        );
    }

    /// Multi-site batches keep each site's fold stream independent: a
    /// 16-worker ingest over interleaved sites equals each site's own
    /// sequential reference.
    #[test]
    fn sites_fold_independently_under_shared_workers(
        a in prop::collection::vec(500.0f64..30_000.0, 1..6),
        b in prop::collection::vec(500.0f64..30_000.0, 1..6),
    ) {
        let rec_a = records("CAM", &a, 6);
        let rec_b = records("EDI", &b, 8);
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        let mut edi = model();
        edi.servers = 500;
        service.register_site("EDI", edi.clone()).unwrap();

        // Interleave the two sites' streams.
        let mut mixed = Vec::new();
        let mut ia = rec_a.iter();
        let mut ib = rec_b.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (x, y) => {
                    mixed.extend(x.cloned());
                    mixed.extend(y.cloned());
                }
            }
        }
        prop_assert_eq!(
            service.ingest_batch(&mixed, 16).unwrap(),
            rec_a.len() + rec_b.len()
        );
        assert_state_matches(&service, "CAM", &reference(&model(), &rec_a));
        assert_state_matches(&service, "EDI", &reference(&edi, &rec_b));
    }

    /// A replayed sequence number is refused without corrupting the
    /// folded state.
    #[test]
    fn replay_is_rejected_and_state_unharmed(
        energies in prop::collection::vec(500.0f64..30_000.0, 2..6),
        dup in 0usize..6,
    ) {
        let recs = records("CAM", &energies, 6);
        let service = AssessmentService::new();
        service.register_site("CAM", model()).unwrap();
        service.ingest_batch(&recs, 1).unwrap();
        let replay = &recs[dup % recs.len()];
        let err = service.ingest(replay).unwrap_err();
        prop_assert!(matches!(err, ServeError::StaleSnapshot { .. }));
        assert_state_matches(&service, "CAM", &reference(&model(), &recs));
    }
}
