//! Loopback round-trip suite for the socket transport: framing under
//! partial writes, malformed frames mid-stream, interleaved clients,
//! disconnects during ingest, Unix-domain parity with TCP, and the
//! feed → `spawn_ingest` shutdown path.

use crossbeam::channel::unbounded;
use iriscast_serve::{
    spawn_record_feed, AssessmentService, QueryRequest, SiteModel, SnapshotRecord, SocketClient,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn model() -> SiteModel {
    SiteModel {
        servers: 2_398,
        ci_grams_per_kwh: vec![34.0, 231.12, 280.0],
        pue_values: vec![1.1, 1.3, 1.58],
        embodied_kg: vec![399.0, 1_100.0, 1_300.0],
        lifespans_years: vec![3, 5, 7],
    }
}

fn record(site: &str, seq: u64, energy_kwh: f64) -> SnapshotRecord {
    SnapshotRecord {
        site: site.into(),
        seq,
        window_start_s: (seq as i64) * 21_600,
        window_end_s: (seq as i64 + 1) * 21_600,
        energy_kwh,
    }
}

fn served_service() -> (AssessmentService, iriscast_serve::SocketServer) {
    let service = AssessmentService::new();
    service.register_site("CAM", model()).unwrap();
    let server = service.serve_tcp("127.0.0.1:0").unwrap();
    (service, server)
}

#[test]
fn tcp_round_trip_ingests_and_answers_bit_identically() {
    let (service, server) = served_service();
    let mut client = SocketClient::connect_tcp(server.addr()).unwrap();

    // Ingest three windows through the socket, out of order; acks
    // carry the advancing watermark.
    for (seq, folded_after) in [(1u64, 0u64), (0, 2), (2, 3)] {
        let ack = client
            .ingest(&record("CAM", seq, 4_500.0 + 100.0 * seq as f64))
            .unwrap();
        assert!(ack.ok, "{:?}", ack.error);
        assert_eq!(ack.ask, "ingest");
        assert_eq!(ack.folded, Some(folded_after), "seq {seq}");
    }

    // Queries over the wire match the in-process surface bit for bit.
    let mut req = QueryRequest::bare("CAM", "percentile");
    req.q = Some(0.95);
    let reply = client.query(&req).unwrap();
    assert!(reply.ok);
    assert_eq!(
        reply.value_kg.unwrap().to_bits(),
        service
            .percentile("CAM", 0.95)
            .unwrap()
            .kilograms()
            .to_bits()
    );
    let reply = client
        .query(&QueryRequest::bare("CAM", "envelope"))
        .unwrap();
    let env = service.envelope("CAM").unwrap();
    assert_eq!(
        reply.total_hi_kg.unwrap().to_bits(),
        env.total.hi.kilograms().to_bits()
    );

    let stats = server.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.ingested, 3);
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.rejected, 0);
    // Shutdown drained everything: the service stays queryable.
    assert_eq!(service.watermark("CAM").unwrap().folded, 3);
}

#[test]
fn unix_round_trip_matches_tcp() {
    let service = AssessmentService::new();
    service.register_site("CAM", model()).unwrap();
    let path = std::env::temp_dir().join(format!("iriscast-sock-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = service.serve_unix(&path).unwrap();
    let mut client = SocketClient::connect_unix(&path).unwrap();
    let ack = client.ingest(&record("CAM", 0, 4_800.0)).unwrap();
    assert!(ack.ok);
    let reply = client.query(&QueryRequest::bare("CAM", "summary")).unwrap();
    assert!(reply.ok);
    assert_eq!(
        reply.mean_kg.unwrap().to_bits(),
        service.summary("CAM").unwrap().mean.kilograms().to_bits()
    );
    let stats = server.shutdown();
    assert_eq!((stats.ingested, stats.queries), (1, 1));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn partial_writes_assemble_into_one_frame() {
    let (_service, server) = served_service();
    let mut client = SocketClient::connect_tcp(server.addr()).unwrap();
    // One query frame delivered in four flushes, slowly enough that
    // the server's read loop observes timeouts between the pieces.
    let line = serde_json::to_string(&QueryRequest::bare("CAM", "watermark")).unwrap();
    let bytes = line.as_bytes();
    let cuts = [0, 3, bytes.len() / 2, bytes.len() - 2, bytes.len()];
    for w in cuts.windows(2) {
        client.send_bytes(&bytes[w[0]..w[1]]).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    client.send_bytes(b"\n").unwrap();
    let reply = client.read_reply().unwrap();
    assert!(reply.ok, "{:?}", reply.error);
    assert_eq!(reply.ask, "watermark");
    let stats = server.shutdown();
    assert_eq!(stats.frames, 1);
    assert_eq!(stats.dropped_partial, 0);
}

#[test]
fn malformed_frames_mid_stream_do_not_sever_the_connection() {
    let (service, server) = served_service();
    let mut client = SocketClient::connect_tcp(server.addr()).unwrap();

    let ack = client.ingest(&record("CAM", 0, 4_800.0)).unwrap();
    assert!(ack.ok);

    // Garbage frame: answered ok: false, connection stays up.
    client.send_bytes(b"{this is not json}\n").unwrap();
    let reply = client.read_reply().unwrap();
    assert!(!reply.ok);
    assert!(reply.error.unwrap().contains("unparseable frame"));

    // A well-formed frame of neither record type is also a reply.
    client.send_bytes(b"{\"hello\": 1}\n").unwrap();
    assert!(!client.read_reply().unwrap().ok);

    // A stale replay is a reply too, not a disconnect.
    let nack = client.ingest(&record("CAM", 0, 4_800.0)).unwrap();
    assert!(!nack.ok);
    assert!(nack.error.unwrap().contains("replayed"));

    // The connection still serves queries afterwards.
    let reply = client
        .query(&QueryRequest::bare("CAM", "envelope"))
        .unwrap();
    assert!(reply.ok);

    let stats = server.shutdown();
    assert_eq!(stats.frames, 5);
    assert_eq!(stats.ingested, 1);
    assert_eq!(stats.rejected, 3);
    assert_eq!(service.watermark("CAM").unwrap().folded, 1);
}

#[test]
fn interleaved_clients_share_one_service_without_crosstalk() {
    let (service, server) = served_service();
    // Seed one window so queries answer.
    service.ingest(&record("CAM", 0, 4_800.0)).unwrap();
    let addr = server.addr().to_string();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = SocketClient::connect_tcp(&addr).unwrap();
                let mut got = Vec::new();
                for i in 0..8 {
                    let reply = if (t + i) % 2 == 0 {
                        let mut req = QueryRequest::bare("CAM", "percentile");
                        req.q = Some(0.5);
                        client.query(&req).unwrap()
                    } else {
                        client
                            .query(&QueryRequest::bare("CAM", "envelope"))
                            .unwrap()
                    };
                    assert!(reply.ok, "{:?}", reply.error);
                    // Replies arrive in request order on this
                    // connection: the echoed ask proves no crosstalk.
                    let want = if (t + i) % 2 == 0 {
                        "percentile"
                    } else {
                        "envelope"
                    };
                    assert_eq!(reply.ask, want);
                    got.push(reply);
                }
                got
            })
        })
        .collect();
    let median = service
        .percentile("CAM", 0.5)
        .unwrap()
        .kilograms()
        .to_bits();
    for t in threads {
        for reply in t.join().unwrap() {
            if reply.ask == "percentile" {
                assert_eq!(reply.value_kg.unwrap().to_bits(), median);
            }
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.queries, 32);
}

#[test]
fn disconnect_mid_frame_drops_the_partial_and_keeps_the_service() {
    let (service, server) = served_service();
    {
        let mut client = SocketClient::connect_tcp(server.addr()).unwrap();
        let ack = client.ingest(&record("CAM", 0, 4_800.0)).unwrap();
        assert!(ack.ok);
        // Half an ingest frame, then hang up.
        client
            .send_bytes(b"{\"site\":\"CAM\",\"seq\":1,\"window_st")
            .unwrap();
    } // client drops: TCP FIN mid-frame
      // A second client still gets answers from the same service.
    let mut client2 = SocketClient::connect_tcp(server.addr()).unwrap();
    let reply = client2
        .query(&QueryRequest::bare("CAM", "watermark"))
        .unwrap();
    assert!(reply.ok);
    assert_eq!(reply.folded, Some(1));
    drop(client2);
    let stats = server.shutdown();
    assert_eq!(stats.dropped_partial, 1);
    assert_eq!(stats.ingested, 1);
    assert_eq!(service.watermark("CAM").unwrap().folded, 1);
}

/// The `spawn_ingest` shutdown regression: a socket feed that
/// disconnects must reach the ingest loop as a clean channel
/// disconnect — the loop folds what was queued, keeps the watermark,
/// and exits promptly even under a staleness bound far longer than the
/// test, instead of waking on `recv_timeout` until the bound expires.
#[test]
fn record_feed_disconnect_exits_ingest_cleanly() {
    let service = AssessmentService::new();
    service.register_site("CAM", model()).unwrap();
    let (tx, rx) = unbounded();
    // Staleness far longer than the test budget: a prompt exit proves
    // the loop left on Disconnected, not on a timeout tick.
    let ingest = service.spawn_ingest(rx, Duration::from_secs(60));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        for seq in 0..3u64 {
            let mut line =
                serde_json::to_string(&record("CAM", seq, 4_500.0 + 10.0 * seq as f64)).unwrap();
            line.push('\n');
            s.write_all(line.as_bytes()).unwrap();
        }
        s.write_all(b"not a record\n").unwrap();
        // Partial frame, then disconnect.
        s.write_all(b"{\"site\":\"CAM\",\"se").unwrap();
    });
    let (stream, _) = listener.accept().unwrap();
    let feed = spawn_record_feed(stream, tx);
    writer.join().unwrap();

    let started = Instant::now();
    let feed_stats = feed.join().unwrap();
    let ingest_stats = ingest.join();
    let elapsed = started.elapsed();

    assert_eq!(feed_stats.forwarded, 3);
    assert_eq!(feed_stats.malformed, 1);
    assert_eq!(feed_stats.dropped_partial, 1);
    assert_eq!(ingest_stats.folded, 3);
    assert_eq!(ingest_stats.rejected, 0);
    // Queued records were drained before the disconnect exit; the
    // watermark is preserved and the service remains queryable.
    assert_eq!(service.watermark("CAM").unwrap().folded, 3);
    assert!(service.percentile("CAM", 0.5).is_ok());
    assert!(
        elapsed < Duration::from_secs(10),
        "ingest loop took {elapsed:?} to observe disconnect — it must \
         exit on Disconnected, not ride out the staleness bound"
    );
}
