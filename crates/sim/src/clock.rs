//! Fixed-step clocks for components that sample rather than react.
//!
//! A clocked component (the telemetry collector, the grid signal)
//! declares a [`Clock`]; the engine schedules its first tick when the
//! simulation window opens and re-schedules after every tick, so
//! fixed-step sweeps coexist with purely event-driven components in one
//! queue.

use iriscast_units::{SimDuration, Timestamp};

/// A fixed-step tick schedule.
///
/// Two alignments exist because the codebase has two kinds of grids:
/// sampling grids anchored at the *window start* (the telemetry
/// collector samples at `start + i·step`, whatever the start is) and
/// signal grids anchored at the *epoch* (half-hourly settlement slots
/// land on `:00`/`:30` regardless of when a window opens).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    step: SimDuration,
    epoch_aligned: bool,
}

impl Clock {
    /// Ticks at the window start, then every `step`.
    ///
    /// Panics if `step` is not positive.
    pub fn every(step: SimDuration) -> Self {
        assert!(step.as_secs() > 0, "clock step must be positive");
        Clock {
            step,
            epoch_aligned: false,
        }
    }

    /// Ticks on the epoch-aligned `step` grid: the first tick is the
    /// first slot boundary at or after the window start
    /// ([`Timestamp::ceil_to`]), then every `step`.
    ///
    /// Panics if `step` is not positive.
    pub fn aligned(step: SimDuration) -> Self {
        assert!(step.as_secs() > 0, "clock step must be positive");
        Clock {
            step,
            epoch_aligned: true,
        }
    }

    /// The tick interval.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// The first tick for a window opening at `start`.
    pub fn first_tick(&self, start: Timestamp) -> Timestamp {
        if self.epoch_aligned {
            start.ceil_to(self.step)
        } else {
            start
        }
    }

    /// The tick after one at `t`.
    pub fn next_tick(&self, t: Timestamp) -> Timestamp {
        t + self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_anchored_clock_ticks_from_start() {
        let c = Clock::every(SimDuration::from_secs(30));
        let start = Timestamp::from_secs(17);
        assert_eq!(c.first_tick(start), start);
        assert_eq!(c.next_tick(start), Timestamp::from_secs(47));
    }

    #[test]
    fn epoch_aligned_clock_snaps_to_slot_boundaries() {
        let c = Clock::aligned(SimDuration::SETTLEMENT_PERIOD);
        // Mid-slot start snaps forward to the half-hour …
        assert_eq!(
            c.first_tick(Timestamp::from_secs(100)),
            Timestamp::from_secs(1_800)
        );
        // … a boundary start is already a tick.
        assert_eq!(
            c.first_tick(Timestamp::from_secs(3_600)),
            Timestamp::from_secs(3_600)
        );
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = Clock::every(SimDuration::ZERO);
    }
}
