//! Components and typed ports.
//!
//! A [`Component`] is one box in the co-simulation graph: it reacts to
//! clock ticks, self-scheduled wake-ups, and messages arriving on its
//! input ports, and emits messages on its output ports. Ports are plain
//! `usize` indices *inside* a component (each component names its own
//! with `pub const`s); the typed [`OutPort`]/[`InPort`] handles exist at
//! the wiring layer, where [`crate::EngineBuilder::connect`] enforces at
//! compile time that a wire carries one payload type end to end.

use crate::engine::Ctx;
use crate::Clock;
use std::any::Any;
use std::marker::PhantomData;
use std::rc::Rc;

/// Identifies a component inside one engine's graph (its insertion
/// index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// The insertion index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A type-erased event payload.
///
/// Payloads are reference-counted so one `emit` fans out to any number
/// of receivers without cloning the value; receivers borrow it through
/// [`Payload::downcast`]. The engine is single-threaded by design
/// (determinism comes from one totally ordered event stream), hence
/// `Rc`, not `Arc`.
#[derive(Clone)]
pub struct Payload(Rc<dyn Any>);

impl Payload {
    /// Wraps a value.
    pub fn new<T: 'static>(value: T) -> Self {
        Payload(Rc::new(value))
    }

    /// Borrows the value as `T`, `None` on a type mismatch.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Borrows the value as `T`, panicking with the expected type name
    /// on a mismatch. Wiring is type-checked at connect time, so a
    /// mismatch here means a component declared the wrong type for one
    /// of its own ports — a bug, not an input condition.
    pub fn expect<T: 'static>(&self) -> &T {
        self.downcast::<T>().unwrap_or_else(|| {
            panic!(
                "payload is not a {} (mis-declared port type)",
                std::any::type_name::<T>()
            )
        })
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload(..)")
    }
}

/// A typed handle to output port `index` of component `component`.
///
/// Obtained from the component's port constructor (e.g.
/// `WorkloadSource::out_jobs(id)`), consumed by
/// [`crate::EngineBuilder::connect`].
#[derive(Clone, Copy, Debug)]
pub struct OutPort<T> {
    pub(crate) component: ComponentId,
    pub(crate) index: usize,
    pub(crate) _payload: PhantomData<fn() -> T>,
}

impl<T> OutPort<T> {
    /// A handle to output port `index` of `component`. Component types
    /// expose named constructors wrapping this so the payload type is
    /// stated once, next to the port's definition.
    pub fn new(component: ComponentId, index: usize) -> Self {
        OutPort {
            component,
            index,
            _payload: PhantomData,
        }
    }
}

/// A typed handle to input port `index` of component `component`.
#[derive(Clone, Copy, Debug)]
pub struct InPort<T> {
    pub(crate) component: ComponentId,
    pub(crate) index: usize,
    pub(crate) _payload: PhantomData<fn(T)>,
}

impl<T> InPort<T> {
    /// A handle to input port `index` of `component` (see
    /// [`OutPort::new`] on why components wrap this).
    pub fn new(component: ComponentId, index: usize) -> Self {
        InPort {
            component,
            index,
            _payload: PhantomData,
        }
    }
}

/// One box in the component graph.
///
/// Lifecycle: when the first `run_*` call opens the simulation window
/// the engine invokes [`Component::on_start`] once per component in
/// insertion order, then schedules each clocked component's first tick.
/// From there everything is event-driven: [`Component::on_tick`] fires
/// on the declared [`Clock`] (the engine re-schedules the next tick
/// automatically while it lies inside the window),
/// [`Component::on_wake`] fires at instants the component itself asked
/// for via [`Ctx::wake_at`], and [`Component::on_event`] fires per
/// arriving message.
///
/// The `as_any`/`as_any_mut` pair is how callers get concrete results
/// back out of a finished graph (`Engine::get::<C>`); implement both as
/// `self`.
pub trait Component: 'static {
    /// Component name for diagnostics.
    fn name(&self) -> &str;

    /// The fixed-step clock, for clocked components. `None` (the
    /// default) means purely event-driven.
    fn clock(&self) -> Option<Clock> {
        None
    }

    /// Called once when the simulation window opens.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called on each tick of the declared [`Clock`].
    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called at instants requested via [`Ctx::wake_at`].
    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a message arrives on input port `port`.
    fn on_event(&mut self, port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
        let _ = (port, payload, ctx);
    }

    /// `self`, for downcasting finished components to their concrete
    /// type.
    fn as_any(&self) -> &dyn Any;

    /// `self`, mutably.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip_and_mismatch() {
        let p = Payload::new(41i64);
        assert_eq!(p.downcast::<i64>(), Some(&41));
        assert_eq!(p.downcast::<String>(), None);
        let q = p.clone();
        assert_eq!(q.expect::<i64>(), &41);
    }

    #[test]
    #[should_panic(expected = "mis-declared port type")]
    fn expect_panics_on_mismatch() {
        let p = Payload::new("job");
        let _ = p.expect::<u32>();
    }
}
