//! The cluster/scheduler as an event-driven component.

use crate::component::{Component, ComponentId, InPort, OutPort, Payload};
use crate::components::curtailment::CapacityOrder;
use crate::components::demand_response::DemandResponseOrder;
use crate::engine::Ctx;
use iriscast_grid::IntensitySeries;
use iriscast_units::{CarbonIntensity, Period, SimDuration, Timestamp};
use iriscast_workload::{
    ClusterSim, Job, ScheduledJob, Scheduler, SchedulerContext, SimOutcome, WorkloadResult,
};
use std::any::Any;
use std::collections::BTreeSet;

/// A change in driven utilisation on a set of nodes: a job started
/// (`level` = its CPU utilisation) or completed (`level` = 0).
///
/// This is the cluster's feed to a live telemetry collector — the jobs →
/// utilisation → power → energy loop closed inside the event graph
/// instead of through a post-hoc trace conversion.
#[derive(Clone, Debug, PartialEq)]
pub struct UtilizationUpdate {
    /// Nodes whose level changed.
    pub node_ids: Vec<u32>,
    /// New driven utilisation on those nodes, `[0, 1]`.
    pub level: f64,
}

/// The deferrable work currently parked in a cluster's queue — the
/// capacity a demand-response aggregator can bid back to the grid.
/// Emitted on [`ClusterComponent::OUT_BACKLOG`] whenever the figure
/// changes (only on change, so quiet clusters stay quiet on the wire).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeferrableBacklog {
    /// Deferrable jobs waiting in the queue.
    pub jobs: u32,
    /// Total nodes those jobs would occupy.
    pub nodes: u32,
}

/// The cluster and its scheduling policy, driven by events instead of
/// [`ClusterSim`]'s internal time loop.
///
/// Jobs arrive on [`ClusterComponent::in_jobs`], the grid signal on
/// [`ClusterComponent::in_intensity`]; completions are self-scheduled
/// wake-ups. Every event re-runs the policy at that instant over the
/// current queue — so a fresh intensity slot re-evaluates deferred jobs
/// exactly the way [`ClusterSim`]'s settlement-boundary wake does, and
/// node-occupancy changes stream out as [`UtilizationUpdate`]s.
///
/// One semantic difference from the batch simulator, by design: the
/// policy decides per *event*, so two jobs submitted at the same instant
/// are offered one at a time (in arrival order) rather than as one
/// batch. Both orders are deterministic; policies see the same cluster
/// state either way.
pub struct ClusterComponent {
    total_nodes: u32,
    policy: Box<dyn Scheduler>,
    signal_step: SimDuration,
    free: BTreeSet<u32>,
    queue: Vec<Job>,
    /// Running jobs with their occupied node ids.
    running_nodes: Vec<(Timestamp, Vec<u32>)>,
    /// `(end, width)` view for the policy, sorted by end ascending.
    running: Vec<(Timestamp, u32)>,
    scheduled: Vec<ScheduledJob>,
    /// The latest received signal, sample-and-hold. Exposed to policies
    /// as a single-slot series built at decision time, so existing
    /// [`Scheduler`] policies (which read
    /// [`SchedulerContext::intensity_now`]) work unmodified — and the
    /// held value never expires between messages, which matters when a
    /// job arrival and the new slot's intensity land at the same instant.
    signal: Option<CarbonIntensity>,
    /// Capacity fraction in force (1.0 = uncurtailed), sample-and-hold
    /// from [`ClusterComponent::IN_CURTAILMENT`].
    capacity_fraction: f64,
    /// Whether a demand-response hold is parked on the deferrable queue.
    dr_hold: bool,
    /// Last backlog figure emitted, to publish only on change.
    last_backlog: Option<DeferrableBacklog>,
}

impl ClusterComponent {
    /// Input port: job submissions ([`Job`]).
    pub const IN_JOBS: usize = 0;
    /// Input port: grid signal updates ([`CarbonIntensity`]).
    pub const IN_INTENSITY: usize = 1;
    /// Input port: [`CapacityOrder`]s from a curtailment authority.
    pub const IN_CURTAILMENT: usize = 2;
    /// Input port: [`DemandResponseOrder`]s parking the deferrable queue.
    pub const IN_DEMAND_RESPONSE: usize = 3;
    /// Output port: [`UtilizationUpdate`]s as jobs start and complete.
    pub const OUT_UTILIZATION: usize = 0;
    /// Output port: [`DeferrableBacklog`] whenever the parked-work
    /// figure changes.
    pub const OUT_BACKLOG: usize = 1;

    /// A cluster of `nodes` identical nodes running `policy`. Refuses an
    /// empty cluster like [`ClusterSim::try_new`].
    pub fn new(nodes: u32, policy: Box<dyn Scheduler>) -> WorkloadResult<Self> {
        // Reuse the simulator's validation so the refusal is the same
        // typed error.
        ClusterSim::try_new(nodes)?;
        Ok(ClusterComponent {
            total_nodes: nodes,
            policy,
            signal_step: SimDuration::SETTLEMENT_PERIOD,
            free: (0..nodes).collect(),
            queue: Vec::new(),
            running_nodes: Vec::new(),
            running: Vec::new(),
            scheduled: Vec::new(),
            signal: None,
            capacity_fraction: 1.0,
            dr_hold: false,
            last_backlog: None,
        })
    }

    /// Overrides the assumed width of one signal slot (how long a
    /// received intensity value stays current). Defaults to the GB
    /// half-hourly settlement period.
    pub fn with_signal_step(mut self, step: SimDuration) -> Self {
        assert!(step.as_secs() > 0, "signal step must be positive");
        self.signal_step = step;
        self
    }

    /// Typed handle to [`ClusterComponent::IN_JOBS`] for wiring.
    pub fn in_jobs(id: ComponentId) -> InPort<Job> {
        InPort::new(id, Self::IN_JOBS)
    }

    /// Typed handle to [`ClusterComponent::IN_INTENSITY`] for wiring.
    pub fn in_intensity(id: ComponentId) -> InPort<CarbonIntensity> {
        InPort::new(id, Self::IN_INTENSITY)
    }

    /// Typed handle to [`ClusterComponent::IN_CURTAILMENT`] for wiring.
    pub fn in_curtailment(id: ComponentId) -> InPort<CapacityOrder> {
        InPort::new(id, Self::IN_CURTAILMENT)
    }

    /// Typed handle to [`ClusterComponent::IN_DEMAND_RESPONSE`] for wiring.
    pub fn in_demand_response(id: ComponentId) -> InPort<DemandResponseOrder> {
        InPort::new(id, Self::IN_DEMAND_RESPONSE)
    }

    /// Typed handle to [`ClusterComponent::OUT_UTILIZATION`] for wiring.
    pub fn out_utilization(id: ComponentId) -> OutPort<UtilizationUpdate> {
        OutPort::new(id, Self::OUT_UTILIZATION)
    }

    /// Typed handle to [`ClusterComponent::OUT_BACKLOG`] for wiring.
    pub fn out_backlog(id: ComponentId) -> OutPort<DeferrableBacklog> {
        OutPort::new(id, Self::OUT_BACKLOG)
    }

    /// The capacity fraction currently in force (1.0 = uncurtailed).
    pub fn capacity_fraction(&self) -> f64 {
        self.capacity_fraction
    }

    /// Whether a demand-response hold is parked on the deferrable queue.
    pub fn dr_hold(&self) -> bool {
        self.dr_hold
    }

    /// The schedule so far, packaged in the batch simulator's result
    /// shape over `window` (jobs still queued become `unstarted`).
    pub fn outcome(&self, window: Period) -> SimOutcome {
        SimOutcome {
            scheduled: self.scheduled.clone(),
            unstarted: self.queue.clone(),
            total_nodes: self.total_nodes,
            period: window,
        }
    }

    /// Jobs started so far, in start order.
    pub fn started(&self) -> &[ScheduledJob] {
        &self.scheduled
    }

    /// Releases every running job whose end is due, returning its nodes
    /// to the free pool and publishing the idle transition.
    fn release_due(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut i = 0;
        while i < self.running_nodes.len() {
            if self.running_nodes[i].0 <= now {
                let (_, ids) = self.running_nodes.swap_remove(i);
                self.free.extend(ids.iter().copied());
                ctx.emit(
                    Self::OUT_UTILIZATION,
                    UtilizationUpdate {
                        node_ids: ids,
                        level: 0.0,
                    },
                );
            } else {
                i += 1;
            }
        }
        self.running.clear();
        self.running.extend(
            self.running_nodes
                .iter()
                .map(|(end, ids)| (*end, ids.len() as u32)),
        );
        self.running.sort_by_key(|(end, _)| *end);
    }

    /// One decision point: release due completions, then let the policy
    /// start as much as it wants at this instant — [`ClusterSim`]'s
    /// inner loop, verbatim, with completions becoming wake-ups and
    /// starts becoming utilisation messages.
    ///
    /// Curtailment caps the nodes the policy may *add*: with a capacity
    /// order of fraction `f` in force, the policy is offered only
    /// `⌊total·f⌋ − in-use` free nodes (never negative — running jobs
    /// are not killed, the cap squeezes new starts). A demand-response
    /// hold additionally parks deferrable jobs whose deadline has not
    /// passed, exactly the jobs a
    /// [`CarbonAwareScheduler`](iriscast_workload::scheduler::CarbonAwareScheduler)
    /// would consider elastic. Uncurtailed and hold-free, the decision
    /// point is byte-for-byte the original loop.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>) {
        self.release_due(ctx);
        let now = ctx.now();
        // The held signal as a one-slot series anchored on the current
        // settlement slot — what a policy's `intensity_now()` expects.
        let held = self.signal.map(|ci| {
            IntensitySeries::new(now.floor_to(self.signal_step), self.signal_step, vec![ci])
        });
        let cap = (f64::from(self.total_nodes) * self.capacity_fraction).floor() as u32;
        loop {
            let in_use = self.total_nodes - self.free.len() as u32;
            let admit_budget = cap.saturating_sub(in_use).min(self.free.len() as u32);
            let pick = {
                let sched_ctx = SchedulerContext {
                    free_nodes: admit_budget,
                    total_nodes: self.total_nodes,
                    now,
                    running: &self.running,
                    intensity: held.as_ref(),
                };
                if self.dr_hold {
                    // Offer only the un-parked view, mapping the pick
                    // back to the true queue index (the same view/map
                    // pattern CarbonAwareScheduler uses internally).
                    let mut view = Vec::with_capacity(self.queue.len());
                    let mut map = Vec::with_capacity(self.queue.len());
                    for (i, job) in self.queue.iter().enumerate() {
                        let parked = job.deferrable && job.latest_start.is_none_or(|d| d > now);
                        if !parked {
                            view.push(job.clone());
                            map.push(i);
                        }
                    }
                    self.policy.pick(&view, &sched_ctx).map(|i| map[i])
                } else {
                    self.policy.pick(&self.queue, &sched_ctx)
                }
            };
            let Some(idx) = pick else {
                break;
            };
            let job = self.queue.remove(idx);
            assert!(
                job.nodes <= admit_budget,
                "policy {} oversubscribed the cluster",
                self.policy.name()
            );
            let node_ids: Vec<u32> = self.free.iter().copied().take(job.nodes as usize).collect();
            for id in &node_ids {
                self.free.remove(id);
            }
            let end = now + job.runtime;
            self.running_nodes.push((end, node_ids.clone()));
            self.running.push((end, job.nodes));
            self.running.sort_by_key(|(e, _)| *e);
            ctx.wake_at(end);
            ctx.emit(
                Self::OUT_UTILIZATION,
                UtilizationUpdate {
                    node_ids: node_ids.clone(),
                    level: job.cpu_utilization,
                },
            );
            self.scheduled.push(ScheduledJob {
                start: now,
                end,
                node_ids,
                job,
            });
        }
        self.publish_backlog(ctx);
    }

    /// Publishes the deferrable-backlog figure when it changed — the
    /// feed a demand-response aggregator sizes its bids from.
    fn publish_backlog(&mut self, ctx: &mut Ctx<'_>) {
        let mut jobs = 0u32;
        let mut nodes = 0u32;
        for job in &self.queue {
            if job.deferrable {
                jobs += 1;
                nodes += job.nodes;
            }
        }
        let backlog = DeferrableBacklog { jobs, nodes };
        if self.last_backlog != Some(backlog) {
            self.last_backlog = Some(backlog);
            ctx.emit(Self::OUT_BACKLOG, backlog);
        }
    }
}

impl Component for ClusterComponent {
    fn name(&self) -> &str {
        "cluster"
    }

    fn on_event(&mut self, port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
        match port {
            Self::IN_JOBS => {
                self.queue.push(payload.expect::<Job>().clone());
            }
            Self::IN_INTENSITY => {
                self.signal = Some(*payload.expect::<CarbonIntensity>());
            }
            Self::IN_CURTAILMENT => {
                self.capacity_fraction = payload.expect::<CapacityOrder>().fraction.clamp(0.0, 1.0);
            }
            Self::IN_DEMAND_RESPONSE => {
                self.dr_hold = payload.expect::<DemandResponseOrder>().hold;
            }
            other => panic!("cluster has no input port {other}"),
        }
        self.dispatch(ctx);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.dispatch(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::WorkloadSource;
    use crate::engine::EngineBuilder;
    use iriscast_workload::scheduler::FcfsScheduler;
    use iriscast_workload::WorkloadError;

    fn job(id: u64, submit_h: f64, runtime_h: f64, nodes: u32) -> Job {
        Job::new(
            id,
            Timestamp::from_hours(submit_h),
            SimDuration::from_hours(runtime_h),
            nodes,
        )
    }

    fn day() -> Period {
        Period::snapshot_24h()
    }

    fn run_cluster(jobs: Vec<Job>) -> SimOutcome {
        let mut b = EngineBuilder::new(day());
        let src = b.add(Box::new(WorkloadSource::new(jobs).unwrap()));
        let cluster = b.add(Box::new(
            ClusterComponent::new(4, Box::new(FcfsScheduler)).unwrap(),
        ));
        b.connect(
            WorkloadSource::out_jobs(src),
            ClusterComponent::in_jobs(cluster),
        );
        let mut engine = b.build();
        engine.run_to_horizon();
        engine
            .get::<ClusterComponent>(cluster)
            .unwrap()
            .outcome(day())
    }

    #[test]
    fn single_job_starts_at_submit() {
        let outcome = run_cluster(vec![job(0, 1.0, 2.0, 2)]);
        assert_eq!(outcome.scheduled.len(), 1);
        let s = &outcome.scheduled[0];
        assert_eq!(s.start, Timestamp::from_hours(1.0));
        assert_eq!(s.end, Timestamp::from_hours(3.0));
        assert_eq!(s.node_ids, vec![0, 1]);
    }

    #[test]
    fn queued_job_starts_at_completion() {
        // Both jobs want all 4 nodes: the second waits for the first.
        let outcome = run_cluster(vec![job(0, 0.0, 4.0, 4), job(1, 1.0, 1.0, 4)]);
        assert_eq!(outcome.scheduled.len(), 2);
        assert_eq!(outcome.scheduled[1].start, Timestamp::from_hours(4.0));
    }

    #[test]
    fn matches_batch_simulator_without_signal() {
        // No carbon signal and distinct submit instants: the event-driven
        // cluster reproduces ClusterSim's schedule exactly.
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                job(
                    i,
                    0.1 * i as f64,
                    0.7 + 0.05 * (i % 7) as f64,
                    1 + (i % 3) as u32,
                )
            })
            .collect();
        let event_outcome = run_cluster(jobs.clone());
        let batch = ClusterSim::new(4)
            .run(jobs, &mut FcfsScheduler, day())
            .scheduled;
        assert_eq!(event_outcome.scheduled, batch);
    }

    #[test]
    fn empty_cluster_refused() {
        let err = ClusterComponent::new(0, Box::new(FcfsScheduler)).err();
        assert_eq!(err, Some(WorkloadError::EmptyCluster));
    }
}
