//! The telemetry collector as a fixed-step clocked component.

use crate::clock::Clock;
use crate::component::{Component, ComponentId, InPort, Payload};
use crate::components::fault::FaultCommand;
use crate::components::UtilizationUpdate;
use crate::engine::Ctx;
use iriscast_telemetry::{
    SiteTelemetryConfig, SiteTelemetryResult, StepFaults, SteppedCollector, TelemetryResult,
    UtilizationSource,
};
use iriscast_units::{Period, Timestamp};
use std::any::Any;

/// A mutable per-node utilisation map fed by [`UtilizationUpdate`]
/// messages, readable as a [`UtilizationSource`].
///
/// Unlike the trace-backed sources this one is sample-and-hold: a node
/// reports whatever level was last driven onto it, regardless of the
/// query instant. That is exactly what a live meter sees.
#[derive(Clone, Debug)]
pub struct LiveUtilization {
    levels: Vec<f64>,
}

impl LiveUtilization {
    /// All `nodes` idle (level 0).
    pub fn idle(nodes: u32) -> Self {
        LiveUtilization {
            levels: vec![0.0; nodes as usize],
        }
    }

    /// Applies one update; node ids beyond the map are ignored.
    pub fn apply(&mut self, update: &UtilizationUpdate) {
        for &id in &update.node_ids {
            if let Some(slot) = self.levels.get_mut(id as usize) {
                *slot = update.level;
            }
        }
    }

    /// The current level of `node`, 0 if out of range.
    pub fn level(&self, node: u32) -> f64 {
        self.levels.get(node as usize).copied().unwrap_or(0.0)
    }
}

impl UtilizationSource for LiveUtilization {
    fn utilization(&self, node: u64, _t: Timestamp) -> f64 {
        self.levels.get(node as usize).copied().unwrap_or(0.0)
    }
}

/// How the collector reads node utilisation at each sample instant.
enum SourceMode {
    /// A fixed function of (node, time) — trace playback.
    Static(Box<dyn UtilizationSource>),
    /// A live map driven over [`CollectorComponent::IN_UTILIZATION`].
    Live(LiveUtilization),
}

/// The site telemetry collector as a clocked component: one
/// [`SteppedCollector::advance`] per tick of a fixed-step clock equal to
/// the configured sample step.
///
/// Because the stepped collector sweeps the same per-(chunk, instant)
/// kernel as the batch path, a graph containing only this component
/// reproduces `SiteCollector::collect` bit for bit — the property the
/// sim crate's test suite pins down.
///
/// Ordering note: the engine schedules first ticks at window open, so at
/// an instant where a job starts *and* a sample falls, the tick's
/// sequence number predates the job's start message — the collector
/// samples the pre-update level. This is deterministic sample-and-hold
/// (a meter reads just before the state change lands), and it is the
/// same convention the batch converter uses for half-open intervals.
/// [`FaultCommand`]s obey it too: a fault landing exactly on a sample
/// instant takes effect from the following sample.
pub struct CollectorComponent {
    stepped: Option<SteppedCollector>,
    source: SourceMode,
    /// Site-wide outages currently in force, driven over
    /// [`CollectorComponent::IN_FAULTS`]. All-clear sweeps take the
    /// fault-free kernel path, so an unwired faults port changes
    /// nothing.
    faults: StepFaults,
}

impl CollectorComponent {
    /// Input port: [`UtilizationUpdate`]s (only meaningful in live mode).
    pub const IN_UTILIZATION: usize = 0;
    /// Input port: [`FaultCommand`]s from a [`crate::FaultInjector`].
    pub const IN_FAULTS: usize = 1;

    /// A collector sampling a fixed (trace-backed) utilisation source.
    pub fn with_source(
        cfg: SiteTelemetryConfig,
        period: Period,
        source: Box<dyn UtilizationSource>,
    ) -> TelemetryResult<Self> {
        Ok(CollectorComponent {
            stepped: Some(SteppedCollector::new(cfg, period)?),
            source: SourceMode::Static(source),
            faults: StepFaults::clear(),
        })
    }

    /// A collector sampling a live utilisation map fed over
    /// [`CollectorComponent::IN_UTILIZATION`]. Starts all-idle.
    pub fn live(cfg: SiteTelemetryConfig, period: Period) -> TelemetryResult<Self> {
        let nodes = cfg.total_nodes();
        Ok(CollectorComponent {
            stepped: Some(SteppedCollector::new(cfg, period)?),
            source: SourceMode::Live(LiveUtilization::idle(nodes)),
            faults: StepFaults::clear(),
        })
    }

    /// Typed handle to [`CollectorComponent::IN_UTILIZATION`] for wiring.
    pub fn in_utilization(id: ComponentId) -> InPort<UtilizationUpdate> {
        InPort::new(id, Self::IN_UTILIZATION)
    }

    /// Typed handle to [`CollectorComponent::IN_FAULTS`] for wiring.
    pub fn in_faults(id: ComponentId) -> InPort<FaultCommand> {
        InPort::new(id, Self::IN_FAULTS)
    }

    /// The outages currently in force on this collector's instruments.
    pub fn active_faults(&self) -> StepFaults {
        self.faults
    }

    /// Sample instants not yet collected.
    pub fn remaining(&self) -> usize {
        self.stepped.as_ref().map_or(0, |s| s.remaining())
    }

    /// True once every sample instant has been collected.
    pub fn is_complete(&self) -> bool {
        self.stepped.as_ref().is_none_or(|s| s.is_complete())
    }

    /// The live utilisation map, if this collector runs in live mode.
    pub fn live_levels(&self) -> Option<&LiveUtilization> {
        match &self.source {
            SourceMode::Live(live) => Some(live),
            SourceMode::Static(_) => None,
        }
    }

    /// Finalises the sweep into a [`SiteTelemetryResult`]; a sweep cut
    /// short (the engine stopped before the horizon) is the
    /// `IncompleteSweep` typed error.
    ///
    /// # Panics
    ///
    /// If called twice.
    pub fn finish(&mut self) -> TelemetryResult<SiteTelemetryResult> {
        self.stepped
            .take()
            .expect("collector already finished")
            .finish()
    }
}

impl Component for CollectorComponent {
    fn name(&self) -> &str {
        "site-collector"
    }

    fn clock(&self) -> Option<Clock> {
        let step = self
            .stepped
            .as_ref()
            .expect("collector already finished")
            .config()
            .sample_step;
        // Window-anchored, not epoch-aligned: the batch sampling grid
        // starts at the period start.
        Some(Clock::every(step))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let period = self
            .stepped
            .as_ref()
            .expect("collector already finished")
            .period();
        assert!(
            ctx.window() == period,
            "collector period {:?} must equal the engine window {:?} \
             so clock ticks land exactly on the sampling grid",
            period,
            ctx.window(),
        );
    }

    fn on_tick(&mut self, _ctx: &mut Ctx<'_>) {
        let Some(stepped) = self.stepped.as_mut() else {
            return;
        };
        match &self.source {
            SourceMode::Static(src) => stepped.advance_faulted(&**src, self.faults),
            SourceMode::Live(live) => stepped.advance_faulted(live, self.faults),
        };
    }

    fn on_event(&mut self, port: usize, payload: &Payload, _ctx: &mut Ctx<'_>) {
        match port {
            Self::IN_UTILIZATION => {
                if let SourceMode::Live(live) = &mut self.source {
                    live.apply(payload.expect::<UtilizationUpdate>());
                }
            }
            Self::IN_FAULTS => match payload.expect::<FaultCommand>() {
                FaultCommand::Down { method, mode } => self.faults.set(*method, Some(*mode)),
                FaultCommand::Recover { method } => self.faults.set(*method, None),
            },
            other => panic!("collector has no input port {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use iriscast_telemetry::{
        NodeGroupTelemetry, NodePowerModel, SiteCollector, SyntheticUtilization,
    };
    use iriscast_units::{Power, SimDuration};

    fn config() -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "SIM-01",
            vec![
                NodeGroupTelemetry {
                    label: "compute".into(),
                    count: 48,
                    power_model: NodePowerModel::linear(
                        Power::from_watts(140.0),
                        Power::from_watts(620.0),
                    ),
                },
                NodeGroupTelemetry {
                    label: "gpu".into(),
                    count: 70, // spills into a second 64-node chunk
                    power_model: NodePowerModel::linear(
                        Power::from_watts(250.0),
                        Power::from_watts(900.0),
                    ),
                },
            ],
            0xC0_5157,
        );
        cfg.ipmi_node_coverage = 0.7;
        cfg
    }

    #[test]
    fn clocked_graph_reproduces_batch_collect_bit_for_bit() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(6.0));
        let cfg = config();
        let source = SyntheticUtilization::calibrated(0.6, 9);
        let batch = SiteCollector::new(cfg.clone())
            .collect(period, &source, 4)
            .unwrap();

        let mut b = EngineBuilder::new(period);
        let c = b.add(Box::new(
            CollectorComponent::with_source(cfg, period, Box::new(source)).unwrap(),
        ));
        let mut engine = b.build();
        engine.run_to_horizon();
        let collector = engine.get_mut::<CollectorComponent>(c).unwrap();
        assert!(collector.is_complete());
        let clocked = collector.finish().unwrap();
        assert!(clocked == batch, "clocked sweep diverged from batch path");
    }

    #[test]
    fn stopping_short_is_an_incomplete_sweep_error() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(6.0));
        let mut b = EngineBuilder::new(period);
        let c = b.add(Box::new(
            CollectorComponent::with_source(
                config(),
                period,
                Box::new(SyntheticUtilization::calibrated(0.6, 9)),
            )
            .unwrap(),
        ));
        let mut engine = b.build();
        engine.run_until(Timestamp::from_hours(2.0));
        let collector = engine.get_mut::<CollectorComponent>(c).unwrap();
        assert!(!collector.is_complete());
        let err = collector.finish().unwrap_err();
        assert!(err.to_string().contains("finalised after"));
    }
}
