//! Grid-driven load curtailment as a signal-to-order translator.

use crate::component::{Component, ComponentId, InPort, OutPort, Payload};
use crate::engine::Ctx;
use iriscast_units::{CarbonIntensity, Timestamp};
use std::any::Any;

/// A capacity order on the wire: the fraction of its nodes a cluster may
/// keep scheduling onto. `1.0` lifts a curtailment, `0.0` is a full
/// stop for *new* starts (running jobs are never killed — HPC
/// curtailment sheds future load, it does not checkpoint-preempt).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CapacityOrder {
    /// Allowed capacity as a fraction of total nodes, `[0, 1]`.
    pub fraction: f64,
}

/// Translates a grid intensity signal into [`CapacityOrder`]s: while
/// the published intensity exceeds `threshold` the connected clusters
/// are ordered down to `level` of their capacity; when it relaxes they
/// are ordered back to full. Orders are emitted only on state
/// *transitions*, so a cluster fanned to several signals is not spammed
/// every slot.
///
/// One `Curtailment` fans out to any number of clusters via the
/// engine's ordinary port fanout — the multi-site scenario wires one
/// grid signal through one curtailment authority into every site.
pub struct Curtailment {
    threshold: CarbonIntensity,
    level: f64,
    active: bool,
    transitions: Vec<(Timestamp, bool)>,
}

impl Curtailment {
    /// Input port: grid intensity updates ([`CarbonIntensity`]).
    pub const IN_INTENSITY: usize = 0;
    /// Output port: [`CapacityOrder`]s on curtail/release transitions.
    pub const OUT_ORDERS: usize = 0;

    /// Curtails to `level` (fraction of capacity) while intensity
    /// exceeds `threshold`.
    ///
    /// # Panics
    /// If `level` is outside `[0, 1]`.
    pub fn new(threshold: CarbonIntensity, level: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&level),
            "curtailment level must lie in [0, 1]"
        );
        Curtailment {
            threshold,
            level,
            active: false,
            transitions: Vec::new(),
        }
    }

    /// Typed handle to [`Curtailment::IN_INTENSITY`] for wiring.
    pub fn in_intensity(id: ComponentId) -> InPort<CarbonIntensity> {
        InPort::new(id, Self::IN_INTENSITY)
    }

    /// Typed handle to [`Curtailment::OUT_ORDERS`] for wiring.
    pub fn out_orders(id: ComponentId) -> OutPort<CapacityOrder> {
        OutPort::new(id, Self::OUT_ORDERS)
    }

    /// Whether a curtailment is currently in force.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Every curtail (`true`) / release (`false`) transition so far, in
    /// order — the audit log the property suite checks against the
    /// intensity trace's stress episodes.
    pub fn transitions(&self) -> &[(Timestamp, bool)] {
        &self.transitions
    }
}

impl Component for Curtailment {
    fn name(&self) -> &str {
        "curtailment"
    }

    fn on_event(&mut self, port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
        assert_eq!(port, Self::IN_INTENSITY, "curtailment has one input port");
        let stressed = *payload.expect::<CarbonIntensity>() > self.threshold;
        if stressed != self.active {
            self.active = stressed;
            self.transitions.push((ctx.now(), stressed));
            ctx.emit(
                Self::OUT_ORDERS,
                CapacityOrder {
                    fraction: if stressed { self.level } else { 1.0 },
                },
            );
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::GridSignal;
    use crate::engine::EngineBuilder;
    use iriscast_grid::IntensitySeries;
    use iriscast_units::{Period, SimDuration};

    struct Recorder {
        got: Vec<(Timestamp, f64)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got
                .push((ctx.now(), payload.expect::<CapacityOrder>().fraction));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn orders_fire_only_on_transitions() {
        // Slots: clean, clean, dirty, dirty, clean — one curtail order at
        // the first dirty slot, one release at the clean one after.
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.5));
        let values = [100.0, 100.0, 300.0, 300.0, 100.0]
            .iter()
            .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
            .collect();
        let series = IntensitySeries::new(window.start(), SimDuration::SETTLEMENT_PERIOD, values);
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series)));
        let c = b.add(Box::new(Curtailment::new(
            CarbonIntensity::from_grams_per_kwh(200.0),
            0.25,
        )));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), Curtailment::in_intensity(c));
        b.connect(Curtailment::out_orders(c), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        assert_eq!(
            engine.get::<Recorder>(r).unwrap().got,
            vec![
                (Timestamp::from_secs(3_600), 0.25),
                (Timestamp::from_secs(7_200), 1.0),
            ]
        );
        let c = engine.get::<Curtailment>(c).unwrap();
        assert!(!c.is_active());
        assert_eq!(
            c.transitions(),
            &[
                (Timestamp::from_secs(3_600), true),
                (Timestamp::from_secs(7_200), false),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_level_refused() {
        let _ = Curtailment::new(CarbonIntensity::from_grams_per_kwh(200.0), 1.5);
    }

    /// Regression pin for the grid signal's mid-slot open guard: a
    /// window opening *exactly* on a slot boundary, into an already
    /// stressed slot, must publish that slot once (first tick only, no
    /// on_start duplicate) — so the curtailment sees one message and
    /// trips exactly one order at the open instant.
    #[test]
    fn slot_boundary_open_trips_exactly_one_order() {
        struct IntensityCount {
            got: Vec<Timestamp>,
        }
        impl Component for IntensityCount {
            fn name(&self) -> &str {
                "intensity-count"
            }
            fn on_event(&mut self, _port: usize, _payload: &Payload, ctx: &mut Ctx<'_>) {
                self.got.push(ctx.now());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        use crate::component::Payload;
        use crate::engine::Ctx;
        use std::any::Any;

        // Slots from the epoch: clean, dirty, dirty, clean. The window
        // opens at 1800 s — exactly the boundary of the first dirty slot.
        let full = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let values = [100.0, 320.0, 320.0, 100.0]
            .iter()
            .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
            .collect();
        let series = IntensitySeries::new(full.start(), SimDuration::SETTLEMENT_PERIOD, values);
        let window = Period::new(Timestamp::from_secs(1_800), Timestamp::from_secs(7_200));
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series)));
        let c = b.add(Box::new(Curtailment::new(
            CarbonIntensity::from_grams_per_kwh(200.0),
            0.5,
        )));
        let n = b.add(Box::new(IntensityCount { got: Vec::new() }));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), Curtailment::in_intensity(c));
        b.connect(GridSignal::out_intensity(g), InPort::new(n, 0));
        b.connect(Curtailment::out_orders(c), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        // One publish per boundary — no on_start duplicate at 1800.
        assert_eq!(
            engine
                .get::<IntensityCount>(n)
                .unwrap()
                .got
                .iter()
                .map(|t| t.as_secs())
                .collect::<Vec<_>>(),
            vec![1_800, 3_600, 5_400]
        );
        assert_eq!(
            engine.get::<Recorder>(r).unwrap().got,
            vec![
                (Timestamp::from_secs(1_800), 0.5),
                (Timestamp::from_secs(5_400), 1.0),
            ]
        );
    }
}
