//! Demand response: bidding deferred capacity back to the grid.

use crate::component::{Component, ComponentId, InPort, OutPort, Payload};
use crate::components::cluster::DeferrableBacklog;
use crate::engine::Ctx;
use iriscast_units::{CarbonIntensity, Timestamp};
use std::any::Any;

/// A demand-response order on the wire: while `hold` is set the cluster
/// keeps its deferrable queue parked (deadline-expired jobs still run).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DemandResponseOrder {
    /// Park deferrable work (`true`) or resume it (`false`).
    pub hold: bool,
}

/// One capacity bid: the deferred headroom offered to the grid over an
/// intensity spike. The `nodes` figure is the largest deferrable-backlog
/// node count seen while the spike was in force — the demand reduction
/// the site could firmly commit.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DemandBid {
    /// When the spike (and the hold) began.
    pub from: Timestamp,
    /// When the spike ended; `None` while still open.
    pub until: Option<Timestamp>,
    /// Peak node count of the deferrable backlog during the spike.
    pub nodes: u32,
}

/// The demand-response aggregator: watches the intensity signal for
/// spikes above `spike_threshold`, orders connected clusters to park
/// deferrable work while one is in force, and converts the parked
/// backlog into [`DemandBid`]s — the "negawatts" a site offers the grid
/// in return for shedding at the right moment.
///
/// Wiring: intensity on [`DemandResponse::IN_INTENSITY`], the cluster's
/// backlog feed on [`DemandResponse::IN_BACKLOG`], hold orders out on
/// [`DemandResponse::OUT_ORDERS`]. Orders are emitted on spike
/// transitions only.
pub struct DemandResponse {
    spike_threshold: CarbonIntensity,
    in_spike: bool,
    backlog: DeferrableBacklog,
    bids: Vec<DemandBid>,
}

impl DemandResponse {
    /// Input port: grid intensity updates ([`CarbonIntensity`]).
    pub const IN_INTENSITY: usize = 0;
    /// Input port: the cluster's [`DeferrableBacklog`] feed.
    pub const IN_BACKLOG: usize = 1;
    /// Output port: [`DemandResponseOrder`]s on spike transitions.
    pub const OUT_ORDERS: usize = 0;

    /// Responds to intensity spikes above `spike_threshold`.
    pub fn new(spike_threshold: CarbonIntensity) -> Self {
        DemandResponse {
            spike_threshold,
            in_spike: false,
            backlog: DeferrableBacklog { jobs: 0, nodes: 0 },
            bids: Vec::new(),
        }
    }

    /// Typed handle to [`DemandResponse::IN_INTENSITY`] for wiring.
    pub fn in_intensity(id: ComponentId) -> InPort<CarbonIntensity> {
        InPort::new(id, Self::IN_INTENSITY)
    }

    /// Typed handle to [`DemandResponse::IN_BACKLOG`] for wiring.
    pub fn in_backlog(id: ComponentId) -> InPort<DeferrableBacklog> {
        InPort::new(id, Self::IN_BACKLOG)
    }

    /// Typed handle to [`DemandResponse::OUT_ORDERS`] for wiring.
    pub fn out_orders(id: ComponentId) -> OutPort<DemandResponseOrder> {
        OutPort::new(id, Self::OUT_ORDERS)
    }

    /// Whether a spike (and therefore a hold) is currently in force.
    pub fn in_spike(&self) -> bool {
        self.in_spike
    }

    /// Every bid so far, in spike order; the last one is open
    /// (`until == None`) if the window closed mid-spike.
    pub fn bids(&self) -> &[DemandBid] {
        &self.bids
    }
}

impl Component for DemandResponse {
    fn name(&self) -> &str {
        "demand-response"
    }

    fn on_event(&mut self, port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
        match port {
            Self::IN_INTENSITY => {
                let spiking = *payload.expect::<CarbonIntensity>() > self.spike_threshold;
                if spiking == self.in_spike {
                    return;
                }
                self.in_spike = spiking;
                if spiking {
                    self.bids.push(DemandBid {
                        from: ctx.now(),
                        until: None,
                        nodes: self.backlog.nodes,
                    });
                } else if let Some(bid) = self.bids.last_mut() {
                    bid.until = Some(ctx.now());
                }
                ctx.emit(Self::OUT_ORDERS, DemandResponseOrder { hold: spiking });
            }
            Self::IN_BACKLOG => {
                self.backlog = *payload.expect::<DeferrableBacklog>();
                if self.in_spike {
                    if let Some(bid) = self.bids.last_mut() {
                        bid.nodes = bid.nodes.max(self.backlog.nodes);
                    }
                }
            }
            other => panic!("demand-response has no input port {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Payload;
    use crate::components::GridSignal;
    use crate::engine::EngineBuilder;
    use iriscast_grid::IntensitySeries;
    use iriscast_units::{Period, SimDuration};

    /// Feeds a scripted backlog at fixed instants.
    struct BacklogScript {
        script: Vec<(Timestamp, DeferrableBacklog)>,
    }

    impl Component for BacklogScript {
        fn name(&self) -> &str {
            "backlog-script"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some((t, _)) = self.script.first() {
                ctx.wake_at(*t);
            }
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
            while self.script.first().is_some_and(|(t, _)| *t <= ctx.now()) {
                let (_, b) = self.script.remove(0);
                ctx.emit(0, b);
            }
            if let Some((t, _)) = self.script.first() {
                ctx.wake_at(*t);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Recorder {
        got: Vec<(Timestamp, bool)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got
                .push((ctx.now(), payload.expect::<DemandResponseOrder>().hold));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn spikes_open_and_close_bids_at_peak_backlog() {
        // Slots: clean, spike, spike, clean.
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let values = [100.0, 320.0, 310.0, 90.0]
            .iter()
            .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
            .collect();
        let series = IntensitySeries::new(window.start(), SimDuration::SETTLEMENT_PERIOD, values);
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series)));
        let dr = b.add(Box::new(DemandResponse::new(
            CarbonIntensity::from_grams_per_kwh(300.0),
        )));
        let feed = b.add(Box::new(BacklogScript {
            script: vec![
                (
                    Timestamp::from_secs(2_000),
                    DeferrableBacklog { jobs: 2, nodes: 12 },
                ),
                (
                    Timestamp::from_secs(2_500),
                    DeferrableBacklog { jobs: 3, nodes: 20 },
                ),
                (
                    Timestamp::from_secs(4_000),
                    DeferrableBacklog { jobs: 1, nodes: 4 },
                ),
            ],
        }));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(
            GridSignal::out_intensity(g),
            DemandResponse::in_intensity(dr),
        );
        b.connect(
            crate::component::OutPort::<DeferrableBacklog>::new(feed, 0),
            DemandResponse::in_backlog(dr),
        );
        b.connect(DemandResponse::out_orders(dr), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        // Hold at the spike's first slot (1800 s), release at 5400 s.
        assert_eq!(
            engine.get::<Recorder>(r).unwrap().got,
            vec![
                (Timestamp::from_secs(1_800), true),
                (Timestamp::from_secs(5_400), false),
            ]
        );
        let dr = engine.get::<DemandResponse>(dr).unwrap();
        assert!(!dr.in_spike());
        // The bid covers the spike and carries its peak backlog (20
        // nodes at 2500 s; the 4-node update landed after release).
        assert_eq!(
            dr.bids(),
            &[DemandBid {
                from: Timestamp::from_secs(1_800),
                until: Some(Timestamp::from_secs(5_400)),
                nodes: 20,
            }]
        );
    }
}
