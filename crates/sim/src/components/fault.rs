//! Meter dropout/recovery injection as an event source.

use crate::component::{Component, ComponentId, OutPort};
use crate::engine::Ctx;
use iriscast_telemetry::{DropoutMode, MeterKind};
use iriscast_units::{Period, Timestamp};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// One scripted site-wide meter outage: `method` is dark for
/// `window` (half-open: dark at the start instant, reporting again at
/// the end instant), reading as `mode` while down.
#[derive(Clone, Debug, PartialEq)]
pub struct MeterOutage {
    /// The on-line method that goes dark.
    pub method: MeterKind,
    /// How the outage reads (stale hold-last vs NaN gap).
    pub mode: DropoutMode,
    /// When the instrument is dark, `[start, end)`.
    pub window: Period,
}

/// A fault transition on the wire: the injector's output message.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultCommand {
    /// `method` just went dark, reading as `mode` until recovery.
    Down {
        /// The method going dark.
        method: MeterKind,
        /// How it reads while dark.
        mode: DropoutMode,
    },
    /// `method` is reporting again.
    Recover {
        /// The method recovering.
        method: MeterKind,
    },
}

/// Why a fault script was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// Two outages of the same method overlap — the down/recover state
    /// machine would corrupt (back-to-back outages sharing a boundary
    /// instant are fine: recovery is processed before the next down).
    OverlappingOutages {
        /// The doubly-faulted method.
        method: MeterKind,
        /// End of the earlier outage.
        first_end: Timestamp,
        /// Start of the later, overlapping outage.
        second_start: Timestamp,
    },
    /// An outage window of zero (or negative) length.
    EmptyOutage {
        /// The method of the degenerate outage.
        method: MeterKind,
    },
    /// The facility meter cannot be injected: its readings derive from
    /// the PDU aggregate through a cumulative register, so facility
    /// outages are modelled by faulting the PDU feed.
    FacilityNotInjectable,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::OverlappingOutages {
                method,
                first_end,
                second_start,
            } => write!(
                f,
                "{method} outages overlap: one runs until t={} s, the next \
                 starts at t={} s",
                first_end.as_secs(),
                second_start.as_secs()
            ),
            FaultError::EmptyOutage { method } => {
                write!(f, "{method} outage window is empty")
            }
            FaultError::FacilityNotInjectable => write!(
                f,
                "facility readings derive from the PDU aggregate; fault the \
                 PDU feed instead"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Replays a validated outage script as [`FaultCommand`] events on
/// [`FaultInjector::out_faults`]: a `Down` at each outage's start, a
/// `Recover` at its end, in chronological order (recoveries before
/// downs at a shared instant, so back-to-back outages hand over
/// cleanly). Purely event-driven, like [`crate::WorkloadSource`] — the
/// injector sleeps between transitions via self-scheduled wake-ups.
///
/// Ordering note: the engine's sample-and-hold convention applies — a
/// collector tick at instant `t` processes before messages emitted at
/// `t`, so a fault landing exactly on a sample instant takes effect
/// from the *following* sample (the meter reads just before the outage
/// lands). Transitions before the window open are delivered at open.
#[derive(Debug)]
pub struct FaultInjector {
    pending: VecDeque<(Timestamp, FaultCommand)>,
    emitted: usize,
}

impl FaultInjector {
    /// Output port: the fault transition stream ([`FaultCommand`]).
    pub const OUT_FAULTS: usize = 0;

    /// Validates and compiles an outage script. Refusals are typed:
    /// overlapping same-method outages, empty windows, facility
    /// injection (see [`FaultError`]). Outages may be given in any
    /// order.
    pub fn new(mut outages: Vec<MeterOutage>) -> Result<Self, FaultError> {
        for o in &outages {
            if o.method == MeterKind::Facility {
                return Err(FaultError::FacilityNotInjectable);
            }
            if o.window.duration().as_secs() <= 0 {
                return Err(FaultError::EmptyOutage { method: o.method });
            }
        }
        outages.sort_by_key(|o| o.window.start());
        for m in MeterKind::ALL {
            let mut prev_end: Option<Timestamp> = None;
            for o in outages.iter().filter(|o| o.method == m) {
                if let Some(end) = prev_end {
                    if o.window.start() < end {
                        return Err(FaultError::OverlappingOutages {
                            method: m,
                            first_end: end,
                            second_start: o.window.start(),
                        });
                    }
                }
                prev_end = Some(o.window.end());
            }
        }
        let mut transitions: Vec<(Timestamp, u8, FaultCommand)> = Vec::new();
        for o in &outages {
            transitions.push((
                o.window.start(),
                1,
                FaultCommand::Down {
                    method: o.method,
                    mode: o.mode,
                },
            ));
            transitions.push((
                o.window.end(),
                0,
                FaultCommand::Recover { method: o.method },
            ));
        }
        // Recoveries (rank 0) before downs (rank 1) at a shared instant:
        // a back-to-back pair hands the method over instead of the stale
        // recover cancelling the fresh outage.
        transitions.sort_by_key(|(t, rank, _)| (*t, *rank));
        Ok(FaultInjector {
            pending: transitions.into_iter().map(|(t, _, c)| (t, c)).collect(),
            emitted: 0,
        })
    }

    /// Typed handle to [`FaultInjector::OUT_FAULTS`] for wiring.
    pub fn out_faults(id: ComponentId) -> OutPort<FaultCommand> {
        OutPort::new(id, Self::OUT_FAULTS)
    }

    /// Transitions emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Transitions not yet due.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    fn drain_due(&mut self, ctx: &mut Ctx<'_>) {
        while self.pending.front().is_some_and(|(t, _)| *t <= ctx.now()) {
            let (_, cmd) = self.pending.pop_front().expect("front checked");
            self.emitted += 1;
            ctx.emit(Self::OUT_FAULTS, cmd);
        }
        if let Some((next, _)) = self.pending.front() {
            ctx.wake_at(*next);
        }
    }
}

impl Component for FaultInjector {
    fn name(&self) -> &str {
        "fault-injector"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_due(ctx);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_due(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{InPort, Payload};
    use crate::engine::EngineBuilder;
    use iriscast_units::SimDuration;

    struct Recorder {
        got: Vec<(Timestamp, FaultCommand)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got
                .push((ctx.now(), payload.expect::<FaultCommand>().clone()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn outage(method: MeterKind, mode: DropoutMode, from_s: i64, to_s: i64) -> MeterOutage {
        MeterOutage {
            method,
            mode,
            window: Period::new(Timestamp::from_secs(from_s), Timestamp::from_secs(to_s)),
        }
    }

    fn run_script(outages: Vec<MeterOutage>) -> Vec<(Timestamp, FaultCommand)> {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::HOUR);
        let mut b = EngineBuilder::new(window);
        let inj = b.add(Box::new(FaultInjector::new(outages).unwrap()));
        let rec = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(FaultInjector::out_faults(inj), InPort::new(rec, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        engine.get::<Recorder>(rec).unwrap().got.clone()
    }

    #[test]
    fn transitions_fire_at_outage_boundaries() {
        let got = run_script(vec![outage(MeterKind::Pdu, DropoutMode::Gap, 600, 1_200)]);
        assert_eq!(
            got,
            vec![
                (
                    Timestamp::from_secs(600),
                    FaultCommand::Down {
                        method: MeterKind::Pdu,
                        mode: DropoutMode::Gap,
                    }
                ),
                (
                    Timestamp::from_secs(1_200),
                    FaultCommand::Recover {
                        method: MeterKind::Pdu,
                    }
                ),
            ]
        );
    }

    #[test]
    fn back_to_back_outages_recover_before_the_next_down() {
        let got = run_script(vec![
            outage(MeterKind::Ipmi, DropoutMode::Gap, 1_200, 1_800),
            outage(MeterKind::Ipmi, DropoutMode::HoldLast, 600, 1_200),
        ]);
        assert_eq!(got.len(), 4);
        // At the shared instant t=1200 the recover lands first.
        assert_eq!(got[1].0, Timestamp::from_secs(1_200));
        assert!(matches!(got[1].1, FaultCommand::Recover { .. }));
        assert_eq!(got[2].0, Timestamp::from_secs(1_200));
        assert!(matches!(
            got[2].1,
            FaultCommand::Down {
                mode: DropoutMode::Gap,
                ..
            }
        ));
    }

    #[test]
    fn overlapping_same_method_outages_are_refused() {
        let err = FaultInjector::new(vec![
            outage(MeterKind::Pdu, DropoutMode::Gap, 0, 1_000),
            outage(MeterKind::Pdu, DropoutMode::Gap, 500, 1_500),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            FaultError::OverlappingOutages {
                method: MeterKind::Pdu,
                first_end: Timestamp::from_secs(1_000),
                second_start: Timestamp::from_secs(500),
            }
        );
        assert!(err.to_string().contains("overlap"));
        // Different methods may overlap freely.
        assert!(FaultInjector::new(vec![
            outage(MeterKind::Pdu, DropoutMode::Gap, 0, 1_000),
            outage(MeterKind::Ipmi, DropoutMode::Gap, 500, 1_500),
        ])
        .is_ok());
    }

    #[test]
    fn degenerate_scripts_are_refused() {
        let err = FaultInjector::new(vec![outage(MeterKind::Pdu, DropoutMode::Gap, 600, 600)])
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::EmptyOutage {
                method: MeterKind::Pdu
            }
        );
        let err = FaultInjector::new(vec![outage(MeterKind::Facility, DropoutMode::Gap, 0, 600)])
            .unwrap_err();
        assert_eq!(err, FaultError::FacilityNotInjectable);
        assert!(err.to_string().contains("PDU"));
    }

    #[test]
    fn empty_script_is_inert() {
        let got = run_script(Vec::new());
        assert!(got.is_empty());
    }
}
