//! The grid carbon-intensity signal as a clocked publisher.

use crate::component::{Component, ComponentId, OutPort};
use crate::engine::Ctx;
use crate::Clock;
use iriscast_grid::IntensitySeries;
use iriscast_units::CarbonIntensity;
use std::any::Any;

/// Publishes an [`IntensitySeries`] on a clocked port: one
/// [`CarbonIntensity`] message per settlement slot, on the series' own
/// epoch-aligned grid, plus one at window open so subscribers are never
/// signal-less before the first slot boundary.
///
/// This is the dispatch stack's half-hourly output stream made
/// push-based: subscribers (a carbon-aware cluster) react to the signal
/// instead of indexing a precomputed series.
pub struct GridSignal {
    series: IntensitySeries,
    published: u64,
}

impl GridSignal {
    /// Output port: the intensity value of the slot just entered.
    pub const OUT_INTENSITY: usize = 0;

    /// Publishes `series` (its step becomes the clock step).
    pub fn new(series: IntensitySeries) -> Self {
        GridSignal {
            series,
            published: 0,
        }
    }

    /// Typed handle to [`GridSignal::OUT_INTENSITY`] for wiring.
    pub fn out_intensity(id: ComponentId) -> OutPort<CarbonIntensity> {
        OutPort::new(id, Self::OUT_INTENSITY)
    }

    /// The series being published.
    pub fn series(&self) -> &IntensitySeries {
        &self.series
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(ci) = self.series.at(ctx.now()) {
            self.published += 1;
            ctx.emit(Self::OUT_INTENSITY, ci);
        }
    }
}

impl Component for GridSignal {
    fn name(&self) -> &str {
        "grid-signal"
    }

    fn clock(&self) -> Option<Clock> {
        Some(Clock::aligned(self.series.step()))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // A window opening mid-slot still needs the current value; slot
        // boundaries are covered by the first tick instead (the aligned
        // clock ticks exactly at a boundary start, and publishing twice
        // at one instant would double-count).
        if ctx.now() != Clock::aligned(self.series.step()).first_tick(ctx.now()) {
            self.publish(ctx);
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.publish(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{InPort, Payload};
    use crate::engine::EngineBuilder;
    use iriscast_units::{Period, SimDuration, Timestamp};

    struct Recorder {
        got: Vec<(Timestamp, f64)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got.push((
                ctx.now(),
                payload.expect::<CarbonIntensity>().grams_per_kwh(),
            ));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn series_over(period: Period) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = (0..period.step_count(step))
            .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + i as f64))
            .collect();
        IntensitySeries::new(period.start(), step, values)
    }

    #[test]
    fn publishes_once_per_slot_boundary() {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series_over(window))));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        let got = &engine.get::<Recorder>(r).unwrap().got;
        // 4 half-hour slots, one message each, starting at the (aligned)
        // window open — no duplicate at t=0.
        assert_eq!(
            got.iter().map(|(t, _)| t.as_secs()).collect::<Vec<_>>(),
            vec![0, 1_800, 3_600, 5_400]
        );
        assert_eq!(
            got.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![100.0, 101.0, 102.0, 103.0]
        );
    }

    #[test]
    fn mid_slot_window_open_gets_the_current_value() {
        // Window opens 10 minutes into slot 0.
        let window = Period::new(Timestamp::from_secs(600), Timestamp::from_secs(5_400));
        let full = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series_over(full))));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        let got = &engine.get::<Recorder>(r).unwrap().got;
        // Value at open (slot 0), then boundaries 1800 and 3600.
        assert_eq!(
            got.iter()
                .map(|(t, v)| (t.as_secs(), *v))
                .collect::<Vec<_>>(),
            vec![(600, 100.0), (1_800, 101.0), (3_600, 102.0)]
        );
    }
}
