//! The grid carbon-intensity signal as a clocked publisher.

use crate::component::{Component, ComponentId, OutPort};
use crate::engine::Ctx;
use crate::Clock;
use iriscast_grid::IntensitySeries;
use iriscast_units::CarbonIntensity;
use std::any::Any;

/// Publishes an [`IntensitySeries`] on a clocked port: one
/// [`CarbonIntensity`] message per settlement slot, on the series' own
/// epoch-aligned grid, plus one at window open so subscribers are never
/// signal-less before the first slot boundary.
///
/// This is the dispatch stack's half-hourly output stream made
/// push-based: subscribers (a carbon-aware cluster) react to the signal
/// instead of indexing a precomputed series.
pub struct GridSignal {
    series: IntensitySeries,
    forecast: Option<IntensitySeries>,
    published: u64,
}

impl GridSignal {
    /// Output port: the intensity value of the slot just entered.
    pub const OUT_INTENSITY: usize = 0;
    /// Output port: the day-ahead forecast for the slot just entered
    /// (only wired by [`GridSignal::with_forecast`] graphs).
    pub const OUT_FORECAST: usize = 1;

    /// Publishes `series` (its step becomes the clock step).
    pub fn new(series: IntensitySeries) -> Self {
        GridSignal {
            series,
            forecast: None,
            published: 0,
        }
    }

    /// Publishes `series` as the outturn and `forecast` as the
    /// day-ahead view on [`GridSignal::OUT_FORECAST`], slot for slot.
    /// Forecast-driven policies subscribe to the forecast port and are
    /// settled against the outturn — the two streams share one clock,
    /// so the comparison never skews.
    ///
    /// # Panics
    /// If the two series do not share a step.
    pub fn with_forecast(series: IntensitySeries, forecast: IntensitySeries) -> Self {
        assert!(
            series.step() == forecast.step(),
            "outturn and forecast series must share a settlement step"
        );
        GridSignal {
            series,
            forecast: Some(forecast),
            published: 0,
        }
    }

    /// Typed handle to [`GridSignal::OUT_INTENSITY`] for wiring.
    pub fn out_intensity(id: ComponentId) -> OutPort<CarbonIntensity> {
        OutPort::new(id, Self::OUT_INTENSITY)
    }

    /// Typed handle to [`GridSignal::OUT_FORECAST`] for wiring.
    pub fn out_forecast(id: ComponentId) -> OutPort<CarbonIntensity> {
        OutPort::new(id, Self::OUT_FORECAST)
    }

    /// The series being published.
    pub fn series(&self) -> &IntensitySeries {
        &self.series
    }

    /// The day-ahead series, if this signal publishes one.
    pub fn forecast(&self) -> Option<&IntensitySeries> {
        self.forecast.as_ref()
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(ci) = self.series.at(ctx.now()) {
            self.published += 1;
            ctx.emit(Self::OUT_INTENSITY, ci);
        }
        if let Some(fc) = self.forecast.as_ref().and_then(|f| f.at(ctx.now())) {
            ctx.emit(Self::OUT_FORECAST, fc);
        }
    }
}

impl Component for GridSignal {
    fn name(&self) -> &str {
        "grid-signal"
    }

    fn clock(&self) -> Option<Clock> {
        Some(Clock::aligned(self.series.step()))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // A window opening mid-slot still needs the current value; slot
        // boundaries are covered by the first tick instead (the aligned
        // clock ticks exactly at a boundary start, and publishing twice
        // at one instant would double-count).
        if ctx.now() != Clock::aligned(self.series.step()).first_tick(ctx.now()) {
            self.publish(ctx);
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.publish(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{InPort, Payload};
    use crate::engine::EngineBuilder;
    use iriscast_units::{Period, SimDuration, Timestamp};

    struct Recorder {
        got: Vec<(Timestamp, f64)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got.push((
                ctx.now(),
                payload.expect::<CarbonIntensity>().grams_per_kwh(),
            ));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn series_over(period: Period) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = (0..period.step_count(step))
            .map(|i| CarbonIntensity::from_grams_per_kwh(100.0 + i as f64))
            .collect();
        IntensitySeries::new(period.start(), step, values)
    }

    #[test]
    fn publishes_once_per_slot_boundary() {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series_over(window))));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        let got = &engine.get::<Recorder>(r).unwrap().got;
        // 4 half-hour slots, one message each, starting at the (aligned)
        // window open — no duplicate at t=0.
        assert_eq!(
            got.iter().map(|(t, _)| t.as_secs()).collect::<Vec<_>>(),
            vec![0, 1_800, 3_600, 5_400]
        );
        assert_eq!(
            got.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![100.0, 101.0, 102.0, 103.0]
        );
    }

    #[test]
    fn mid_slot_window_open_gets_the_current_value() {
        // Window opens 10 minutes into slot 0.
        let window = Period::new(Timestamp::from_secs(600), Timestamp::from_secs(5_400));
        let full = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::new(series_over(full))));
        let r = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), InPort::new(r, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        let got = &engine.get::<Recorder>(r).unwrap().got;
        // Value at open (slot 0), then boundaries 1800 and 3600.
        assert_eq!(
            got.iter()
                .map(|(t, v)| (t.as_secs(), *v))
                .collect::<Vec<_>>(),
            vec![(600, 100.0), (1_800, 101.0), (3_600, 102.0)]
        );
    }

    #[test]
    fn forecast_port_publishes_in_lockstep_with_the_outturn() {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(1.0));
        let actual = series_over(window);
        let forecast = IntensitySeries::new(
            window.start(),
            SimDuration::SETTLEMENT_PERIOD,
            vec![
                CarbonIntensity::from_grams_per_kwh(110.0),
                CarbonIntensity::from_grams_per_kwh(95.0),
            ],
        );
        let mut b = EngineBuilder::new(window);
        let g = b.add(Box::new(GridSignal::with_forecast(actual, forecast)));
        let ra = b.add(Box::new(Recorder { got: Vec::new() }));
        let rf = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(GridSignal::out_intensity(g), InPort::new(ra, 0));
        b.connect(GridSignal::out_forecast(g), InPort::new(rf, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        let actual_got = engine.get::<Recorder>(ra).unwrap().got.clone();
        let forecast_got = engine.get::<Recorder>(rf).unwrap().got.clone();
        assert_eq!(
            actual_got,
            vec![
                (Timestamp::EPOCH, 100.0),
                (Timestamp::from_secs(1_800), 101.0)
            ]
        );
        assert_eq!(
            forecast_got,
            vec![
                (Timestamp::EPOCH, 110.0),
                (Timestamp::from_secs(1_800), 95.0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "share a settlement step")]
    fn mismatched_forecast_step_is_refused() {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(1.0));
        let actual = series_over(window);
        let forecast = IntensitySeries::new(
            window.start(),
            SimDuration::HOUR,
            vec![CarbonIntensity::from_grams_per_kwh(110.0)],
        );
        let _ = GridSignal::with_forecast(actual, forecast);
    }
}
