//! The existing subsystems wrapped as engine components: workload
//! arrivals, the grid intensity signal, the cluster/scheduler, and the
//! telemetry collector.

mod cluster;
mod collector;
mod grid;
mod workload;

pub use cluster::{ClusterComponent, UtilizationUpdate};
pub use collector::{CollectorComponent, LiveUtilization};
pub use grid::GridSignal;
pub use workload::WorkloadSource;
