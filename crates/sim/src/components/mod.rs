//! The existing subsystems wrapped as engine components: workload
//! arrivals, the grid intensity signal, the cluster/scheduler, the
//! telemetry collector, and the fault/curtailment/demand-response
//! scenario layer on top of them.

mod cluster;
mod collector;
mod curtailment;
mod demand_response;
mod fault;
mod grid;
mod sampler;
mod workload;

pub use cluster::{ClusterComponent, DeferrableBacklog, UtilizationUpdate};
pub use collector::{CollectorComponent, LiveUtilization};
pub use curtailment::{CapacityOrder, Curtailment};
pub use demand_response::{DemandBid, DemandResponse, DemandResponseOrder};
pub use fault::{FaultCommand, FaultError, FaultInjector, MeterOutage};
pub use grid::GridSignal;
pub use sampler::{snapshot_windows, SnapshotSampler, TelemetryDelta};
pub use workload::WorkloadSource;
