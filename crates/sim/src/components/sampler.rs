//! Periodic telemetry snapshots streamed off the event engine.
//!
//! [`SnapshotSampler`] is the live-service face of the collector: where
//! [`super::CollectorComponent`] sweeps one window and hands back one
//! result at the end, the sampler cuts the engine window into
//! snapshot-interval windows and pushes each completed window's
//! [`SiteTelemetryResult`] over a crossbeam channel as a
//! [`TelemetryDelta`] the moment it closes — the ingest side of an
//! assessment service folds them without waiting for the run to end.
//!
//! The window cut follows the latte `Sampler` rule for the degenerate
//! final sample: a tail shorter than half the interval is merged into
//! the previous window instead of standing as its own snapshot (see
//! [`snapshot_windows`]), so downstream consumers never see a window
//! whose statistics are dominated by its own brevity.

use crate::clock::Clock;
use crate::component::Component;
use crate::engine::Ctx;
use crossbeam::channel::Sender;
use iriscast_telemetry::{
    SiteTelemetryConfig, SiteTelemetryResult, SteppedCollector, TelemetryError, TelemetryResult,
    UtilizationSource,
};
use iriscast_units::{Period, SimDuration};
use std::any::Any;

/// One completed snapshot window, as streamed by a [`SnapshotSampler`]:
/// the window's full per-method telemetry plus its position in the
/// site's snapshot sequence.
#[derive(Debug)]
pub struct TelemetryDelta {
    /// Snapshot sequence number, 0-based per sampler. Consecutive — the
    /// ingest side uses it to apply folds in emission order even when
    /// deltas arrive through a multi-worker pipeline.
    pub seq: u64,
    /// The closed window's telemetry (its `period` field is the
    /// window; its `site_code` names the sampled site).
    pub result: SiteTelemetryResult,
}

/// Cuts `period` into snapshot windows of `interval`, merging a
/// degenerate tail into the final window.
///
/// Windows tile `period` exactly (half-open, adjacent). The tail rule:
/// a final partial window shorter than half the interval merges into
/// the previous window — the same guard the latte sampler applies to
/// its last sample — while a tail of half the interval or more stands
/// as its own (shorter) window. A period shorter than one interval is
/// a single window.
pub fn snapshot_windows(period: Period, interval: SimDuration) -> Vec<Period> {
    assert!(
        interval.as_secs() > 0,
        "snapshot interval must be positive (validated by SnapshotSampler::new)"
    );
    let mut out = Vec::new();
    let mut start = period.start();
    while start + interval < period.end() {
        out.push(Period::starting_at(start, interval));
        start += interval;
    }
    let tail = period.end() - start;
    if !out.is_empty() && tail.as_secs() * 2 < interval.as_secs() {
        let last = out.pop().expect("checked non-empty");
        out.push(Period::new(last.start(), period.end()));
    } else {
        out.push(Period::new(start, period.end()));
    }
    out
}

/// A clocked component emitting [`TelemetryDelta`]s: one
/// [`SteppedCollector`] sweep per snapshot window, one channel send per
/// closed window.
///
/// Per-window seeds are derived from the base config's seed and the
/// window's sequence number (`seed ^ seq·φ64`, the splitmix constant),
/// so every window's synthetic meter noise is an independent — but
/// deterministic — draw. Window 0's derivation is the identity, which
/// keeps a single-window sampler (interval ≥ engine window)
/// bit-identical to a batch [`iriscast_telemetry::SiteCollector`]
/// collect of the same period; the tests pin both facts.
///
/// A disconnected receiver (the serve loop shut down mid-run) is not an
/// error here: the sampler keeps sweeping — simulation determinism must
/// not depend on who is listening — and counts the unreceived deltas in
/// [`SnapshotSampler::dropped`].
pub struct SnapshotSampler {
    cfg: SiteTelemetryConfig,
    period: Period,
    windows: Vec<Period>,
    current: Option<SteppedCollector>,
    window_idx: usize,
    source: Box<dyn UtilizationSource>,
    tx: Sender<TelemetryDelta>,
    emitted: u64,
    dropped: u64,
}

impl std::fmt::Debug for SnapshotSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The utilisation source is an opaque trait object; show the
        // sampling geometry and progress instead.
        f.debug_struct("SnapshotSampler")
            .field("site", &self.cfg.site_code)
            .field("period", &self.period)
            .field("windows", &self.windows.len())
            .field("window_idx", &self.window_idx)
            .field("emitted", &self.emitted)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl SnapshotSampler {
    /// Validates the snapshot geometry and primes the first window's
    /// sweep.
    ///
    /// `interval` must be a positive whole multiple of the config's
    /// sample step ([`TelemetryError::InvalidInterval`] otherwise), so
    /// every window opens and closes exactly on the sampling grid; the
    /// degenerate-site refusals of [`SteppedCollector::new`]
    /// (`NoNodes`, `EmptyWindow`) surface here too.
    pub fn new(
        cfg: SiteTelemetryConfig,
        period: Period,
        interval: SimDuration,
        source: Box<dyn UtilizationSource>,
        tx: Sender<TelemetryDelta>,
    ) -> TelemetryResult<Self> {
        let step = cfg.sample_step.as_secs();
        if interval.as_secs() <= 0 || step <= 0 || interval.as_secs() % step != 0 {
            return Err(TelemetryError::InvalidInterval {
                site: cfg.site_code.clone(),
                interval_secs: interval.as_secs(),
                step_secs: step,
            });
        }
        let windows = snapshot_windows(period, interval);
        let first = SteppedCollector::new(Self::window_cfg(&cfg, 0), windows[0])?;
        Ok(SnapshotSampler {
            cfg,
            period,
            windows,
            current: Some(first),
            window_idx: 0,
            source,
            tx,
            emitted: 0,
            dropped: 0,
        })
    }

    fn window_cfg(base: &SiteTelemetryConfig, seq: u64) -> SiteTelemetryConfig {
        let mut cfg = base.clone();
        cfg.seed ^= seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        cfg
    }

    /// The snapshot windows this sampler will sweep, in emission order.
    pub fn windows(&self) -> &[Period] {
        &self.windows
    }

    /// Deltas emitted so far (including any the receiver never saw).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Deltas emitted after the receiving side disconnected.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True once every window has been swept and emitted.
    pub fn is_complete(&self) -> bool {
        self.window_idx == self.windows.len()
    }
}

impl Component for SnapshotSampler {
    fn name(&self) -> &str {
        "snapshot-sampler"
    }

    fn clock(&self) -> Option<Clock> {
        // Window-anchored like the collector component: snapshot
        // windows are multiples of the step, so every tick lands in
        // exactly one window's grid.
        Some(Clock::every(self.cfg.sample_step))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(
            ctx.window() == self.period,
            "sampler period {:?} must equal the engine window {:?} \
             so clock ticks land exactly on the sampling grid",
            self.period,
            ctx.window(),
        );
    }

    fn on_tick(&mut self, _ctx: &mut Ctx<'_>) {
        let Some(stepped) = self.current.as_mut() else {
            return;
        };
        stepped.advance(&*self.source);
        if !stepped.is_complete() {
            return;
        }
        let closed = self.current.take().expect("checked above");
        let result = closed.finish().expect("window swept to completion");
        let seq = self.emitted;
        self.emitted += 1;
        if self.tx.send(TelemetryDelta { seq, result }).is_err() {
            self.dropped += 1;
        }
        self.window_idx += 1;
        if let Some(&window) = self.windows.get(self.window_idx) {
            let cfg = Self::window_cfg(&self.cfg, self.window_idx as u64);
            self.current = Some(
                SteppedCollector::new(cfg, window)
                    .expect("per-window geometry was validated at construction"),
            );
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crossbeam::channel::unbounded;
    use iriscast_telemetry::{
        NodeGroupTelemetry, NodePowerModel, SiteCollector, SyntheticUtilization,
    };
    use iriscast_units::{Power, Timestamp};

    fn config(step_secs: i64) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "SAMP-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: 24,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            0x5A4D,
        );
        cfg.sample_step = SimDuration::from_secs(step_secs);
        cfg
    }

    #[test]
    fn windows_tile_and_merge_the_degenerate_tail() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(25.0));
        let w = snapshot_windows(period, SimDuration::from_hours(6.0));
        // 25 h at 6 h: four full windows, the 1 h tail (< 3 h) merges
        // into the last, which becomes 7 h.
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].duration(), SimDuration::from_hours(6.0));
        assert_eq!(w[3].duration(), SimDuration::from_hours(7.0));
        // Adjacent and exactly tiling.
        assert_eq!(w[0].start(), period.start());
        for pair in w.windows(2) {
            assert_eq!(pair[0].end(), pair[1].start());
        }
        assert_eq!(w[3].end(), period.end());

        // A 3 h tail (= half) stands as its own window.
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(27.0));
        let w = snapshot_windows(period, SimDuration::from_hours(6.0));
        assert_eq!(w.len(), 5);
        assert_eq!(w[4].duration(), SimDuration::from_hours(3.0));

        // A period shorter than the interval is one window.
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let w = snapshot_windows(period, SimDuration::from_hours(6.0));
        assert_eq!(w, vec![period]);
    }

    #[test]
    fn non_tiling_interval_is_a_typed_error() {
        let (tx, _rx) = unbounded();
        let err = SnapshotSampler::new(
            config(1_800),
            Period::snapshot_24h(),
            SimDuration::from_secs(2_700), // 1.5 steps
            Box::new(SyntheticUtilization::calibrated(0.5, 7)),
            tx,
        )
        .unwrap_err();
        assert!(matches!(err, TelemetryError::InvalidInterval { .. }));
        assert!(err.to_string().contains("tile"));
    }

    #[test]
    fn single_window_sampler_matches_batch_collect_bit_for_bit() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(6.0));
        let cfg = config(1_800);
        let source = SyntheticUtilization::calibrated(0.6, 9);
        let batch = SiteCollector::new(cfg.clone())
            .collect(period, &source, 4)
            .unwrap();

        let (tx, rx) = unbounded();
        let mut b = EngineBuilder::new(period);
        let id = b.add(Box::new(
            // Interval ≥ window: one snapshot, seed derivation is the
            // identity for seq 0.
            SnapshotSampler::new(
                cfg,
                period,
                SimDuration::from_hours(12.0),
                Box::new(source),
                tx,
            )
            .unwrap(),
        ));
        let mut engine = b.build();
        engine.run_to_horizon();
        let sampler = engine.get_mut::<SnapshotSampler>(id).unwrap();
        assert!(sampler.is_complete());
        assert_eq!(sampler.emitted(), 1);
        assert_eq!(sampler.dropped(), 0);
        let delta = rx.try_recv().unwrap();
        assert_eq!(delta.seq, 0);
        assert!(
            delta.result.bitwise_eq(&batch),
            "sampler diverged from batch"
        );
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn each_window_matches_an_independent_collect_of_that_window() {
        // 25 h run, 6 h snapshots: the tail merges, giving windows of
        // 6, 6, 6, 7 hours — each delta must equal a from-scratch batch
        // collect of its window under the derived seed.
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(25.0));
        let cfg = config(3_600);
        let source = SyntheticUtilization::calibrated(0.55, 11);
        let (tx, rx) = unbounded();
        let mut b = EngineBuilder::new(period);
        let id = b.add(Box::new(
            SnapshotSampler::new(
                cfg.clone(),
                period,
                SimDuration::from_hours(6.0),
                Box::new(source),
                tx,
            )
            .unwrap(),
        ));
        let mut engine = b.build();
        engine.run_to_horizon();
        let sampler = engine.get_mut::<SnapshotSampler>(id).unwrap();
        assert!(sampler.is_complete());
        assert_eq!(sampler.emitted(), 4);
        let windows = sampler.windows().to_vec();

        let mut seen = 0u64;
        while let Ok(delta) = rx.try_recv() {
            assert_eq!(delta.seq, seen);
            let window = windows[delta.seq as usize];
            assert_eq!(delta.result.period, window);
            let independent = SiteCollector::new(SnapshotSampler::window_cfg(&cfg, delta.seq))
                .collect(window, &source, 1)
                .unwrap();
            assert!(
                delta.result.bitwise_eq(&independent),
                "window {} diverged from its batch collect",
                delta.seq
            );
            seen += 1;
        }
        assert_eq!(seen, 4);
        // Consecutive windows draw different noise (independent seeds).
        assert_ne!(
            SnapshotSampler::window_cfg(&cfg, 1).seed,
            SnapshotSampler::window_cfg(&cfg, 2).seed
        );
    }

    #[test]
    fn disconnected_receiver_does_not_stop_the_sweep() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(12.0));
        let (tx, rx) = unbounded();
        let mut b = EngineBuilder::new(period);
        let id = b.add(Box::new(
            SnapshotSampler::new(
                config(3_600),
                period,
                SimDuration::from_hours(4.0),
                Box::new(SyntheticUtilization::calibrated(0.5, 3)),
                tx,
            )
            .unwrap(),
        ));
        drop(rx);
        let mut engine = b.build();
        engine.run_to_horizon();
        let sampler = engine.get_mut::<SnapshotSampler>(id).unwrap();
        assert!(sampler.is_complete());
        assert_eq!(sampler.emitted(), 3);
        assert_eq!(sampler.dropped(), 3);
    }
}
