//! Job arrivals as events.

use crate::component::{Component, ComponentId, OutPort};
use crate::engine::Ctx;
use iriscast_workload::{Job, WorkloadError, WorkloadResult};
use std::any::Any;
use std::collections::VecDeque;

/// Replays a job stream as submission events: each [`Job`] is emitted on
/// [`WorkloadSource::out_jobs`] at its submit instant (jobs submitted
/// before the window are emitted when it opens). Purely event-driven —
/// the source sleeps between submissions via self-scheduled wake-ups,
/// one wake per distinct submit instant.
pub struct WorkloadSource {
    pending: VecDeque<Job>,
    emitted: usize,
}

impl WorkloadSource {
    /// Output port: the job stream, in submit order.
    pub const OUT_JOBS: usize = 0;

    /// Wraps a submit-sorted job stream; refuses an unsorted one with
    /// [`WorkloadError::UnsortedJobs`].
    pub fn new(jobs: Vec<Job>) -> WorkloadResult<Self> {
        if let Some(i) = jobs.windows(2).position(|w| w[0].submit > w[1].submit) {
            return Err(WorkloadError::UnsortedJobs { index: i + 1 });
        }
        Ok(WorkloadSource {
            pending: jobs.into(),
            emitted: 0,
        })
    }

    /// Typed handle to [`WorkloadSource::OUT_JOBS`] for wiring.
    pub fn out_jobs(id: ComponentId) -> OutPort<Job> {
        OutPort::new(id, Self::OUT_JOBS)
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Jobs not yet due.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// Emits every job due at or before now, then sleeps until the next
    /// submission.
    fn drain_due(&mut self, ctx: &mut Ctx<'_>) {
        while self.pending.front().is_some_and(|j| j.submit <= ctx.now()) {
            let job = self.pending.pop_front().expect("front checked");
            self.emitted += 1;
            ctx.emit(Self::OUT_JOBS, job);
        }
        if let Some(next) = self.pending.front() {
            ctx.wake_at(next.submit);
        }
    }
}

impl Component for WorkloadSource {
    fn name(&self) -> &str {
        "workload-source"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_due(ctx);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_due(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{InPort, Payload};
    use crate::engine::EngineBuilder;
    use iriscast_units::{Period, SimDuration, Timestamp};

    struct Recorder {
        got: Vec<(Timestamp, u64)>,
    }

    impl Component for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn on_event(&mut self, _port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            self.got.push((ctx.now(), payload.expect::<Job>().id));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn job(id: u64, submit_s: i64) -> Job {
        Job::new(
            id,
            Timestamp::from_secs(submit_s),
            SimDuration::from_secs(60),
            1,
        )
    }

    #[test]
    fn jobs_arrive_at_their_submit_instants() {
        let window = Period::starting_at(Timestamp::EPOCH, SimDuration::HOUR);
        let mut b = EngineBuilder::new(window);
        // Two jobs share t=300: both must arrive at 300, in id order.
        let jobs = vec![job(0, 100), job(1, 300), job(2, 300), job(3, 2_000)];
        let src = b.add(Box::new(WorkloadSource::new(jobs).unwrap()));
        let rec = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(WorkloadSource::out_jobs(src), InPort::new(rec, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        assert_eq!(
            engine.get::<Recorder>(rec).unwrap().got,
            vec![
                (Timestamp::from_secs(100), 0),
                (Timestamp::from_secs(300), 1),
                (Timestamp::from_secs(300), 2),
                (Timestamp::from_secs(2_000), 3),
            ]
        );
        let src = engine.get::<WorkloadSource>(src).unwrap();
        assert_eq!(src.emitted(), 4);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn pre_window_jobs_arrive_at_window_open() {
        let window = Period::new(Timestamp::from_secs(1_000), Timestamp::from_secs(2_000));
        let mut b = EngineBuilder::new(window);
        let src = b.add(Box::new(
            WorkloadSource::new(vec![job(0, 100), job(1, 1_500)]).unwrap(),
        ));
        let rec = b.add(Box::new(Recorder { got: Vec::new() }));
        b.connect(WorkloadSource::out_jobs(src), InPort::new(rec, 0));
        let mut engine = b.build();
        engine.run_to_horizon();
        assert_eq!(
            engine.get::<Recorder>(rec).unwrap().got,
            vec![
                (Timestamp::from_secs(1_000), 0),
                (Timestamp::from_secs(1_500), 1),
            ]
        );
    }

    #[test]
    fn unsorted_stream_refused() {
        let err = WorkloadSource::new(vec![job(0, 500), job(1, 100)])
            .err()
            .expect("unsorted stream must be refused");
        assert_eq!(err, WorkloadError::UnsortedJobs { index: 1 });
    }
}
