//! The engine: owns the component graph, the event queue, and the
//! simulation clock.
//!
//! One totally ordered event stream drives everything. Each event is
//! `(timestamp, sequence)`-keyed ([`crate::EventQueue`]), dispatch takes
//! exactly one event at a time, and components communicate only through
//! ports — so a run is a deterministic function of the graph and its
//! inputs, and stopping at any instant and resuming is indistinguishable
//! from running straight through (the property suite pins both).

use crate::component::{Component, ComponentId, InPort, OutPort, Payload};
use crate::event::EventQueue;
use iriscast_units::{Period, SimDuration, Timestamp};
use std::collections::BTreeMap;

/// What a queued event does to its target component.
enum EventKind {
    /// A clock tick (engine-scheduled, auto-renewed from the clock).
    Tick,
    /// A self-requested wake-up ([`Ctx::wake_at`]).
    Wake,
    /// A message into input port `port`.
    Deliver {
        /// Target input port index.
        port: usize,
        /// The message.
        payload: Payload,
    },
}

/// One queued event.
struct Event {
    target: usize,
    kind: EventKind,
}

/// Wire table: (source component, output port) → fan-out list of
/// (target component, input port), in connect order.
type Wires = BTreeMap<(usize, usize), Vec<(usize, usize)>>;

/// What a component sees while handling an event: the current instant,
/// the window, and the ability to emit messages and schedule wake-ups.
pub struct Ctx<'a> {
    now: Timestamp,
    self_id: usize,
    window: Period,
    queue: &'a mut EventQueue<Event>,
    wires: &'a Wires,
}

impl Ctx<'_> {
    /// The instant being processed.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The simulation window.
    pub fn window(&self) -> Period {
        self.window
    }

    /// Emits `value` on the calling component's output port
    /// `out_index`: one delivery event per connected input port, at the
    /// current instant, after everything already queued at it (FIFO).
    /// An unconnected port drops the value — components never know who
    /// listens.
    pub fn emit<T: 'static>(&mut self, out_index: usize, value: T) {
        let Some(dests) = self.wires.get(&(self.self_id, out_index)) else {
            return;
        };
        let payload = Payload::new(value);
        for &(target, port) in dests {
            self.queue.push(
                self.now,
                Event {
                    target,
                    kind: EventKind::Deliver {
                        port,
                        payload: payload.clone(),
                    },
                },
            );
        }
    }

    /// Schedules [`Component::on_wake`] for the calling component at
    /// `t` (clamped to the current instant — the past is immutable).
    pub fn wake_at(&mut self, t: Timestamp) {
        self.queue.push(
            t.max(self.now),
            Event {
                target: self.self_id,
                kind: EventKind::Wake,
            },
        );
    }

    /// [`Ctx::wake_at`] relative to now.
    pub fn wake_after(&mut self, delay: SimDuration) {
        self.wake_at(self.now + delay);
    }
}

/// Assembles a component graph for a simulation window.
pub struct EngineBuilder {
    window: Period,
    components: Vec<Box<dyn Component>>,
    wires: Wires,
}

impl EngineBuilder {
    /// An empty graph over `window`.
    pub fn new(window: Period) -> Self {
        EngineBuilder {
            window,
            components: Vec::new(),
            wires: Wires::new(),
        }
    }

    /// Adds a component; the returned id is its handle for wiring and
    /// post-run extraction.
    pub fn add(&mut self, component: Box<dyn Component>) -> ComponentId {
        self.components.push(component);
        ComponentId(self.components.len() - 1)
    }

    /// Wires an output port to an input port. The shared `T` is the
    /// type-check: a wire only connects ports declared for the same
    /// payload type. Fan-out (one output to many inputs) and fan-in
    /// (many outputs to one input) are both legal.
    ///
    /// Panics if either endpoint's component id is not from this
    /// builder.
    pub fn connect<T: 'static>(&mut self, from: OutPort<T>, to: InPort<T>) {
        assert!(
            from.component.0 < self.components.len() && to.component.0 < self.components.len(),
            "connect with a component id from a different builder"
        );
        self.wires
            .entry((from.component.0, from.index))
            .or_default()
            .push((to.component.0, to.index));
    }

    /// Finishes assembly.
    pub fn build(self) -> Engine {
        Engine {
            window: self.window,
            components: self.components.into_iter().map(Some).collect(),
            wires: self.wires,
            queue: EventQueue::new(),
            now: self.window.start(),
            started: false,
            events_processed: 0,
        }
    }
}

/// The assembled graph, ready to run.
///
/// `run_until(t)` processes every event strictly before
/// `min(t, window end)` — windows are half-open, like every `Period` in
/// the codebase — so `run_until(mid); run_until(end)` is event-for-event
/// identical to `run_until(end)`.
pub struct Engine {
    window: Period,
    components: Vec<Option<Box<dyn Component>>>,
    wires: Wires,
    queue: EventQueue<Event>,
    now: Timestamp,
    started: bool,
    events_processed: u64,
}

impl Engine {
    /// Opens the window on the first run call: `on_start` per component
    /// in insertion order, then the first tick of every clocked
    /// component (so start-up messages at the window start instant
    /// dispatch before first ticks).
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let start = self.window.start();
        for i in 0..self.components.len() {
            let mut c = self.components[i].take().expect("component present");
            let mut ctx = Ctx {
                now: start,
                self_id: i,
                window: self.window,
                queue: &mut self.queue,
                wires: &self.wires,
            };
            c.on_start(&mut ctx);
            self.components[i] = Some(c);
        }
        for (i, c) in self.components.iter().enumerate() {
            if let Some(clock) = c.as_ref().expect("component present").clock() {
                let first = clock.first_tick(start);
                if self.window.contains(first) {
                    self.queue.push(
                        first,
                        Event {
                            target: i,
                            kind: EventKind::Tick,
                        },
                    );
                }
            }
        }
    }

    /// Processes every event strictly before `min(until, window end)`,
    /// in `(time, FIFO)` order. Returns the number of events processed
    /// by this call. Re-callable: later calls continue where this one
    /// stopped.
    pub fn run_until(&mut self, until: Timestamp) -> u64 {
        self.start();
        let limit = until.min(self.window.end());
        let before = self.events_processed;
        while self.queue.peek_time().is_some_and(|t| t < limit) {
            let (time, ev) = self.queue.pop().expect("peeked");
            self.now = time;
            let mut c = self.components[ev.target]
                .take()
                .expect("re-entrant dispatch");
            let mut ctx = Ctx {
                now: time,
                self_id: ev.target,
                window: self.window,
                queue: &mut self.queue,
                wires: &self.wires,
            };
            match ev.kind {
                EventKind::Tick => {
                    c.on_tick(&mut ctx);
                    if let Some(clock) = c.clock() {
                        let next = clock.next_tick(time);
                        if next < self.window.end() {
                            self.queue.push(
                                next,
                                Event {
                                    target: ev.target,
                                    kind: EventKind::Tick,
                                },
                            );
                        }
                    }
                }
                EventKind::Wake => c.on_wake(&mut ctx),
                EventKind::Deliver { port, payload } => c.on_event(port, &payload, &mut ctx),
            }
            self.components[ev.target] = Some(c);
            self.events_processed += 1;
        }
        if limit > self.now {
            self.now = limit;
        }
        self.events_processed - before
    }

    /// Runs to quiescence or the window end, whichever comes first:
    /// processes the whole window, leaving any events scheduled at or
    /// beyond the horizon unprocessed. Returns the number of events
    /// processed by this call.
    pub fn run_to_horizon(&mut self) -> u64 {
        self.run_until(self.window.end())
    }

    /// The current simulation instant: the last processed event's time,
    /// or the limit of the last `run_until`.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The simulation window.
    pub fn window(&self) -> Period {
        self.window
    }

    /// Events dispatched over the engine's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events still queued (including any at or beyond the horizon).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Borrows component `id` as its concrete type — how results come
    /// back out of a finished graph. `None` on a type mismatch.
    pub fn get<C: Component>(&self, id: ComponentId) -> Option<&C> {
        self.components
            .get(id.0)?
            .as_ref()
            .expect("component present")
            .as_any()
            .downcast_ref()
    }

    /// Mutable form of [`Engine::get`].
    pub fn get_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        self.components
            .get_mut(id.0)?
            .as_mut()
            .expect("component present")
            .as_any_mut()
            .downcast_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clock;
    use std::any::Any;

    /// Counts its own ticks and emits each count on port 0.
    struct Ticker {
        step: SimDuration,
        ticks: Vec<Timestamp>,
    }

    impl Ticker {
        const OUT: usize = 0;
        fn new(step: SimDuration) -> Self {
            Ticker {
                step,
                ticks: Vec::new(),
            }
        }
    }

    impl Component for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn clock(&self) -> Option<Clock> {
            Some(Clock::every(self.step))
        }
        fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
            self.ticks.push(ctx.now());
            ctx.emit(Self::OUT, self.ticks.len());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records `(now, value)` for every message on port 0.
    struct Sink {
        got: Vec<(Timestamp, usize)>,
    }

    impl Sink {
        const IN: usize = 0;
    }

    impl Component for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_event(&mut self, port: usize, payload: &Payload, ctx: &mut Ctx<'_>) {
            assert_eq!(port, Self::IN);
            self.got.push((ctx.now(), *payload.expect::<usize>()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn hour_window() -> Period {
        Period::starting_at(Timestamp::EPOCH, SimDuration::HOUR)
    }

    #[test]
    fn clocked_component_ticks_across_the_window() {
        let mut b = EngineBuilder::new(hour_window());
        let t = b.add(Box::new(Ticker::new(SimDuration::from_secs(600))));
        let mut engine = b.build();
        engine.run_to_horizon();
        let ticker = engine.get::<Ticker>(t).unwrap();
        // Half-open window: ticks at 0, 10, …, 50 min — not 60.
        assert_eq!(ticker.ticks.len(), 6);
        assert_eq!(ticker.ticks[0], Timestamp::EPOCH);
        assert_eq!(*ticker.ticks.last().unwrap(), Timestamp::from_secs(3_000));
        assert_eq!(engine.now(), hour_window().end());
    }

    #[test]
    fn messages_flow_between_components() {
        let mut b = EngineBuilder::new(hour_window());
        let t = b.add(Box::new(Ticker::new(SimDuration::from_secs(900))));
        let s = b.add(Box::new(Sink { got: Vec::new() }));
        b.connect(
            OutPort::<usize>::new(t, Ticker::OUT),
            InPort::<usize>::new(s, Sink::IN),
        );
        let mut engine = b.build();
        engine.run_to_horizon();
        let sink = engine.get::<Sink>(s).unwrap();
        assert_eq!(
            sink.got,
            vec![
                (Timestamp::EPOCH, 1),
                (Timestamp::from_secs(900), 2),
                (Timestamp::from_secs(1_800), 3),
                (Timestamp::from_secs(2_700), 4),
            ]
        );
        // 4 ticks + 4 deliveries.
        assert_eq!(engine.events_processed(), 8);
    }

    #[test]
    fn unconnected_port_drops_messages() {
        let mut b = EngineBuilder::new(hour_window());
        let t = b.add(Box::new(Ticker::new(SimDuration::from_secs(900))));
        let mut engine = b.build();
        assert_eq!(engine.run_to_horizon(), 4); // ticks only
        assert_eq!(engine.get::<Ticker>(t).unwrap().ticks.len(), 4);
        assert_eq!(engine.pending_events(), 0);
    }

    #[test]
    fn stop_and_resume_equals_straight_run() {
        let build = || {
            let mut b = EngineBuilder::new(hour_window());
            let t = b.add(Box::new(Ticker::new(SimDuration::from_secs(700))));
            let s = b.add(Box::new(Sink { got: Vec::new() }));
            b.connect(
                OutPort::<usize>::new(t, Ticker::OUT),
                InPort::<usize>::new(s, Sink::IN),
            );
            (b.build(), s)
        };
        let (mut straight, s1) = build();
        straight.run_to_horizon();
        let (mut halves, s2) = build();
        // Stop mid-window — including exactly on a tick instant (2_100),
        // which must then fire in the second half, not both.
        halves.run_until(Timestamp::from_secs(2_100));
        assert!(halves.now() == Timestamp::from_secs(2_100));
        halves.run_to_horizon();
        assert_eq!(
            straight.get::<Sink>(s1).unwrap().got,
            halves.get::<Sink>(s2).unwrap().got
        );
        assert_eq!(straight.events_processed(), halves.events_processed());
    }

    #[test]
    fn wrong_type_get_is_none() {
        let mut b = EngineBuilder::new(hour_window());
        let t = b.add(Box::new(Ticker::new(SimDuration::HOUR)));
        let engine = b.build();
        assert!(engine.get::<Sink>(t).is_none());
        assert!(engine.get::<Ticker>(t).is_some());
    }

    #[test]
    #[should_panic(expected = "different builder")]
    fn foreign_component_id_rejected_at_connect() {
        let mut b = EngineBuilder::new(hour_window());
        let t = b.add(Box::new(Ticker::new(SimDuration::HOUR)));
        let _ = t;
        let mut other = EngineBuilder::new(hour_window());
        other.connect(
            OutPort::<usize>::new(ComponentId(5), 0),
            InPort::<usize>::new(ComponentId(6), 0),
        );
    }
}
