//! The event queue: a binary heap keyed by `(timestamp, sequence)`.
//!
//! Determinism is the whole design: events at equal timestamps pop in
//! insertion order (each push takes a monotone sequence number that
//! breaks heap ties), so a simulation's event trace is a pure function
//! of its inputs — never of heap internals or iteration order.

use iriscast_units::Timestamp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued entry. Ordering ignores the payload entirely: time first,
/// then insertion sequence.
struct Entry<E> {
    time: Timestamp,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-ordered event queue with stable FIFO tie-breaking at equal
/// timestamps.
///
/// `pop` always yields the earliest pending event; among events sharing
/// a timestamp, the one pushed first. The queue imposes no monotonicity
/// of its own — schedulers built on it (the [`crate::Engine`]) enforce
/// that they only push at or after the instant being processed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueues `payload` at `time`, after every event already queued at
    /// that instant.
    pub fn push(&mut self, time: Timestamp, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total pushes over the queue's lifetime (the sequence counter).
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn fifo_survives_interleaved_earlier_pushes() {
        let mut q = EventQueue::new();
        q.push(t(10), "first@10");
        q.push(t(5), "only@5");
        q.push(t(10), "second@10");
        assert_eq!(q.pop().unwrap().1, "only@5");
        assert_eq!(q.pop().unwrap().1, "first@10");
        assert_eq!(q.pop().unwrap().1, "second@10");
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(1), ());
        q.push(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2);
        assert_eq!(q.peek_time(), Some(t(1)));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed(), 2);
    }
}
