//! Deterministic discrete-event co-simulation for the iriscast stack.
//!
//! The other crates each simulate one subsystem with its own internal
//! time loop: the workload crate steps a cluster through arrivals and
//! completions, the grid crate produces half-hourly intensity series,
//! the telemetry crate sweeps a fleet over a sampling grid. This crate
//! supplies the *shared* clock that lets them run as one simulation:
//!
//! * [`EventQueue`] — a binary-heap future-event list keyed on
//!   `(timestamp, sequence)`, so events at the same instant are handled
//!   strictly in insertion order (FIFO tie-breaking). Determinism is a
//!   property of the data structure, not a convention.
//! * [`Clock`] — fixed-step tick generators, either anchored at the
//!   window start ([`Clock::every`], the telemetry sampling grid) or at
//!   epoch-aligned boundaries ([`Clock::aligned`], settlement periods).
//! * [`Component`] — the unit of co-simulation: named input/output
//!   ports carrying typed payloads ([`InPort`]/[`OutPort`] make a
//!   mis-typed wire a compile error), an optional clock, and callbacks
//!   for start, ticks, self-scheduled wake-ups and message delivery.
//! * [`Engine`] / [`EngineBuilder`] — wires components into a graph and
//!   runs it over a half-open window to quiescence or the horizon, with
//!   stop/resume ([`Engine::run_until`]) equivalent to a straight run.
//!
//! [`components`] wraps the existing subsystems as engine components —
//! job arrivals ([`components::WorkloadSource`]), the grid signal
//! ([`components::GridSignal`]), the cluster/scheduler
//! ([`components::ClusterComponent`]) and the telemetry collector
//! ([`components::CollectorComponent`], one
//! `SteppedCollector::advance` per clock tick, bit-identical to the
//! batch sweep). [`scenario::DeferralScenario`] composes all four into
//! the carbon-aware deferral feedback loop: grid intensity shifts job
//! starts, job placement drives measured power, measured energy feeds a
//! time-resolved assessment.
//!
//! # Example
//!
//! ```
//! use iriscast_sim::{Component, Ctx, EngineBuilder};
//! use iriscast_units::{Period, SimDuration, Timestamp};
//! use std::any::Any;
//!
//! struct Ping;
//! impl Component for Ping {
//!     fn name(&self) -> &str { "ping" }
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.wake_after(SimDuration::from_secs(90));
//!     }
//!     fn on_wake(&mut self, ctx: &mut Ctx<'_>) {
//!         assert_eq!(ctx.now(), Timestamp::from_secs(90));
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let window = Period::starting_at(Timestamp::EPOCH, SimDuration::HOUR);
//! let mut b = EngineBuilder::new(window);
//! b.add(Box::new(Ping));
//! let mut engine = b.build();
//! engine.run_to_horizon();
//! assert_eq!(engine.events_processed(), 1);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod clock;
mod component;
pub mod components;
mod engine;
mod event;
pub mod scenario;

pub use clock::Clock;
pub use component::{Component, ComponentId, InPort, OutPort, Payload};
pub use components::{
    snapshot_windows, CapacityOrder, ClusterComponent, CollectorComponent, Curtailment,
    DeferrableBacklog, DemandBid, DemandResponse, DemandResponseOrder, FaultCommand, FaultError,
    FaultInjector, GridSignal, LiveUtilization, MeterOutage, SnapshotSampler, TelemetryDelta,
    UtilizationUpdate, WorkloadSource,
};
pub use engine::{Ctx, Engine, EngineBuilder};
pub use event::EventQueue;
pub use scenario::{
    settle_emissions, CurtailmentRun, CurtailmentScenario, DeferralScenario, DemandResponseRun,
    DemandResponseScenario, DropoutRun, DropoutScenario, ForecastRun, ForecastScenario,
    ScenarioError, ScenarioRun, SiteRun, SiteSpec,
};
