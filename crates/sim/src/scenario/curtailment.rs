//! Grid-driven curtailment fanned across a multi-site fleet.

use crate::components::{
    ClusterComponent, CollectorComponent, Curtailment, FaultInjector, GridSignal, MeterOutage,
    WorkloadSource,
};
use crate::engine::EngineBuilder;
use crate::scenario::ScenarioError;
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::{EnergySeries, GapPolicy, SiteTelemetryConfig, SiteTelemetryResult};
use iriscast_units::{CarbonIntensity, Period, SimDuration, Timestamp};
use iriscast_workload::scheduler::FcfsScheduler;
use iriscast_workload::{Job, SimOutcome};

/// One site in a [`CurtailmentScenario`]: its cluster, its workload,
/// its monitored fleet, and (optionally) the meter outages in force
/// while it runs.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Job stream, sorted by submit instant.
    pub jobs: Vec<Job>,
    /// Telemetry config; must cover exactly [`SiteSpec::nodes`] nodes.
    pub telemetry: SiteTelemetryConfig,
    /// Meter outage script for this site (may be empty).
    pub outages: Vec<MeterOutage>,
}

/// Grid-driven curtailment over several sites as one event graph:
///
/// ```text
///                                      ┌──orders──► ClusterComponent (site 0) ──► Collector
/// GridSignal ──intensity──► Curtailment┼──orders──► ClusterComponent (site 1) ──► Collector
///                                      └──orders──► …                 ▲
///                                                   WorkloadSource ───┘ (per site)
/// ```
///
/// One intensity signal feeds one curtailment authority whose orders
/// fan out to every site through the engine's ordinary port fanout.
/// While intensity exceeds the threshold each cluster caps new starts
/// at `level` of its capacity; running jobs are never killed. Sites
/// with an outage script get a [`FaultInjector`] wired into their
/// collector, so the bench's faulted-day target exercises dropout and
/// curtailment in the same run.
#[derive(Clone, Debug)]
pub struct CurtailmentScenario {
    /// Simulated window (also each site's telemetry period).
    pub window: Period,
    /// Grid carbon intensity over (at least) the window.
    pub intensity: IntensitySeries,
    /// Curtailment trips while intensity exceeds this threshold.
    pub threshold: CarbonIntensity,
    /// Capacity fraction ordered while curtailed, `[0, 1]`.
    pub level: f64,
    /// The fleet.
    pub sites: Vec<SiteSpec>,
}

/// One site's slice of a completed multi-site run.
#[derive(Clone, Debug)]
pub struct SiteRun {
    /// The site's schedule.
    pub outcome: SimOutcome,
    /// The site's finished telemetry sweep.
    pub telemetry: SiteTelemetryResult,
    /// True site wall energy per settlement period.
    pub energy: EnergySeries,
}

/// One completed curtailment run.
#[derive(Clone, Debug)]
pub struct CurtailmentRun {
    /// Per-site results, in [`CurtailmentScenario::sites`] order.
    pub sites: Vec<SiteRun>,
    /// The curtail (`true`) / release (`false`) transition log.
    pub transitions: Vec<(Timestamp, bool)>,
    /// Events the engine processed.
    pub events_processed: u64,
}

impl CurtailmentScenario {
    /// Runs the fleet with the curtailment authority wired.
    pub fn run(&self) -> Result<CurtailmentRun, ScenarioError> {
        self.run_graph(true)
    }

    /// Runs the same fleet with the curtailment authority disconnected
    /// — the no-intervention comparison column.
    pub fn run_unconstrained(&self) -> Result<CurtailmentRun, ScenarioError> {
        self.run_graph(false)
    }

    fn run_graph(&self, wire_curtailment: bool) -> Result<CurtailmentRun, ScenarioError> {
        for site in &self.sites {
            if site.telemetry.total_nodes() != site.nodes {
                return Err(ScenarioError::NodeCountMismatch {
                    cluster: site.nodes,
                    telemetry: site.telemetry.total_nodes(),
                });
            }
        }
        let mut b = EngineBuilder::new(self.window);
        let grid = b.add(Box::new(GridSignal::new(self.intensity.clone())));
        let authority = b.add(Box::new(Curtailment::new(self.threshold, self.level)));
        b.connect(
            GridSignal::out_intensity(grid),
            Curtailment::in_intensity(authority),
        );

        let mut handles = Vec::with_capacity(self.sites.len());
        for site in &self.sites {
            let src = b.add(Box::new(WorkloadSource::new(site.jobs.clone())?));
            let cluster = b.add(Box::new(ClusterComponent::new(
                site.nodes,
                Box::new(FcfsScheduler),
            )?));
            let col = b.add(Box::new(CollectorComponent::live(
                site.telemetry.clone(),
                self.window,
            )?));
            b.connect(
                WorkloadSource::out_jobs(src),
                ClusterComponent::in_jobs(cluster),
            );
            if wire_curtailment {
                b.connect(
                    Curtailment::out_orders(authority),
                    ClusterComponent::in_curtailment(cluster),
                );
            }
            b.connect(
                ClusterComponent::out_utilization(cluster),
                CollectorComponent::in_utilization(col),
            );
            if !site.outages.is_empty() {
                let inj = b.add(Box::new(FaultInjector::new(site.outages.clone())?));
                b.connect(
                    FaultInjector::out_faults(inj),
                    CollectorComponent::in_faults(col),
                );
            }
            handles.push((cluster, col));
        }

        let mut engine = b.build();
        engine.run_to_horizon();
        let events_processed = engine.events_processed();
        let transitions = engine
            .get::<Curtailment>(authority)
            .expect("authority still in graph")
            .transitions()
            .to_vec();
        let mut sites = Vec::with_capacity(handles.len());
        for (cluster, col) in handles {
            let outcome = engine
                .get::<ClusterComponent>(cluster)
                .expect("cluster still in graph")
                .outcome(self.window);
            let telemetry = engine
                .get_mut::<CollectorComponent>(col)
                .expect("collector still in graph")
                .finish()?;
            let energy = telemetry
                .true_wall_series()
                .to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);
            sites.push(SiteRun {
                outcome,
                telemetry,
                energy,
            });
        }
        Ok(CurtailmentRun {
            sites,
            transitions,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_grid::stress_episodes;
    use iriscast_telemetry::{DropoutMode, MeterKind, NodeGroupTelemetry, NodePowerModel};
    use iriscast_units::Power;

    fn telemetry_for(site: &str, nodes: u32, seed: u64) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            site,
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            seed,
        );
        cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
        cfg
    }

    /// Quiet day with a stressed block over hours [6, 12).
    fn stressed_midday(window: Period) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = window
            .iter_steps(step)
            .map(|t| {
                if (Timestamp::from_hours(6.0)..Timestamp::from_hours(12.0)).contains(&t) {
                    CarbonIntensity::from_grams_per_kwh(380.0)
                } else {
                    CarbonIntensity::from_grams_per_kwh(90.0)
                }
            })
            .collect();
        IntensitySeries::new(window.start(), step, values)
    }

    fn steady_jobs(site: u64) -> Vec<Job> {
        (0..12)
            .map(|i| {
                Job::new(
                    site * 100 + i,
                    Timestamp::from_hours(i as f64),
                    SimDuration::from_hours(1.5),
                    4,
                )
            })
            .collect()
    }

    fn scenario() -> CurtailmentScenario {
        let window = Period::snapshot_24h();
        CurtailmentScenario {
            window,
            intensity: stressed_midday(window),
            threshold: CarbonIntensity::from_grams_per_kwh(300.0),
            level: 0.0,
            sites: (0..3)
                .map(|i| SiteSpec {
                    nodes: 8,
                    jobs: steady_jobs(i),
                    telemetry: telemetry_for(&format!("CURT-{i:02}"), 8, 20 + i),
                    outages: if i == 1 {
                        vec![MeterOutage {
                            method: MeterKind::Pdu,
                            mode: DropoutMode::HoldLast,
                            window: Period::new(
                                Timestamp::from_hours(8.0),
                                Timestamp::from_hours(10.0),
                            ),
                        }]
                    } else {
                        Vec::new()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn full_curtailment_blocks_starts_inside_every_stress_episode() {
        let s = scenario();
        let run = s.run().unwrap();
        let episodes = stress_episodes(&s.intensity, s.threshold);
        assert!(!episodes.is_empty());
        // Orders track the episodes exactly: trip at each onset,
        // release at each end.
        assert_eq!(
            run.transitions,
            episodes
                .iter()
                .flat_map(|e| [(e.window.start(), true), (e.window.end(), false)])
                .collect::<Vec<_>>()
        );
        // level = 0.0: no site starts a job strictly inside an episode
        // (a start *at* the release boundary is legal — the release
        // order lands at that instant, before queued dispatches).
        for site in &run.sites {
            for sj in &site.outcome.scheduled {
                assert!(
                    !episodes
                        .iter()
                        .any(|e| e.contains(sj.start) && sj.start != e.window.start()),
                    "job {} started at {:?} inside a stress episode",
                    sj.job.id,
                    sj.start
                );
            }
        }
    }

    #[test]
    fn unconstrained_fleet_starts_more_work_in_the_stressed_block() {
        let s = scenario();
        let curtailed = s.run().unwrap();
        let free = s.run_unconstrained().unwrap();
        let episodes = stress_episodes(&s.intensity, s.threshold);
        let starts_inside = |run: &CurtailmentRun| {
            run.sites
                .iter()
                .flat_map(|site| &site.outcome.scheduled)
                .filter(|sj| episodes.iter().any(|e| e.contains(sj.start)))
                .count()
        };
        // The authority still watches the grid in the unconstrained
        // run — only its orders are unwired — so both logs agree.
        assert_eq!(free.transitions, curtailed.transitions);
        assert!(starts_inside(&free) > starts_inside(&curtailed));
    }

    #[test]
    fn per_site_node_mismatch_is_refused() {
        let mut s = scenario();
        s.sites[2].telemetry = telemetry_for("CURT-02", 9, 22);
        assert_eq!(
            s.run().unwrap_err(),
            ScenarioError::NodeCountMismatch {
                cluster: 8,
                telemetry: 9
            }
        );
    }
}
