//! A ready-made co-simulation: carbon-aware deferral with live telemetry.

use crate::components::{ClusterComponent, CollectorComponent, GridSignal, WorkloadSource};
use crate::engine::EngineBuilder;
use crate::scenario::{ScenarioError, ScenarioRun};
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::{GapPolicy, SiteTelemetryConfig};
use iriscast_units::{CarbonIntensity, Period, SimDuration};
use iriscast_workload::scheduler::{CarbonAwareScheduler, FcfsScheduler};
use iriscast_workload::{Job, Scheduler};

/// The carbon-aware deferral feedback loop as one event graph:
///
/// ```text
/// WorkloadSource ──jobs──────────► ClusterComponent ──utilisation──► CollectorComponent
/// GridSignal ──────intensity─────►        │
///                                  (deferral decisions)
/// ```
///
/// Job arrivals and half-hourly grid intensity stream into a
/// carbon-aware scheduler; node occupancy streams into a live telemetry
/// collector whose measured power becomes the energy series a
/// time-resolved assessment consumes. [`DeferralScenario::run`] plays the
/// loop with deferral active, [`DeferralScenario::run_baseline`] with the
/// grid signal disconnected — the difference in job start times *is* the
/// intervention.
#[derive(Clone, Debug)]
pub struct DeferralScenario {
    /// Simulated window (also the telemetry collection period).
    pub window: Period,
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Job stream, sorted by submit instant.
    pub jobs: Vec<Job>,
    /// Grid carbon intensity over (at least) the window.
    pub intensity: IntensitySeries,
    /// Deferrable jobs wait while intensity exceeds this threshold.
    pub threshold: CarbonIntensity,
    /// Telemetry config for the monitored fleet; must cover exactly
    /// [`DeferralScenario::nodes`] nodes.
    pub telemetry: SiteTelemetryConfig,
}

impl DeferralScenario {
    /// Runs the loop with carbon-aware deferral active (grid signal
    /// wired into a [`CarbonAwareScheduler`] around FCFS).
    pub fn run(&self) -> Result<ScenarioRun, ScenarioError> {
        self.run_graph(
            Box::new(CarbonAwareScheduler::new(FcfsScheduler, self.threshold)),
            true,
        )
    }

    /// Runs the same graph with plain FCFS and the grid signal
    /// disconnected — the no-intervention comparison column.
    pub fn run_baseline(&self) -> Result<ScenarioRun, ScenarioError> {
        self.run_graph(Box::new(FcfsScheduler), false)
    }

    fn run_graph(
        &self,
        policy: Box<dyn Scheduler>,
        wire_grid: bool,
    ) -> Result<ScenarioRun, ScenarioError> {
        if self.telemetry.total_nodes() != self.nodes {
            return Err(ScenarioError::NodeCountMismatch {
                cluster: self.nodes,
                telemetry: self.telemetry.total_nodes(),
            });
        }
        let mut b = EngineBuilder::new(self.window);
        let src = b.add(Box::new(WorkloadSource::new(self.jobs.clone())?));
        let cluster = b.add(Box::new(ClusterComponent::new(self.nodes, policy)?));
        let collector = b.add(Box::new(CollectorComponent::live(
            self.telemetry.clone(),
            self.window,
        )?));
        b.connect(
            WorkloadSource::out_jobs(src),
            ClusterComponent::in_jobs(cluster),
        );
        if wire_grid {
            let grid = b.add(Box::new(GridSignal::new(self.intensity.clone())));
            b.connect(
                GridSignal::out_intensity(grid),
                ClusterComponent::in_intensity(cluster),
            );
        }
        b.connect(
            ClusterComponent::out_utilization(cluster),
            CollectorComponent::in_utilization(collector),
        );

        let mut engine = b.build();
        engine.run_to_horizon();
        let events_processed = engine.events_processed();
        let outcome = engine
            .get::<ClusterComponent>(cluster)
            .expect("cluster still in graph")
            .outcome(self.window);
        let telemetry = engine
            .get_mut::<CollectorComponent>(collector)
            .expect("collector still in graph")
            .finish()?;
        let energy = telemetry
            .true_wall_series()
            .to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);
        Ok(ScenarioRun {
            outcome,
            telemetry,
            energy,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_telemetry::{NodeGroupTelemetry, NodePowerModel};
    use iriscast_units::{Power, Timestamp};

    fn telemetry_for(nodes: u32) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "SIM-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            7,
        );
        // Half-hourly sampling keeps the scenario tests fast; the energy
        // series step still divides the settlement period.
        cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
        cfg
    }

    /// A dirty morning (400 g/kWh until hour 6) then a clean rest of day.
    fn dirty_morning(window: Period) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = window
            .iter_steps(step)
            .map(|t| {
                if t < Timestamp::from_hours(6.0) {
                    CarbonIntensity::from_grams_per_kwh(400.0)
                } else {
                    CarbonIntensity::from_grams_per_kwh(80.0)
                }
            })
            .collect();
        IntensitySeries::new(window.start(), step, values)
    }

    fn scenario() -> DeferralScenario {
        let window = Period::snapshot_24h();
        DeferralScenario {
            window,
            nodes: 8,
            jobs: vec![
                // Deferrable and submitted in the dirty morning.
                Job::new(
                    0,
                    Timestamp::from_hours(1.0),
                    SimDuration::from_hours(2.0),
                    4,
                )
                .deferrable_until(Timestamp::from_hours(20.0)),
                // Not deferrable: anchors the baseline.
                Job::new(
                    1,
                    Timestamp::from_hours(2.0),
                    SimDuration::from_hours(1.0),
                    2,
                ),
            ],
            intensity: dirty_morning(window),
            threshold: CarbonIntensity::from_grams_per_kwh(200.0),
            telemetry: telemetry_for(8),
        }
    }

    #[test]
    fn deferral_moves_starts_out_of_the_dirty_window() {
        let s = scenario();
        let baseline = s.run_baseline().unwrap();
        let aware = s.run().unwrap();

        let start = |run: &ScenarioRun, id: u64| {
            run.outcome
                .scheduled
                .iter()
                .find(|sj| sj.job.id == id)
                .map(|sj| sj.start)
        };
        // Baseline starts the deferrable job at submit...
        assert_eq!(start(&baseline, 0), Some(Timestamp::from_hours(1.0)));
        // ...the carbon-aware run holds it until the grid cleans up.
        assert_eq!(start(&aware, 0), Some(Timestamp::from_hours(6.0)));
        // The non-deferrable job is untouched.
        assert_eq!(start(&aware, 1), Some(Timestamp::from_hours(2.0)));
    }

    #[test]
    fn deferred_energy_lands_in_cleaner_slots() {
        let s = scenario();
        let baseline = s.run_baseline().unwrap();
        let aware = s.run().unwrap();
        // Same work → (almost) same total energy, different placement:
        // weight each settlement slot's energy by its intensity.
        let weighted = |run: &ScenarioRun| {
            run.energy
                .values()
                .iter()
                .zip(s.intensity.values())
                .map(|(e, ci)| e.kilowatt_hours() * ci.grams_per_kwh())
                .sum::<f64>()
        };
        assert!(
            weighted(&aware) < weighted(&baseline),
            "deferral should cut intensity-weighted energy"
        );
    }

    #[test]
    fn node_count_mismatch_is_refused() {
        let mut s = scenario();
        s.telemetry = telemetry_for(9);
        assert_eq!(
            s.run().unwrap_err(),
            ScenarioError::NodeCountMismatch {
                cluster: 8,
                telemetry: 9
            }
        );
    }
}
