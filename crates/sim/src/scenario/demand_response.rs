//! Demand response: parked deferrable work bid back to the grid.

use crate::components::{
    ClusterComponent, CollectorComponent, DemandBid, DemandResponse, GridSignal, WorkloadSource,
};
use crate::engine::EngineBuilder;
use crate::scenario::ScenarioError;
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::{EnergySeries, GapPolicy, SiteTelemetryConfig, SiteTelemetryResult};
use iriscast_units::{CarbonIntensity, Period, SimDuration};
use iriscast_workload::scheduler::FcfsScheduler;
use iriscast_workload::{Job, SimOutcome};

/// The demand-response loop as one event graph:
///
/// ```text
/// GridSignal ──intensity──► DemandResponse ──hold orders──► ClusterComponent ──► Collector
///                                  ▲                              │
///                                  └────────backlog feed──────────┘
/// ```
///
/// When the published intensity spikes above the threshold the
/// aggregator orders the cluster to park its deferrable queue; the
/// cluster streams its parked backlog back, and the aggregator converts
/// the peak parked node count into a [`DemandBid`] — the firm demand
/// reduction the site offers the grid for the duration of the spike.
/// Deferrable jobs whose deadline expires mid-spike still run: a bid
/// never costs a deadline.
#[derive(Clone, Debug)]
pub struct DemandResponseScenario {
    /// Simulated window (also the telemetry collection period).
    pub window: Period,
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Job stream, sorted by submit instant.
    pub jobs: Vec<Job>,
    /// Grid carbon intensity over (at least) the window.
    pub intensity: IntensitySeries,
    /// Deferrable work parks while intensity exceeds this threshold.
    pub spike_threshold: CarbonIntensity,
    /// Telemetry config; must cover exactly
    /// [`DemandResponseScenario::nodes`] nodes.
    pub telemetry: SiteTelemetryConfig,
}

/// One completed demand-response run.
#[derive(Clone, Debug)]
pub struct DemandResponseRun {
    /// The schedule.
    pub outcome: SimOutcome,
    /// The finished telemetry sweep.
    pub telemetry: SiteTelemetryResult,
    /// True site wall energy per settlement period.
    pub energy: EnergySeries,
    /// The capacity bids, one per spike, in spike order.
    pub bids: Vec<DemandBid>,
    /// Events the engine processed.
    pub events_processed: u64,
}

impl DemandResponseScenario {
    /// Runs the loop with the demand-response aggregator wired.
    pub fn run(&self) -> Result<DemandResponseRun, ScenarioError> {
        if self.telemetry.total_nodes() != self.nodes {
            return Err(ScenarioError::NodeCountMismatch {
                cluster: self.nodes,
                telemetry: self.telemetry.total_nodes(),
            });
        }
        let mut b = EngineBuilder::new(self.window);
        let src = b.add(Box::new(WorkloadSource::new(self.jobs.clone())?));
        let cluster = b.add(Box::new(ClusterComponent::new(
            self.nodes,
            Box::new(FcfsScheduler),
        )?));
        let grid = b.add(Box::new(GridSignal::new(self.intensity.clone())));
        let dr = b.add(Box::new(DemandResponse::new(self.spike_threshold)));
        let col = b.add(Box::new(CollectorComponent::live(
            self.telemetry.clone(),
            self.window,
        )?));
        b.connect(
            WorkloadSource::out_jobs(src),
            ClusterComponent::in_jobs(cluster),
        );
        b.connect(
            GridSignal::out_intensity(grid),
            DemandResponse::in_intensity(dr),
        );
        b.connect(
            DemandResponse::out_orders(dr),
            ClusterComponent::in_demand_response(cluster),
        );
        b.connect(
            ClusterComponent::out_backlog(cluster),
            DemandResponse::in_backlog(dr),
        );
        b.connect(
            ClusterComponent::out_utilization(cluster),
            CollectorComponent::in_utilization(col),
        );

        let mut engine = b.build();
        engine.run_to_horizon();
        let events_processed = engine.events_processed();
        let outcome = engine
            .get::<ClusterComponent>(cluster)
            .expect("cluster still in graph")
            .outcome(self.window);
        let bids = engine
            .get::<DemandResponse>(dr)
            .expect("aggregator still in graph")
            .bids()
            .to_vec();
        let telemetry = engine
            .get_mut::<CollectorComponent>(col)
            .expect("collector still in graph")
            .finish()?;
        let energy = telemetry
            .true_wall_series()
            .to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);
        Ok(DemandResponseRun {
            outcome,
            telemetry,
            energy,
            bids,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_grid::stress_episodes;
    use iriscast_telemetry::{NodeGroupTelemetry, NodePowerModel};
    use iriscast_units::{Power, Timestamp};

    fn telemetry_for(nodes: u32) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "DR-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            5,
        );
        cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
        cfg
    }

    /// A spike over hours [4, 8), clean elsewhere.
    fn spiky_day(window: Period) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = window
            .iter_steps(step)
            .map(|t| {
                if (Timestamp::from_hours(4.0)..Timestamp::from_hours(8.0)).contains(&t) {
                    CarbonIntensity::from_grams_per_kwh(420.0)
                } else {
                    CarbonIntensity::from_grams_per_kwh(100.0)
                }
            })
            .collect();
        IntensitySeries::new(window.start(), step, values)
    }

    fn scenario() -> DemandResponseScenario {
        let window = Period::snapshot_24h();
        DemandResponseScenario {
            window,
            nodes: 8,
            jobs: vec![
                // Deferrable, submitted mid-spike, generous deadline.
                Job::new(
                    0,
                    Timestamp::from_hours(5.0),
                    SimDuration::from_hours(1.0),
                    4,
                )
                .deferrable_until(Timestamp::from_hours(20.0)),
                // Firm job: runs through the spike regardless.
                Job::new(
                    2,
                    Timestamp::from_hours(5.5),
                    SimDuration::from_hours(1.0),
                    2,
                ),
                Job::new(
                    1,
                    Timestamp::from_hours(6.0),
                    SimDuration::from_hours(1.0),
                    2,
                )
                .deferrable_until(Timestamp::from_hours(20.0)),
            ],
            intensity: spiky_day(window),
            spike_threshold: CarbonIntensity::from_grams_per_kwh(300.0),
            telemetry: telemetry_for(8),
        }
    }

    #[test]
    fn the_parked_backlog_becomes_a_bid_over_the_spike() {
        let s = scenario();
        let run = s.run().unwrap();
        let episodes = stress_episodes(&s.intensity, s.spike_threshold);
        assert_eq!(episodes.len(), 1);
        // One bid, covering the spike, carrying the peak parked
        // backlog: jobs 0 (4 nodes) and 1 (2 nodes) both parked.
        assert_eq!(run.bids.len(), 1);
        let bid = run.bids[0];
        assert_eq!(bid.from, episodes[0].window.start());
        assert_eq!(bid.until, Some(episodes[0].window.end()));
        assert_eq!(bid.nodes, 6);
        // Deferrable jobs started only after release; the firm job ran
        // at submit.
        let start = |id: u64| {
            run.outcome
                .scheduled
                .iter()
                .find(|sj| sj.job.id == id)
                .map(|sj| sj.start)
                .unwrap()
        };
        assert_eq!(start(0), Timestamp::from_hours(8.0));
        assert_eq!(start(1), Timestamp::from_hours(8.0));
        assert_eq!(start(2), Timestamp::from_hours(5.5));
    }

    #[test]
    fn an_expiring_deadline_breaks_the_hold() {
        let mut s = scenario();
        // Job 0's deadline now lands mid-spike: it must start then,
        // hold or no hold.
        s.jobs[0] = Job::new(
            0,
            Timestamp::from_hours(5.0),
            SimDuration::from_hours(1.0),
            4,
        )
        .deferrable_until(Timestamp::from_hours(6.0));
        let run = s.run().unwrap();
        let start0 = run
            .outcome
            .scheduled
            .iter()
            .find(|sj| sj.job.id == 0)
            .map(|sj| sj.start)
            .unwrap();
        assert_eq!(start0, Timestamp::from_hours(6.0));
    }
}
