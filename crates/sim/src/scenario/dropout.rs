//! Meter dropout and recovery driven into a live collection sweep.

use crate::components::{CollectorComponent, FaultInjector, MeterOutage};
use crate::engine::EngineBuilder;
use crate::scenario::ScenarioError;
use iriscast_telemetry::{
    GapPolicy, MeterKind, SiteTelemetryConfig, SiteTelemetryResult, SyntheticUtilization,
};
use iriscast_units::{Energy, Period};

/// Meter dropout as an event graph: a [`FaultInjector`] replays an
/// outage script into a running [`CollectorComponent`], so each
/// instrument goes dark and recovers mid-sweep exactly as a real
/// monitoring stack would see it.
///
/// ```text
/// FaultInjector ──faults──► CollectorComponent (trace-backed source)
/// ```
///
/// The run finishes the sweep into the usual telemetry result, then
/// applies the typed recovery path: hold-last outages simply carry
/// stale readings, gap outages leave NaN holes that
/// `recovered_series`/`recovered_energy` repair under the configured
/// [`GapPolicy`] — or refuse with the `UnrecoverableGap` typed error
/// when a method's series is gap from end to end.
#[derive(Clone, Debug)]
pub struct DropoutScenario {
    /// Simulated window (also the telemetry collection period).
    pub window: Period,
    /// Telemetry config for the monitored fleet.
    pub telemetry: SiteTelemetryConfig,
    /// Mean utilisation of the synthetic trace the collector samples.
    pub utilization: f64,
    /// Seed of the synthetic utilisation trace.
    pub utilization_seed: u64,
    /// The outage script (validated by [`FaultInjector::new`]).
    pub outages: Vec<MeterOutage>,
    /// How gap outages are repaired after the sweep.
    pub recovery: GapPolicy,
}

/// One completed dropout run.
#[derive(Clone, Debug)]
pub struct DropoutRun {
    /// The finished sweep, gaps and all.
    pub telemetry: SiteTelemetryResult,
    /// Post-recovery energy per on-line method (PDU, IPMI, turbostat),
    /// in Table 2 order. `None` for a method the config does not
    /// monitor.
    pub recovered: Vec<(MeterKind, Option<Energy>)>,
    /// Events the engine processed.
    pub events_processed: u64,
}

impl DropoutScenario {
    /// Runs the sweep with the outage script in force and recovers the
    /// gapped series.
    ///
    /// A whole-window gap surfaces as
    /// `ScenarioError::Telemetry(UnrecoverableGap)` — the typed refusal
    /// the property suite pins.
    pub fn run(&self) -> Result<DropoutRun, ScenarioError> {
        let mut b = EngineBuilder::new(self.window);
        let inj = b.add(Box::new(FaultInjector::new(self.outages.clone())?));
        let col = b.add(Box::new(CollectorComponent::with_source(
            self.telemetry.clone(),
            self.window,
            Box::new(SyntheticUtilization::calibrated(
                self.utilization,
                self.utilization_seed,
            )),
        )?));
        b.connect(
            FaultInjector::out_faults(inj),
            CollectorComponent::in_faults(col),
        );

        let mut engine = b.build();
        engine.run_to_horizon();
        let events_processed = engine.events_processed();
        let telemetry = engine
            .get_mut::<CollectorComponent>(col)
            .expect("collector still in graph")
            .finish()?;
        let recovered = [MeterKind::Pdu, MeterKind::Ipmi, MeterKind::Turbostat]
            .into_iter()
            .map(|kind| Ok((kind, telemetry.recovered_energy(kind, self.recovery)?)))
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        Ok(DropoutRun {
            telemetry,
            recovered,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::FaultError;
    use iriscast_telemetry::{DropoutMode, NodeGroupTelemetry, NodePowerModel, TelemetryError};
    use iriscast_units::{Power, Timestamp};

    fn telemetry() -> SiteTelemetryConfig {
        SiteTelemetryConfig::new(
            "DROP-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: 16,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            11,
        )
    }

    fn scenario(outages: Vec<MeterOutage>) -> DropoutScenario {
        DropoutScenario {
            window: Period::snapshot_24h(),
            telemetry: telemetry(),
            utilization: 0.55,
            utilization_seed: 3,
            outages,
            recovery: GapPolicy::HoldLast,
        }
    }

    #[test]
    fn gap_outage_is_recovered_and_brackets_the_clean_run() {
        let clean = scenario(Vec::new()).run().unwrap();
        let faulted = scenario(vec![MeterOutage {
            method: MeterKind::Pdu,
            mode: DropoutMode::Gap,
            window: Period::new(Timestamp::from_hours(6.0), Timestamp::from_hours(12.0)),
        }])
        .run()
        .unwrap();
        // The gap is visible in the raw series...
        let pdu = faulted.telemetry.series(MeterKind::Pdu).unwrap();
        assert!(pdu.valid_fraction() < 1.0);
        // ...and the recovered energy is within the outage's worth of
        // the clean sweep (hold-last repair of a 6 h gap in 24 h).
        let clean_pdu = clean.telemetry.energy(MeterKind::Pdu).unwrap();
        let (kind, recovered) = faulted.recovered[0];
        assert_eq!(kind, MeterKind::Pdu);
        let recovered = recovered.unwrap();
        let ratio = recovered.kilowatt_hours() / clean_pdu.kilowatt_hours();
        assert!(
            (0.6..=1.4).contains(&ratio),
            "recovered PDU energy drifted: ratio {ratio}"
        );
        // Truth is identical either way: faults touch observation only.
        assert!(clean.telemetry.true_energy() == faulted.telemetry.true_energy());
    }

    #[test]
    fn whole_window_gap_is_the_typed_unrecoverable_error() {
        let window = Period::snapshot_24h();
        let err = scenario(vec![MeterOutage {
            method: MeterKind::Ipmi,
            mode: DropoutMode::Gap,
            window,
        }])
        .run()
        .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Telemetry(TelemetryError::UnrecoverableGap {
                site: "DROP-01".into(),
                method: MeterKind::Ipmi,
            })
        );
        assert!(err.to_string().contains("cannot be recovered"));
    }

    #[test]
    fn bad_fault_scripts_are_typed_refusals() {
        let window = Period::snapshot_24h();
        let err = scenario(vec![MeterOutage {
            method: MeterKind::Facility,
            mode: DropoutMode::Gap,
            window,
        }])
        .run()
        .unwrap_err();
        assert_eq!(err, ScenarioError::Fault(FaultError::FacilityNotInjectable));
    }
}
