//! Scheduling against the day-ahead forecast, settling on the outturn.

use crate::components::{ClusterComponent, CollectorComponent, GridSignal, WorkloadSource};
use crate::engine::EngineBuilder;
use crate::scenario::{settle_emissions, ScenarioError};
use iriscast_grid::{synthetic_day_ahead, IntensitySeries};
use iriscast_telemetry::{EnergySeries, GapPolicy, SiteTelemetryConfig, SiteTelemetryResult};
use iriscast_units::{CarbonIntensity, Period, SimDuration};
use iriscast_workload::scheduler::{CarbonAwareScheduler, FcfsScheduler};
use iriscast_workload::{Job, SimOutcome};

/// A forecast-driven carbon-aware run: the cluster schedules against
/// the *day-ahead* intensity view while its emissions are settled
/// against the *outturn* — exactly the information asymmetry a real
/// operator faces.
///
/// ```text
/// GridSignal (outturn + forecast) ──forecast──► ClusterComponent ──► Collector
///                    │
///                 outturn ──► settlement (after the run)
/// ```
///
/// [`ForecastScenario::run`] wires the forecast port into the
/// scheduler; [`ForecastScenario::run_oracle`] wires the outturn
/// instead — the perfect-information bound. A zero-error forecast makes
/// the two runs identical, which is the invariant the property suite
/// pins; a wrong forecast is charged for its mistakes at settlement.
#[derive(Clone, Debug)]
pub struct ForecastScenario {
    /// Simulated window (also the telemetry collection period).
    pub window: Period,
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Job stream, sorted by submit instant.
    pub jobs: Vec<Job>,
    /// The intensity outturn over (at least) the window.
    pub actual: IntensitySeries,
    /// Explicit day-ahead series; `None` synthesises one from the
    /// outturn with [`synthetic_day_ahead`] at
    /// [`ForecastScenario::forecast_rmse`].
    pub forecast: Option<IntensitySeries>,
    /// RMSE of the synthesised forecast (ignored when
    /// [`ForecastScenario::forecast`] is given). Zero is the oracle.
    pub forecast_rmse: f64,
    /// Seed of the synthesised forecast noise.
    pub forecast_seed: u64,
    /// Deferrable jobs wait while the *believed* intensity exceeds this.
    pub threshold: CarbonIntensity,
    /// Telemetry config; must cover exactly [`ForecastScenario::nodes`]
    /// nodes.
    pub telemetry: SiteTelemetryConfig,
}

/// One completed forecast run.
#[derive(Clone, Debug)]
pub struct ForecastRun {
    /// The schedule.
    pub outcome: SimOutcome,
    /// The finished telemetry sweep.
    pub telemetry: SiteTelemetryResult,
    /// True site wall energy per settlement period.
    pub energy: EnergySeries,
    /// The day-ahead series the scheduler saw.
    pub forecast: IntensitySeries,
    /// Emissions settled against the outturn, grams CO₂e.
    pub settled_grams: f64,
    /// Events the engine processed.
    pub events_processed: u64,
}

impl ForecastScenario {
    /// The day-ahead series this scenario schedules against.
    pub fn day_ahead(&self) -> IntensitySeries {
        self.forecast.clone().unwrap_or_else(|| {
            synthetic_day_ahead(&self.actual, self.forecast_rmse, self.forecast_seed)
        })
    }

    /// Runs with the scheduler reading the day-ahead forecast.
    pub fn run(&self) -> Result<ForecastRun, ScenarioError> {
        self.run_graph(false)
    }

    /// Runs with the scheduler reading the outturn itself — the
    /// perfect-information bound a forecast run is compared against.
    pub fn run_oracle(&self) -> Result<ForecastRun, ScenarioError> {
        self.run_graph(true)
    }

    fn run_graph(&self, oracle: bool) -> Result<ForecastRun, ScenarioError> {
        if self.telemetry.total_nodes() != self.nodes {
            return Err(ScenarioError::NodeCountMismatch {
                cluster: self.nodes,
                telemetry: self.telemetry.total_nodes(),
            });
        }
        let forecast = self.day_ahead();
        let mut b = EngineBuilder::new(self.window);
        let src = b.add(Box::new(WorkloadSource::new(self.jobs.clone())?));
        let cluster = b.add(Box::new(ClusterComponent::new(
            self.nodes,
            Box::new(CarbonAwareScheduler::new(FcfsScheduler, self.threshold)),
        )?));
        let grid = b.add(Box::new(GridSignal::with_forecast(
            self.actual.clone(),
            forecast.clone(),
        )));
        let col = b.add(Box::new(CollectorComponent::live(
            self.telemetry.clone(),
            self.window,
        )?));
        b.connect(
            WorkloadSource::out_jobs(src),
            ClusterComponent::in_jobs(cluster),
        );
        if oracle {
            b.connect(
                GridSignal::out_intensity(grid),
                ClusterComponent::in_intensity(cluster),
            );
        } else {
            b.connect(
                GridSignal::out_forecast(grid),
                ClusterComponent::in_intensity(cluster),
            );
        }
        b.connect(
            ClusterComponent::out_utilization(cluster),
            CollectorComponent::in_utilization(col),
        );

        let mut engine = b.build();
        engine.run_to_horizon();
        let events_processed = engine.events_processed();
        let outcome = engine
            .get::<ClusterComponent>(cluster)
            .expect("cluster still in graph")
            .outcome(self.window);
        let telemetry = engine
            .get_mut::<CollectorComponent>(col)
            .expect("collector still in graph")
            .finish()?;
        let energy = telemetry
            .true_wall_series()
            .to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);
        let settled_grams = settle_emissions(&energy, &self.actual);
        Ok(ForecastRun {
            outcome,
            telemetry,
            energy,
            forecast,
            settled_grams,
            events_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_telemetry::{NodeGroupTelemetry, NodePowerModel};
    use iriscast_units::{Power, Timestamp};

    fn telemetry_for(nodes: u32) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "FC-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(140.0),
                    Power::from_watts(620.0),
                ),
            }],
            13,
        );
        cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
        cfg
    }

    fn step_series(window: Period, before: f64, after: f64, split_h: f64) -> IntensitySeries {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let values = window
            .iter_steps(step)
            .map(|t| {
                if t < Timestamp::from_hours(split_h) {
                    CarbonIntensity::from_grams_per_kwh(before)
                } else {
                    CarbonIntensity::from_grams_per_kwh(after)
                }
            })
            .collect();
        IntensitySeries::new(window.start(), step, values)
    }

    fn scenario() -> ForecastScenario {
        let window = Period::snapshot_24h();
        ForecastScenario {
            window,
            nodes: 8,
            jobs: vec![Job::new(
                0,
                Timestamp::from_hours(1.0),
                SimDuration::from_hours(2.0),
                4,
            )
            .deferrable_until(Timestamp::from_hours(22.0))],
            actual: step_series(window, 400.0, 80.0, 6.0),
            forecast: None,
            forecast_rmse: 0.0,
            forecast_seed: 17,
            threshold: CarbonIntensity::from_grams_per_kwh(200.0),
            telemetry: telemetry_for(8),
        }
    }

    #[test]
    fn a_zero_error_forecast_is_the_oracle() {
        let s = scenario();
        let forecast_run = s.run().unwrap();
        let oracle_run = s.run_oracle().unwrap();
        assert_eq!(
            forecast_run.outcome.scheduled.len(),
            oracle_run.outcome.scheduled.len()
        );
        for (f, o) in forecast_run
            .outcome
            .scheduled
            .iter()
            .zip(&oracle_run.outcome.scheduled)
        {
            assert_eq!(f.job.id, o.job.id);
            assert_eq!(f.start, o.start);
        }
        assert!(forecast_run.settled_grams == oracle_run.settled_grams);
        assert!(forecast_run.telemetry == oracle_run.telemetry);
    }

    #[test]
    fn a_wrong_forecast_is_charged_at_settlement() {
        let mut s = scenario();
        // The forecast swears the morning is clean and the midday dirty
        // — exactly backwards. The policy trusts it, starts the job in
        // the actually-dirty morning, and pays at settlement.
        s.forecast = Some(step_series(s.window, 100.0, 400.0, 6.0));
        let misled = s.run().unwrap();
        let oracle = s.run_oracle().unwrap();
        let start = |run: &ForecastRun| run.outcome.scheduled[0].start;
        assert_eq!(start(&misled), Timestamp::from_hours(1.0));
        assert_eq!(start(&oracle), Timestamp::from_hours(6.0));
        assert!(
            misled.settled_grams > oracle.settled_grams,
            "misled {} should settle above oracle {}",
            misled.settled_grams,
            oracle.settled_grams
        );
    }
}
