//! Ready-made co-simulations — the scenario library.
//!
//! Each scenario composes the engine components into one named
//! experiment the paper's assessment layer can consume directly:
//!
//! * [`DeferralScenario`] — carbon-aware deferral with live telemetry
//!   (the PR 7 feedback loop).
//! * [`DropoutScenario`] — meter dropout and recovery driven into a
//!   running collector by a [`crate::FaultInjector`], with typed
//!   recovery of the gapped series.
//! * [`CurtailmentScenario`] — one grid signal fanned through a
//!   curtailment authority into several sites, each shedding new starts
//!   while the grid is stressed.
//! * [`DemandResponseScenario`] — the deferred backlog bid back to the
//!   grid as firm demand reduction over intensity spikes.
//! * [`ForecastScenario`] — scheduling against the day-ahead forecast,
//!   settling emissions against the outturn.
//!
//! The scenarios are engine graphs, not scripts: every invariant the
//! property suite pins (curtailed slots see no starts, recovered energy
//! brackets truth, zero-error forecasts match the oracle) is emergent
//! from the same event ordering the production graph uses.

mod curtailment;
mod deferral;
mod demand_response;
mod dropout;
mod forecast;

pub use curtailment::{CurtailmentRun, CurtailmentScenario, SiteRun, SiteSpec};
pub use deferral::DeferralScenario;
pub use demand_response::{DemandResponseRun, DemandResponseScenario};
pub use dropout::{DropoutRun, DropoutScenario};
pub use forecast::{ForecastRun, ForecastScenario};

use crate::components::FaultError;
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::{EnergySeries, SiteTelemetryResult, TelemetryError};
use iriscast_workload::{SimOutcome, WorkloadError};
use std::fmt;

/// What stopped a scenario from running.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The workload side refused (unsorted jobs, empty cluster).
    Workload(WorkloadError),
    /// The telemetry side refused (empty window, no nodes, short sweep,
    /// or a gap spanning the whole window).
    Telemetry(TelemetryError),
    /// The fault script was refused (overlapping outages, empty
    /// windows, facility injection).
    Fault(FaultError),
    /// The telemetry config monitors a different node count than the
    /// cluster schedules onto.
    NodeCountMismatch {
        /// Nodes the cluster schedules onto.
        cluster: u32,
        /// Nodes the telemetry config monitors.
        telemetry: u32,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Workload(e) => write!(f, "workload: {e}"),
            ScenarioError::Telemetry(e) => write!(f, "telemetry: {e}"),
            ScenarioError::Fault(e) => write!(f, "fault script: {e}"),
            ScenarioError::NodeCountMismatch { cluster, telemetry } => write!(
                f,
                "cluster has {cluster} nodes but the telemetry config monitors {telemetry}"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<WorkloadError> for ScenarioError {
    fn from(e: WorkloadError) -> Self {
        ScenarioError::Workload(e)
    }
}

impl From<TelemetryError> for ScenarioError {
    fn from(e: TelemetryError) -> Self {
        ScenarioError::Telemetry(e)
    }
}

impl From<FaultError> for ScenarioError {
    fn from(e: FaultError) -> Self {
        ScenarioError::Fault(e)
    }
}

/// One completed scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The schedule (starts, ends, node placements, unstarted jobs).
    pub outcome: SimOutcome,
    /// The full measured-telemetry result for the window.
    pub telemetry: SiteTelemetryResult,
    /// True site wall energy per settlement period — the series a
    /// `TimeResolvedAssessment` takes as its `energy_series`.
    pub energy: EnergySeries,
    /// Events the engine processed.
    pub events_processed: u64,
}

/// Settles an energy series against an intensity outturn: total grams
/// of CO₂e, slot by slot, over the overlap of the two series. This is
/// the figure a forecast-driven policy is ultimately judged on — what
/// the grid actually was, not what it was predicted to be.
pub fn settle_emissions(energy: &EnergySeries, outturn: &IntensitySeries) -> f64 {
    energy
        .iter()
        .map(|(slot, e)| {
            outturn
                .at(slot.start())
                .map_or(0.0, |ci| e.kilowatt_hours() * ci.grams_per_kwh())
        })
        .sum()
}
