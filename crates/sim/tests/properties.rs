//! Property-based tests for the discrete-event engine's invariants:
//! FIFO determinism of the event queue, stop/resume equivalence of the
//! engine (with and without fault events in flight), bit-identity of
//! the clocked telemetry collector against the batch sweep, and the
//! scenario library's pinned invariants (curtailment, demand response,
//! forecast-vs-outturn).

use iriscast_grid::{stress_episodes, IntensitySeries};
use iriscast_sim::{
    ClusterComponent, CollectorComponent, Curtailment, CurtailmentScenario, DemandResponseScenario,
    EngineBuilder, EventQueue, FaultInjector, ForecastScenario, GridSignal, MeterOutage, SiteSpec,
    WorkloadSource,
};
use iriscast_telemetry::{
    DropoutMode, MeterKind, NodeGroupTelemetry, NodePowerModel, SiteCollector, SiteTelemetryConfig,
    SyntheticUtilization, TelemetryError,
};
use iriscast_units::{CarbonIntensity, Period, Power, SimDuration, Timestamp};
use iriscast_workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler};
use iriscast_workload::{Job, SimOutcome};
use proptest::prelude::*;

/// Strategy: an arbitrary (unsorted, duplicate-heavy) event schedule.
/// Few distinct timestamps on purpose — collisions are the interesting
/// case for FIFO tie-breaking.
fn event_schedule() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..6, 1..64)
}

/// Strategy: a plausible sorted job stream for an 8-node day, ~40% of it
/// deferrable.
fn job_stream() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0i64..86_400,     // submit seconds
            60i64..6 * 3_600, // runtime
            1u32..=8,         // width
            0u8..2,           // deferrable?
        ),
        1..40,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.iter()
            .enumerate()
            .map(|(i, &(submit, runtime, nodes, deferrable))| {
                let job = Job::new(
                    i as u64,
                    Timestamp::from_secs(submit),
                    SimDuration::from_secs(runtime),
                    nodes,
                );
                if deferrable == 1 {
                    job.deferrable_until(Timestamp::from_secs(submit + 12 * 3_600))
                } else {
                    job
                }
            })
            .collect()
    })
}

/// A zig-zag intensity week whose shape depends on `seed`, so the
/// carbon-aware policy makes different deferral decisions per case.
fn intensity_day(seed: u64) -> IntensitySeries {
    let step = SimDuration::SETTLEMENT_PERIOD;
    let values = (0..48)
        .map(|i| {
            let phase = (i as u64 + seed) % 7;
            CarbonIntensity::from_grams_per_kwh(60.0 + 40.0 * phase as f64)
        })
        .collect();
    IntensitySeries::new(Timestamp::EPOCH, step, values)
}

/// Builds the full co-simulation graph (workload → cluster ← grid) and
/// returns the engine plus the cluster's component id.
fn build_graph(jobs: Vec<Job>, seed: u64) -> (iriscast_sim::Engine, iriscast_sim::ComponentId) {
    let window = Period::snapshot_24h();
    let mut b = EngineBuilder::new(window);
    let src = b.add(Box::new(WorkloadSource::new(jobs).expect("sorted")));
    let grid = b.add(Box::new(GridSignal::new(intensity_day(seed))));
    let cluster = b.add(Box::new(
        ClusterComponent::new(
            8,
            Box::new(CarbonAwareScheduler::new(
                EasyBackfillScheduler,
                CarbonIntensity::from_grams_per_kwh(150.0),
            )),
        )
        .expect("non-empty cluster"),
    ));
    b.connect(
        WorkloadSource::out_jobs(src),
        ClusterComponent::in_jobs(cluster),
    );
    b.connect(
        GridSignal::out_intensity(grid),
        ClusterComponent::in_intensity(cluster),
    );
    (b.build(), cluster)
}

fn outcome_of(engine: &iriscast_sim::Engine, cluster: iriscast_sim::ComponentId) -> SimOutcome {
    engine
        .get::<ClusterComponent>(cluster)
        .expect("cluster in graph")
        .outcome(Period::snapshot_24h())
}

/// Telemetry config for the property graphs: one 8-node group, sampled
/// at the settlement period so a 24 h sweep stays cheap under proptest.
fn prop_telemetry(nodes: u32, seed: u64) -> SiteTelemetryConfig {
    let mut cfg = SiteTelemetryConfig::new(
        "PROP-02",
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: nodes,
            power_model: NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0)),
        }],
        seed,
    );
    cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
    cfg
}

/// Strategy: a valid outage script — per-method windows kept disjoint
/// by advancing a per-method cursor, so every generated script passes
/// [`FaultInjector::new`] by construction.
fn outage_script() -> impl Strategy<Value = Vec<MeterOutage>> {
    prop::collection::vec(
        (
            0usize..3,        // method index (PDU / IPMI / turbostat)
            0u8..2,           // hold-last vs gap
            0i64..8 * 3_600,  // gap before the outage
            60i64..6 * 3_600, // outage length
        ),
        0..5,
    )
    .prop_map(|raw| {
        let methods = [MeterKind::Pdu, MeterKind::Ipmi, MeterKind::Turbostat];
        let mut cursor = [0i64; 3];
        raw.into_iter()
            .map(|(mi, mode, gap, len)| {
                let start = cursor[mi] + gap;
                cursor[mi] = start + len;
                MeterOutage {
                    method: methods[mi],
                    mode: if mode == 0 {
                        DropoutMode::HoldLast
                    } else {
                        DropoutMode::Gap
                    },
                    window: Period::new(
                        Timestamp::from_secs(start),
                        Timestamp::from_secs(start + len),
                    ),
                }
            })
            .collect()
    })
}

/// The full faulted co-simulation graph: arrivals → carbon-aware
/// cluster ← grid signal, a curtailment authority capping the cluster,
/// a live collector metering it, and a fault injector driving outages
/// into the collector. Returns (engine, cluster id, collector id).
fn build_faulted_graph(
    jobs: Vec<Job>,
    seed: u64,
    outages: Vec<MeterOutage>,
) -> (
    iriscast_sim::Engine,
    iriscast_sim::ComponentId,
    iriscast_sim::ComponentId,
) {
    let window = Period::snapshot_24h();
    let mut b = EngineBuilder::new(window);
    let src = b.add(Box::new(WorkloadSource::new(jobs).expect("sorted")));
    let grid = b.add(Box::new(GridSignal::new(intensity_day(seed))));
    let cluster = b.add(Box::new(
        ClusterComponent::new(
            8,
            Box::new(CarbonAwareScheduler::new(
                EasyBackfillScheduler,
                CarbonIntensity::from_grams_per_kwh(150.0),
            )),
        )
        .expect("non-empty cluster"),
    ));
    let authority = b.add(Box::new(Curtailment::new(
        CarbonIntensity::from_grams_per_kwh(250.0),
        0.5,
    )));
    let col = b.add(Box::new(
        CollectorComponent::live(prop_telemetry(8, seed), window).expect("valid collector"),
    ));
    let inj = b.add(Box::new(FaultInjector::new(outages).expect("valid script")));
    b.connect(
        WorkloadSource::out_jobs(src),
        ClusterComponent::in_jobs(cluster),
    );
    b.connect(
        GridSignal::out_intensity(grid),
        ClusterComponent::in_intensity(cluster),
    );
    b.connect(
        GridSignal::out_intensity(grid),
        Curtailment::in_intensity(authority),
    );
    b.connect(
        Curtailment::out_orders(authority),
        ClusterComponent::in_curtailment(cluster),
    );
    b.connect(
        ClusterComponent::out_utilization(cluster),
        CollectorComponent::in_utilization(col),
    );
    b.connect(
        FaultInjector::out_faults(inj),
        CollectorComponent::in_faults(col),
    );
    (b.build(), cluster, col)
}

fn finish_collector(
    engine: &mut iriscast_sim::Engine,
    col: iriscast_sim::ComponentId,
) -> iriscast_telemetry::SiteTelemetryResult {
    engine
        .get_mut::<CollectorComponent>(col)
        .expect("collector in graph")
        .finish()
        .expect("sweep complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The queue pops in timestamp order with strict FIFO tie-breaking:
    /// however the pushes are interleaved, the pop order is the stable
    /// sort of the push order by timestamp.
    #[test]
    fn event_queue_is_a_stable_sort(times in event_schedule()) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Timestamp::from_secs(t), i);
        }
        let mut expected: Vec<(i64, usize)> =
            times.iter().map(|&t| (t, 0)).collect();
        for (i, e) in expected.iter_mut().enumerate() {
            e.1 = i;
        }
        expected.sort_by_key(|&(t, _)| t); // stable: preserves push order
        let mut popped = Vec::new();
        while let Some((t, payload)) = q.pop() {
            popped.push((t.as_secs(), payload));
        }
        prop_assert_eq!(popped, expected);
    }

    /// Permuting how equal-timestamp events are *interleaved with other
    /// timestamps* never reorders them relative to each other.
    #[test]
    fn fifo_survives_any_interleaving(times in event_schedule()) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Timestamp::from_secs(t), i);
        }
        let mut last_per_time = std::collections::HashMap::new();
        while let Some((t, payload)) = q.pop() {
            if let Some(&prev) = last_per_time.get(&t) {
                prop_assert!(
                    payload > prev,
                    "t={} popped {} after {}",
                    t.as_secs(),
                    payload,
                    prev
                );
            }
            last_per_time.insert(t, payload);
        }
    }

    /// Running to the horizon in one go equals stopping at an arbitrary
    /// instant and resuming — same schedule, same event count. The graph
    /// is the full co-simulation (arrivals, grid signal, carbon-aware
    /// cluster), so the property covers ticks, wakes and deliveries.
    #[test]
    fn stop_resume_equals_straight_run(
        jobs in job_stream(),
        seed in 0u64..1_000,
        split in 0i64..86_400,
    ) {
        let (mut straight, c1) = build_graph(jobs.clone(), seed);
        let straight_events = straight.run_to_horizon();

        let (mut halves, c2) = build_graph(jobs, seed);
        let first = halves.run_until(Timestamp::from_secs(split));
        let second = halves.run_to_horizon();

        prop_assert_eq!(first + second, straight_events);
        prop_assert_eq!(outcome_of(&halves, c2), outcome_of(&straight, c1));
    }

    /// A graph containing only the clocked collector reproduces the batch
    /// `SiteCollector::collect` bit for bit, across fleet sizes (either
    /// side of the 64-node chunk boundary), seeds, coverages and sample
    /// steps.
    #[test]
    fn clocked_collector_matches_batch_bit_for_bit(
        nodes in 1u32..150,
        seed in 0u64..1_000,
        coverage in 0.0f64..=1.0,
        step_minutes in 1u32..=30,
        util_seed in 0u64..1_000,
    ) {
        let mut cfg = SiteTelemetryConfig::new(
            "PROP-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(120.0),
                    Power::from_watts(550.0),
                ),
            }],
            seed,
        );
        cfg.ipmi_node_coverage = coverage;
        cfg.sample_step = SimDuration::from_secs(i64::from(step_minutes) * 60);
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let util = SyntheticUtilization::calibrated(0.55, util_seed);

        let batch = SiteCollector::new(cfg.clone())
            .collect(period, &util, 4)
            .expect("valid sweep");

        let mut b = EngineBuilder::new(period);
        let c = b.add(Box::new(
            CollectorComponent::with_source(cfg, period, Box::new(util))
                .expect("valid collector"),
        ));
        let mut engine = b.build();
        engine.run_to_horizon();
        let clocked = engine
            .get_mut::<CollectorComponent>(c)
            .expect("collector in graph")
            .finish()
            .expect("sweep complete");
        prop_assert!(clocked == batch, "clocked sweep diverged from batch path");
    }

    /// Stop/resume equivalence holds with fault events in flight: the
    /// full faulted graph (arrivals, grid, curtailment, live collector,
    /// fault injector) split at an arbitrary instant produces the same
    /// schedule, the same event count, and a bit-identical telemetry
    /// sweep as the straight run — outage transitions crossing the
    /// split included.
    #[test]
    fn stop_resume_survives_faults_in_flight(
        jobs in job_stream(),
        seed in 0u64..1_000,
        outages in outage_script(),
        split in 0i64..86_400,
    ) {
        let (mut straight, c1, t1) = build_faulted_graph(jobs.clone(), seed, outages.clone());
        let straight_events = straight.run_to_horizon();
        let straight_sweep = finish_collector(&mut straight, t1);

        let (mut halves, c2, t2) = build_faulted_graph(jobs, seed, outages);
        let first = halves.run_until(Timestamp::from_secs(split));
        let second = halves.run_to_horizon();
        let halves_sweep = finish_collector(&mut halves, t2);

        prop_assert_eq!(first + second, straight_events);
        prop_assert_eq!(outcome_of(&halves, c2), outcome_of(&straight, c1));
        // bitwise_eq, not ==: gap outages leave NaN holes, and float
        // equality would call an identical gapped sweep unequal.
        prop_assert!(
            halves_sweep.bitwise_eq(&straight_sweep),
            "telemetry sweep diverged across the stop/resume split"
        );
    }

    /// A wired fault injector whose script never fires inside the
    /// window (empty, or an outage entirely beyond the horizon) changes
    /// nothing: the faulted graph, the plain collector graph, and the
    /// parallel batch sweep agree bit for bit at any worker count.
    #[test]
    fn dropout_free_injector_graph_is_bit_identical(
        nodes in 1u32..100,
        seed in 0u64..1_000,
        util_seed in 0u64..1_000,
        workers_idx in 0usize..3,
        beyond_horizon in 0u8..2,
    ) {
        let workers = [1usize, 4, 16][workers_idx];
        let cfg = prop_telemetry(nodes, seed);
        let period = Period::snapshot_24h();
        let util = SyntheticUtilization::calibrated(0.55, util_seed);
        let batch = SiteCollector::new(cfg.clone())
            .collect(period, &util, workers)
            .expect("valid sweep");

        let mut b = EngineBuilder::new(period);
        let plain = b.add(Box::new(
            CollectorComponent::with_source(cfg.clone(), period, Box::new(util))
                .expect("valid collector"),
        ));
        let mut plain_engine = b.build();
        plain_engine.run_to_horizon();
        let plain_sweep = finish_collector(&mut plain_engine, plain);

        let script = if beyond_horizon == 1 {
            // Scheduled, validated, wired — but dark only after the
            // window closes, so it must never be observed.
            vec![MeterOutage {
                method: MeterKind::Pdu,
                mode: DropoutMode::Gap,
                window: Period::new(Timestamp::from_hours(25.0), Timestamp::from_hours(26.0)),
            }]
        } else {
            Vec::new()
        };
        let mut b = EngineBuilder::new(period);
        let inj = b.add(Box::new(FaultInjector::new(script).expect("valid script")));
        let col = b.add(Box::new(
            CollectorComponent::with_source(cfg, period, Box::new(util))
                .expect("valid collector"),
        ));
        b.connect(FaultInjector::out_faults(inj), CollectorComponent::in_faults(col));
        let mut faulted_engine = b.build();
        faulted_engine.run_to_horizon();
        let faulted_sweep = finish_collector(&mut faulted_engine, col);

        prop_assert!(plain_sweep == batch, "plain graph diverged from batch");
        prop_assert!(faulted_sweep == batch, "dropout-free injector graph diverged from batch");
    }

    /// Full curtailment (level 0) admits no job start strictly inside a
    /// stress episode, at every site of the fleet. The episodes come
    /// from the same intensity trace the grid signal publishes — the
    /// invariant is checked against the trace, not a hand-kept script.
    /// (A start *at* an episode's onset instant is legal: the collector
    /// ordering convention applies to orders too, so a dispatch at the
    /// boundary may precede the order landing at that same instant.)
    #[test]
    fn full_curtailment_admits_no_starts_inside_stress_episodes(
        jobs_a in job_stream(),
        jobs_b in job_stream(),
        seed in 0u64..1_000,
    ) {
        let window = Period::snapshot_24h();
        let scenario = CurtailmentScenario {
            window,
            intensity: intensity_day(seed),
            threshold: CarbonIntensity::from_grams_per_kwh(200.0),
            level: 0.0,
            sites: [jobs_a, jobs_b]
                .into_iter()
                .enumerate()
                .map(|(i, jobs)| SiteSpec {
                    nodes: 8,
                    jobs,
                    telemetry: prop_telemetry(8, seed + i as u64),
                    outages: Vec::new(),
                })
                .collect(),
        };
        let run = scenario.run().expect("valid scenario");
        let episodes = stress_episodes(&scenario.intensity, scenario.threshold);
        for site in &run.sites {
            for sj in &site.outcome.scheduled {
                prop_assert!(
                    !episodes
                        .iter()
                        .any(|e| e.contains(sj.start) && sj.start != e.window.start()),
                    "job {} started at {} s inside a fully curtailed episode",
                    sj.job.id,
                    sj.start.as_secs()
                );
            }
        }
    }

    /// Demand response never starts deferrable work whose deadline is
    /// still in the future strictly inside an intensity spike — the
    /// parked backlog is exactly the capacity bid to the grid. Jobs
    /// whose deadline expires mid-spike are exempt: a bid never costs a
    /// deadline.
    #[test]
    fn demand_response_parks_unexpired_deferrable_work_through_spikes(
        jobs in job_stream(),
        seed in 0u64..1_000,
    ) {
        let window = Period::snapshot_24h();
        let scenario = DemandResponseScenario {
            window,
            nodes: 8,
            jobs,
            intensity: intensity_day(seed),
            spike_threshold: CarbonIntensity::from_grams_per_kwh(250.0),
            telemetry: prop_telemetry(8, seed),
        };
        let run = scenario.run().expect("valid scenario");
        let episodes = stress_episodes(&scenario.intensity, scenario.spike_threshold);
        for sj in &run.outcome.scheduled {
            let unexpired = sj.job.deferrable
                && sj.job.latest_start.is_none_or(|d| d > sj.start);
            prop_assert!(
                !(unexpired
                    && episodes
                        .iter()
                        .any(|e| e.contains(sj.start) && sj.start != e.window.start())),
                "deferrable job {} started at {} s inside a spike with its deadline open",
                sj.job.id,
                sj.start.as_secs()
            );
        }
    }

    /// A zero-error forecast is the oracle: scheduling against the
    /// day-ahead port and scheduling against the outturn produce the
    /// same schedule, the same settled emissions, and a bit-identical
    /// telemetry sweep.
    #[test]
    fn zero_rmse_forecast_schedules_like_the_oracle(
        jobs in job_stream(),
        seed in 0u64..1_000,
    ) {
        let window = Period::snapshot_24h();
        let scenario = ForecastScenario {
            window,
            nodes: 8,
            jobs,
            actual: intensity_day(seed),
            forecast: None,
            forecast_rmse: 0.0,
            forecast_seed: seed,
            threshold: CarbonIntensity::from_grams_per_kwh(150.0),
            telemetry: prop_telemetry(8, seed),
        };
        let forecast_run = scenario.run().expect("valid scenario");
        let oracle_run = scenario.run_oracle().expect("valid scenario");
        prop_assert_eq!(
            forecast_run.outcome.scheduled.len(),
            oracle_run.outcome.scheduled.len()
        );
        for (f, o) in forecast_run
            .outcome
            .scheduled
            .iter()
            .zip(&oracle_run.outcome.scheduled)
        {
            prop_assert_eq!(f.job.id, o.job.id);
            prop_assert_eq!(f.start, o.start);
        }
        prop_assert_eq!(forecast_run.settled_grams, oracle_run.settled_grams);
        prop_assert!(
            forecast_run.telemetry == oracle_run.telemetry,
            "telemetry diverged between forecast and oracle runs"
        );
    }
}

/// Cutting a faulted run short surfaces as the `IncompleteSweep` typed
/// error — the outage in flight does not mask the refusal or corrupt
/// the step count.
#[test]
fn early_stop_with_an_outage_in_flight_is_an_incomplete_sweep() {
    let jobs = vec![Job::new(
        0,
        Timestamp::from_hours(1.0),
        SimDuration::from_hours(2.0),
        4,
    )];
    let outages = vec![MeterOutage {
        method: MeterKind::Pdu,
        mode: DropoutMode::Gap,
        window: Period::new(Timestamp::from_hours(2.0), Timestamp::from_hours(20.0)),
    }];
    let (mut engine, _cluster, col) = build_faulted_graph(jobs, 7, outages);
    engine.run_until(Timestamp::from_hours(12.0));
    let err = engine
        .get_mut::<CollectorComponent>(col)
        .expect("collector in graph")
        .finish()
        .unwrap_err();
    match err {
        TelemetryError::IncompleteSweep { site, done, steps } => {
            assert_eq!(site, "PROP-02");
            assert_eq!(steps, 48);
            assert_eq!(done, 24);
        }
        other => panic!("expected IncompleteSweep, got {other}"),
    }
}
