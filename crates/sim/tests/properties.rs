//! Property-based tests for the discrete-event engine's invariants:
//! FIFO determinism of the event queue, stop/resume equivalence of the
//! engine, and bit-identity of the clocked telemetry collector against
//! the batch sweep.

use iriscast_grid::IntensitySeries;
use iriscast_sim::{
    ClusterComponent, CollectorComponent, EngineBuilder, EventQueue, GridSignal, WorkloadSource,
};
use iriscast_telemetry::{
    NodeGroupTelemetry, NodePowerModel, SiteCollector, SiteTelemetryConfig, SyntheticUtilization,
};
use iriscast_units::{CarbonIntensity, Period, Power, SimDuration, Timestamp};
use iriscast_workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler};
use iriscast_workload::{Job, SimOutcome};
use proptest::prelude::*;

/// Strategy: an arbitrary (unsorted, duplicate-heavy) event schedule.
/// Few distinct timestamps on purpose — collisions are the interesting
/// case for FIFO tie-breaking.
fn event_schedule() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..6, 1..64)
}

/// Strategy: a plausible sorted job stream for an 8-node day, ~40% of it
/// deferrable.
fn job_stream() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0i64..86_400,     // submit seconds
            60i64..6 * 3_600, // runtime
            1u32..=8,         // width
            0u8..2,           // deferrable?
        ),
        1..40,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.iter()
            .enumerate()
            .map(|(i, &(submit, runtime, nodes, deferrable))| {
                let job = Job::new(
                    i as u64,
                    Timestamp::from_secs(submit),
                    SimDuration::from_secs(runtime),
                    nodes,
                );
                if deferrable == 1 {
                    job.deferrable_until(Timestamp::from_secs(submit + 12 * 3_600))
                } else {
                    job
                }
            })
            .collect()
    })
}

/// A zig-zag intensity week whose shape depends on `seed`, so the
/// carbon-aware policy makes different deferral decisions per case.
fn intensity_day(seed: u64) -> IntensitySeries {
    let step = SimDuration::SETTLEMENT_PERIOD;
    let values = (0..48)
        .map(|i| {
            let phase = (i as u64 + seed) % 7;
            CarbonIntensity::from_grams_per_kwh(60.0 + 40.0 * phase as f64)
        })
        .collect();
    IntensitySeries::new(Timestamp::EPOCH, step, values)
}

/// Builds the full co-simulation graph (workload → cluster ← grid) and
/// returns the engine plus the cluster's component id.
fn build_graph(jobs: Vec<Job>, seed: u64) -> (iriscast_sim::Engine, iriscast_sim::ComponentId) {
    let window = Period::snapshot_24h();
    let mut b = EngineBuilder::new(window);
    let src = b.add(Box::new(WorkloadSource::new(jobs).expect("sorted")));
    let grid = b.add(Box::new(GridSignal::new(intensity_day(seed))));
    let cluster = b.add(Box::new(
        ClusterComponent::new(
            8,
            Box::new(CarbonAwareScheduler::new(
                EasyBackfillScheduler,
                CarbonIntensity::from_grams_per_kwh(150.0),
            )),
        )
        .expect("non-empty cluster"),
    ));
    b.connect(
        WorkloadSource::out_jobs(src),
        ClusterComponent::in_jobs(cluster),
    );
    b.connect(
        GridSignal::out_intensity(grid),
        ClusterComponent::in_intensity(cluster),
    );
    (b.build(), cluster)
}

fn outcome_of(engine: &iriscast_sim::Engine, cluster: iriscast_sim::ComponentId) -> SimOutcome {
    engine
        .get::<ClusterComponent>(cluster)
        .expect("cluster in graph")
        .outcome(Period::snapshot_24h())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The queue pops in timestamp order with strict FIFO tie-breaking:
    /// however the pushes are interleaved, the pop order is the stable
    /// sort of the push order by timestamp.
    #[test]
    fn event_queue_is_a_stable_sort(times in event_schedule()) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Timestamp::from_secs(t), i);
        }
        let mut expected: Vec<(i64, usize)> =
            times.iter().map(|&t| (t, 0)).collect();
        for (i, e) in expected.iter_mut().enumerate() {
            e.1 = i;
        }
        expected.sort_by_key(|&(t, _)| t); // stable: preserves push order
        let mut popped = Vec::new();
        while let Some((t, payload)) = q.pop() {
            popped.push((t.as_secs(), payload));
        }
        prop_assert_eq!(popped, expected);
    }

    /// Permuting how equal-timestamp events are *interleaved with other
    /// timestamps* never reorders them relative to each other.
    #[test]
    fn fifo_survives_any_interleaving(times in event_schedule()) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Timestamp::from_secs(t), i);
        }
        let mut last_per_time = std::collections::HashMap::new();
        while let Some((t, payload)) = q.pop() {
            if let Some(&prev) = last_per_time.get(&t) {
                prop_assert!(
                    payload > prev,
                    "t={} popped {} after {}",
                    t.as_secs(),
                    payload,
                    prev
                );
            }
            last_per_time.insert(t, payload);
        }
    }

    /// Running to the horizon in one go equals stopping at an arbitrary
    /// instant and resuming — same schedule, same event count. The graph
    /// is the full co-simulation (arrivals, grid signal, carbon-aware
    /// cluster), so the property covers ticks, wakes and deliveries.
    #[test]
    fn stop_resume_equals_straight_run(
        jobs in job_stream(),
        seed in 0u64..1_000,
        split in 0i64..86_400,
    ) {
        let (mut straight, c1) = build_graph(jobs.clone(), seed);
        let straight_events = straight.run_to_horizon();

        let (mut halves, c2) = build_graph(jobs, seed);
        let first = halves.run_until(Timestamp::from_secs(split));
        let second = halves.run_to_horizon();

        prop_assert_eq!(first + second, straight_events);
        prop_assert_eq!(outcome_of(&halves, c2), outcome_of(&straight, c1));
    }

    /// A graph containing only the clocked collector reproduces the batch
    /// `SiteCollector::collect` bit for bit, across fleet sizes (either
    /// side of the 64-node chunk boundary), seeds, coverages and sample
    /// steps.
    #[test]
    fn clocked_collector_matches_batch_bit_for_bit(
        nodes in 1u32..150,
        seed in 0u64..1_000,
        coverage in 0.0f64..=1.0,
        step_minutes in 1u32..=30,
        util_seed in 0u64..1_000,
    ) {
        let mut cfg = SiteTelemetryConfig::new(
            "PROP-01",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(120.0),
                    Power::from_watts(550.0),
                ),
            }],
            seed,
        );
        cfg.ipmi_node_coverage = coverage;
        cfg.sample_step = SimDuration::from_secs(i64::from(step_minutes) * 60);
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(2.0));
        let util = SyntheticUtilization::calibrated(0.55, util_seed);

        let batch = SiteCollector::new(cfg.clone())
            .collect(period, &util, 4)
            .expect("valid sweep");

        let mut b = EngineBuilder::new(period);
        let c = b.add(Box::new(
            CollectorComponent::with_source(cfg, period, Box::new(util))
                .expect("valid collector"),
        ));
        let mut engine = b.build();
        engine.run_to_horizon();
        let clocked = engine
            .get_mut::<CollectorComponent>(c)
            .expect("collector in graph")
            .finish()
            .expect("sweep complete");
        prop_assert!(clocked == batch, "clocked sweep diverged from batch path");
    }
}
