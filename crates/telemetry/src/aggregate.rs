//! Site→federation roll-ups: the Table 2 report structure.

use crate::collector::SiteTelemetryResult;
use crate::meter::MeterKind;
use iriscast_units::Energy;
use serde::{Deserialize, Serialize};

/// Energy observed by each method at one site — one row of Table 2.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyByMethod {
    /// Facility bulk-meter energy.
    pub facility: Option<Energy>,
    /// PDU energy.
    pub pdu: Option<Energy>,
    /// IPMI energy.
    pub ipmi: Option<Energy>,
    /// Turbostat (RAPL) energy.
    pub turbostat: Option<Energy>,
}

impl EnergyByMethod {
    /// Value for a method by enum, mirroring Table 2's columns.
    pub fn get(&self, kind: MeterKind) -> Option<Energy> {
        match kind {
            MeterKind::Facility => self.facility,
            MeterKind::Pdu => self.pdu,
            MeterKind::Ipmi => self.ipmi,
            MeterKind::Turbostat => self.turbostat,
        }
    }

    /// The paper's headline priority: Facility, else PDU, else IPMI, else
    /// Turbostat.
    pub fn best_estimate(&self) -> Option<Energy> {
        self.facility.or(self.pdu).or(self.ipmi).or(self.turbostat)
    }
}

/// One site's row of the Table 2 report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteEnergyReport {
    /// Site short code.
    pub site: String,
    /// Energies by method.
    pub energies: EnergyByMethod,
    /// Monitored node count (Table 2's "Nodes" column).
    pub nodes: u32,
}

impl SiteEnergyReport {
    /// Builds a row from a collector result.
    pub fn from_result(result: &SiteTelemetryResult) -> Self {
        SiteEnergyReport {
            site: result.site_code.clone(),
            energies: EnergyByMethod {
                facility: result.energy(MeterKind::Facility),
                pdu: result.energy(MeterKind::Pdu),
                ipmi: result.energy(MeterKind::Ipmi),
                turbostat: result.energy(MeterKind::Turbostat),
            },
            nodes: result.nodes,
        }
    }

    /// Ratio between two methods where both exist (`a / b`).
    pub fn method_ratio(&self, a: MeterKind, b: MeterKind) -> Option<f64> {
        let ea = self.energies.get(a)?;
        let eb = self.energies.get(b)?;
        if eb.joules() == 0.0 {
            return None;
        }
        Some(ea / eb)
    }
}

/// Sums the best-estimate energies across rows — Table 2's "Total" row.
pub fn total_best_estimate(rows: &[SiteEnergyReport]) -> Energy {
    rows.iter().filter_map(|r| r.energies.best_estimate()).sum()
}

/// Sums monitored nodes across rows.
pub fn total_nodes(rows: &[SiteEnergyReport]) -> u32 {
    rows.iter().map(|r| r.nodes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kwh(v: f64) -> Energy {
        Energy::from_kilowatt_hours(v)
    }

    /// The published Table 2, as report rows.
    pub fn paper_rows() -> Vec<SiteEnergyReport> {
        let row = |site: &str,
                   fac: Option<f64>,
                   pdu: Option<f64>,
                   ipmi: Option<f64>,
                   turbo: Option<f64>,
                   nodes: u32| SiteEnergyReport {
            site: site.into(),
            energies: EnergyByMethod {
                facility: fac.map(kwh),
                pdu: pdu.map(kwh),
                ipmi: ipmi.map(kwh),
                turbostat: turbo.map(kwh),
            },
            nodes,
        };
        vec![
            row(
                "QMUL",
                Some(1299.0),
                Some(1299.0),
                Some(1279.0),
                Some(1214.0),
                118,
            ),
            row("CAM", None, None, Some(261.0), None, 59),
            row("DUR", Some(8154.0), Some(8154.0), Some(6267.0), None, 876),
            row("STFC-CLOUD", None, None, Some(3831.0), None, 721),
            row("STFC-SCARF", None, Some(4271.0), Some(3292.0), None, 571),
            row("IMP", None, None, Some(944.0), None, 117),
        ]
    }

    #[test]
    fn paper_total_reproduced_from_best_estimates() {
        let rows = paper_rows();
        let total = total_best_estimate(&rows);
        assert!((total.kilowatt_hours() - 18_760.0).abs() < 1e-9);
        assert_eq!(total_nodes(&rows), 2_462);
    }

    #[test]
    fn best_estimate_priority() {
        let rows = paper_rows();
        // QMUL has everything → facility.
        assert_eq!(rows[0].energies.best_estimate(), Some(kwh(1299.0)));
        // CAM only has IPMI.
        assert_eq!(rows[1].energies.best_estimate(), Some(kwh(261.0)));
        // SCARF has PDU + IPMI → PDU.
        assert_eq!(rows[4].energies.best_estimate(), Some(kwh(4271.0)));
        // Empty row.
        assert_eq!(EnergyByMethod::default().best_estimate(), None);
    }

    #[test]
    fn method_ratios_match_paper_offsets() {
        let rows = paper_rows();
        // QMUL: turbostat 5% below IPMI, IPMI 1.5% below PDU.
        let qmul = &rows[0];
        let t_over_i = qmul
            .method_ratio(MeterKind::Turbostat, MeterKind::Ipmi)
            .unwrap();
        let i_over_p = qmul.method_ratio(MeterKind::Ipmi, MeterKind::Pdu).unwrap();
        assert!((t_over_i - 0.949).abs() < 0.002);
        assert!((i_over_p - 0.985).abs() < 0.002);
        // DUR: IPMI covers ~77% of PDU.
        let dur = &rows[2];
        let cov = dur.method_ratio(MeterKind::Ipmi, MeterKind::Pdu).unwrap();
        assert!((cov - 0.7686).abs() < 0.001);
        // Missing pairs yield None.
        assert!(rows[1]
            .method_ratio(MeterKind::Ipmi, MeterKind::Pdu)
            .is_none());
    }

    #[test]
    fn get_by_kind() {
        let rows = paper_rows();
        assert_eq!(rows[0].energies.get(MeterKind::Pdu), Some(kwh(1299.0)));
        assert_eq!(rows[1].energies.get(MeterKind::Pdu), None);
    }
}
